//! Flat-combining concurrent front-end for batched sets.
//!
//! The paper's data structures consume *batches*: sorted runs of keys
//! processed wholesale through [`batchapi::BatchedSet`].  Real traffic does
//! not arrive that way — many client threads each issue *single* inserts,
//! removes and lookups.  [`ConcurrentSet`] is the ingress layer between the
//! two worlds: clients publish one operation each into a lock-free list, one
//! thread elects itself **combiner**, drains everything published so far
//! into one batch per operation kind, executes the three batched operations
//! on the backing set (inside a [`forkjoin::Pool`] when the round is large
//! enough to parallelise), and hands each client its individual result.
//!
//! This is the classic *flat combining* construction (Hendler, Incze,
//! Shavit & Tzafrir, SPAA '10) specialised to the batched-set API, where it
//! is a particularly good fit: combining does not just cut synchronisation
//! — the drained round *is* the sorted batch the backend is optimised for.
//!
//! # Protocol
//!
//! 0. **Fast path** — a client that finds the combiner flag free takes it
//!    directly (one CAS), flushes anything already published, runs its own
//!    operation against the backend's point path, and unlocks — no slot,
//!    no completion handshake.  Under no contention the front-end costs a
//!    CAS plus a load over a bare mutex; the published protocol below is
//!    the contended path, and an operation may go either way.
//! 1. **Publish** — the client embeds an op slot (`OpSlot`) on its own stack (the
//!    same single-word-pointer technique as `forkjoin`'s stack jobs: the
//!    slot never moves until its `done` flag is set) and pushes it onto the
//!    `ingress` Treiber stack with a `Release` CAS.  Push-only publishing
//!    makes the usual Treiber ABA hazard irrelevant: nothing is ever popped
//!    one-at-a-time, the combiner claims the whole list with one `swap`.
//! 2. **Elect** — any client with a pending op may become the combiner by
//!    CASing the `combiner` flag `false → true` (`Acquire`; the paired
//!    `Release` store on unlock carries the backing set's mutations from
//!    each combiner to the next).
//! 3. **Combine** — the combiner swaps the ingress head to null
//!    (`Acquire`, pairing with every publisher's `Release` CAS so slot
//!    fields are visible), splits the drained slots by kind, and builds one
//!    sorted [`Batch`] per kind.
//! 4. **Execute** — the three batched operations run in a fixed order:
//!    `batch_contains`, then `batch_insert`, then `batch_remove`.  That
//!    order is the round's linearisation order (see below).  Rounds of at
//!    least [`Options::pool_cutoff`] operations run inside the fork-join
//!    pool; smaller rounds execute inline on the combiner thread, where the
//!    batched operations degrade to their sequential paths — cheaper than a
//!    pool round-trip for a handful of keys.
//! 5. **Distribute** — per-key flags fan back out to per-op results (keys
//!    duplicated across ops of one kind are resolved as if the ops ran
//!    sequentially: the first insert/remove of a key in the round gets the
//!    batch's flag, later duplicates observe the first one's effect).  Each
//!    slot's result is written *before* its `done` flag is set (`Release`);
//!    after that store the combiner never touches the slot again, because
//!    the client — who pairs with an `Acquire` load — is free to pop it off
//!    its stack.
//! 6. **Wake** — the combiner releases the `combiner` flag and then wakes
//!    waiters through the same fenced Dekker handshake as the scheduler's
//!    sleep path (`SeqCst` fence, then a sleeper-count check; sleepers
//!    register with a `SeqCst` RMW, fence, and re-check before waiting), so
//!    a completion or an unlock can never be slept through.
//!
//! # Batched ingress
//!
//! Traffic that *already* arrives as sorted batches — a sharded service
//! tier routing per-shard sub-batches, a replayed log — skips the slot
//! machinery entirely: [`ConcurrentSet::batch_contains`] /
//! [`ConcurrentSet::batch_insert`] / [`ConcurrentSet::batch_remove`] make
//! the caller the combiner, flush any point ops published before it won
//! the flag, and execute the whole batch as one committed round (logged,
//! counted, and poison-checked like any other).
//!
//! # Linearisability
//!
//! Each round commits atomically between two combiner-lock critical
//! sections, and every operation in it was pending (published, not yet
//! completed) for the round's whole execution, so ordering the round's ops
//! `contains → insert → remove` (ties within a kind in publish order,
//! duplicates resolved first-wins) is a valid linearisation; rounds
//! themselves are ordered by combiner succession, which respects real time
//! (an op completed in round *r* was drained before *r* executed, so any op
//! starting later publishes after the drain and lands in a later round).
//! [`ConcurrentSet::take_rounds`] exposes the committed order (when
//! [`Options::log_rounds`] is set) so tests can replay it against a
//! sequential oracle — `tests/combine_stress.rs` does exactly that.
//!
//! # Round sequence numbers and the staleness contract
//!
//! Every committed round carries a sequence number: strictly increasing,
//! gap-free, starting at [`Options::first_seq`]` + 1` ([`Round::seq`] in the
//! log).  Because the seq order *is* the linearisation order, a single
//! `u64` names any prefix of the history, which is what two consumers need:
//!
//! * **Durable replay is idempotent.**  A write-ahead log downstream of
//!   [`ConcurrentSet::take_rounds`] records each round under its seq; a
//!   snapshot taken via [`ConcurrentSet::snapshot_keys`] records the
//!   high-water mark it reflects.  Recovery loads the snapshot and applies
//!   only records with `seq >` the mark — records at or below it (or
//!   replayed twice across restarts) change nothing.
//! * **Read-your-writes for snapshot readers.**  The wait-free read path
//!   below serves lookups from an atomically published snapshot of the
//!   tree instead of entering a combiner round.  The contract such reads
//!   need is exactly this numbering: a client that completed a write in
//!   round *s* reads from a published snapshot whose mark is `>= s` — its
//!   own write is visible — because the combiner publishes the new root
//!   *before* it acknowledges any operation of the round that produced it.
//!
//! # Wait-free snapshot reads
//!
//! When [`Options::snapshot_reads`] is on (the default), the read-only
//! operations — [`ConcurrentSet::contains`], [`ConcurrentSet::batch_contains`],
//! [`ConcurrentSet::len`], [`ConcurrentSet::rank`], [`ConcurrentSet::min`] /
//! [`ConcurrentSet::max`] and [`ConcurrentSet::snapshot_keys`] — never elect
//! a combiner and never wait for one.  They load the last published
//! [`ReadSnapshot`]: an immutable root ([`batchapi::SetView`], shared
//! structurally with the live tree via copy-on-write) paired with the seq of
//! the round it reflects.
//!
//! **Publication protocol.**  At the end of every round that mutated the
//! backend, the combiner — still holding the combiner flag — asks the
//! backend for a fresh root (`publish_root`, O(1) for both `pbist::IstSet`
//! and `baselines::SortedArraySet`) and installs it in a two-slot
//! *left-right* cell: the new snapshot is written into the inactive slot
//! (after waiting out the readers still borrowing it), then the active-slot
//! index is flipped with a `SeqCst` store.  Readers increment the chosen
//! slot's borrow count, re-check the index, and clone the `Arc` out — a
//! handful of atomic ops, no allocation, no lock, regardless of combiner
//! activity.  Rounds that mutated nothing advance only the `committed`
//! high-water mark, so a snapshot's mark can trail
//! [`ConcurrentSet::committed_seq`] while its *contents* stay exact.
//!
//! **Staleness contract.**  A snapshot read observes some round
//! `seq >= ` the client's last acknowledged write (publish happens before
//! acknowledgement, see above) but possibly older than rounds still in
//! flight — reads are *read-your-writes*, not linearisable against other
//! clients' unacknowledged writes.  [`ConcurrentSet::read_at_least`] is the
//! escape hatch: it spins (joining combining rounds when it can) until the
//! published state covers a caller-supplied seq.
//!
//! **Poisoning.**  Snapshot reads still fail fast on a poisoned front-end:
//! they panic like every other operation rather than serve reads from a
//! history whose tail is indeterminate.  They never *block* on the flag —
//! poisoned or not, a snapshot read completes or panics in bounded steps.
//!
//! # Contract
//!
//! Operations must be called from threads *outside* the backing pool: a
//! pool worker blocking as a client could leave the combiner's own
//! `install` without a worker to run on.  The service pattern — client
//! threads in front, the pool as compute backend — satisfies this
//! naturally.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let pool = forkjoin::Pool::new(2).expect("pool");
//! let backing = pbist::IstSet::from_unsorted((0..1000u64).collect());
//! let set = Arc::new(combine::ConcurrentSet::new(backing, pool));
//!
//! let handles: Vec<_> = (0..4u64)
//!     .map(|t| {
//!         let set = Arc::clone(&set);
//!         std::thread::spawn(move || {
//!             assert!(set.contains(&t));          // 0..1000 pre-loaded
//!             set.insert(10_000 + t);             // distinct new keys
//!             assert!(!set.remove(&(20_000 + t))) // never present
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(set.len(), 1004);
//! ```

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::fmt;
use std::mem;
use std::ops::Bound;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use batchapi::{Batch, BatchedSet, SetView};
use forkjoin::Pool;
use obs::{Counter, Histogram, Registry, SpanRecord, TraceRing};

/// Iterations of the pure spin phase before a waiting client starts
/// yielding.  Kept short: the combiner usually finishes small rounds fast,
/// and on few-core machines long spins just steal its CPU.
const SPIN_LIMIT: u32 = 64;

/// Yields after the spin phase before falling back to the condvar.
const YIELD_LIMIT: u32 = 16;

/// What a single client operation does to the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Add a key; the result is `true` iff it was newly inserted.
    Insert,
    /// Remove a key; the result is `true` iff it was present.
    Remove,
    /// Membership test; the result is `true` iff the key is present.
    Contains,
}

/// One operation slot, embedded on the issuing client's stack.
///
/// Published by pointer into the ingress list; the client guarantees the
/// slot stays pinned until `done` is set, and the combiner guarantees it
/// never touches the slot after setting `done`.
struct OpSlot<K> {
    /// Ingress linkage, written before the publishing CAS.
    next: AtomicPtr<OpSlot<K>>,
    kind: OpKind,
    key: K,
    /// Written by the combiner strictly before the `done` store.
    result: UnsafeCell<bool>,
    /// Completion flag: `Release` store by the combiner (its last touch of
    /// the slot), `Acquire` load by the owning client.
    done: AtomicBool,
}

/// One operation as committed by a combining round, for the round log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOp<K> {
    /// What the operation did.
    pub kind: OpKind,
    /// The key it applied to.
    pub key: K,
    /// The result handed back to the issuing client.
    pub result: bool,
}

/// One committed combining round: its operations in linearisation order
/// (`Contains` ops first, then `Insert`, then `Remove`; publish order within
/// each kind).  Replaying rounds in commit order against a sequential set
/// must reproduce every `result` — the stress suite's oracle check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round<K> {
    /// The round's sequence number: rounds commit with strictly increasing,
    /// gap-free sequence numbers starting at [`Options::first_seq`]` + 1`,
    /// so the log order *is* the seq order and any prefix of the history is
    /// named by a single `u64` high-water mark.  This is what makes
    /// downstream replay idempotent (a durability tier skips records at or
    /// below its snapshot's seq) and what a read-your-writes contract hangs
    /// off (see the module docs' *staleness contract* section).
    pub seq: u64,
    /// The committed operations, in linearisation order.
    pub ops: Vec<RoundOp<K>>,
}

/// Construction-time knobs for [`ConcurrentSet`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Rounds with at least this many operations execute inside the
    /// fork-join pool; smaller rounds run inline on the combiner thread
    /// (the batched ops degrade to their sequential paths, which beats
    /// paying a pool round-trip for a handful of keys).  `0` forces every
    /// round through the pool; `usize::MAX` keeps everything inline.
    pub pool_cutoff: usize,
    /// Record every committed round for [`ConcurrentSet::take_rounds`].
    /// Off by default: the log clones every key and grows without bound,
    /// so it is strictly a testing/debugging facility.
    pub log_rounds: bool,
    /// Capacity of the round-trace ring behind
    /// [`ConcurrentSet::take_trace`] / [`ConcurrentSet::trace_json`]:
    /// one span per committed round, begin/end timestamps plus op count.
    /// `0` (the default) disables tracing.  The ring is bounded — once
    /// full each new span evicts the oldest (the eviction count is
    /// reported alongside the spans), so it is safe to leave on in
    /// long-running services, unlike the round log.
    pub trace_capacity: usize,
    /// Sequence number the round counter starts *after*: the first
    /// committed round gets seq `first_seq + 1`.  `0` (the default) numbers
    /// a fresh history `1, 2, 3, …`; a durability tier recovering an
    /// existing history passes the highest sequence number it replayed, so
    /// new rounds continue the old numbering and replay stays idempotent
    /// across restarts.
    pub first_seq: u64,
    /// Serve read-only operations (`contains`, `batch_contains`, `len`,
    /// `rank`, `min`/`max`, `snapshot_keys`) wait-free from the last
    /// published [`ReadSnapshot`] instead of electing a combiner (see the
    /// module docs' *wait-free snapshot reads* section).  On by default.
    /// Turning it off routes every read through a combining round of its
    /// own — each read then linearises against concurrent writes and lands
    /// in the round log, which the linearisability replay suites rely on.
    pub snapshot_reads: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            pool_cutoff: 512,
            log_rounds: false,
            trace_capacity: 0,
            first_seq: 0,
            snapshot_reads: true,
        }
    }
}

/// Counters describing the combining behaviour so far (monotone; exact
/// once the set is quiescent).
///
/// Even while combiners run, every snapshot satisfies `ops >= rounds`
/// (each committed round carries at least one op — see the write-order
/// contract on the counter advance) and `pooled_rounds <= rounds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Combining rounds committed.
    pub rounds: u64,
    /// Operations completed across all rounds.
    pub ops: u64,
    /// Rounds large enough to execute inside the pool.
    pub pooled_rounds: u64,
}

/// Handles cloned out of the registry once at construction, so the hot
/// path hits the atomics directly and never touches the registry mutex.
struct CombineMetrics {
    /// `combine.rounds` — committed combining rounds (fast-path singletons
    /// included).
    rounds: Arc<Counter>,
    /// `combine.ops` — client operations completed across all rounds.
    ops: Arc<Counter>,
    /// `combine.pooled_rounds` — rounds that executed inside the pool.
    pooled_rounds: Arc<Counter>,
    /// `combine.fast_path_rounds` — ops that took the uncontended fast
    /// path (won the flag without publishing a slot).
    fast_path_rounds: Arc<Counter>,
    /// `combine.slow_path_ops` — ops that published a slot and went
    /// through the combining handshake.
    slow_path_ops: Arc<Counter>,
    /// `combine.poisoned` — combiner panics that poisoned the front-end.
    poisoned: Arc<Counter>,
    /// `combine.batch_rounds` — rounds that entered as a whole pre-sorted
    /// batch through the batched surface (a sharded tier's sub-batches),
    /// rather than being combined from published point ops.
    batch_rounds: Arc<Counter>,
    /// `combine.round_size` — ops per committed round.
    round_size: Arc<Histogram>,
    /// `combine.snapshot_reads` — read operations served wait-free from the
    /// published snapshot (each batched read counts once).
    snapshot_reads: Arc<Counter>,
    /// `combine.publish_clone_keys` — keys cloned by `publish_root` across
    /// all mutating rounds.  Stays zero for backends with an `O(1)`
    /// publication override (`pbist::IstSet`, `baselines::SortedArraySet`);
    /// a steadily climbing value exposes a backend silently paying the
    /// trait default's `O(n)`-per-round clone.
    publish_clone_keys: Arc<Counter>,
    /// `combine.snapshot_lag` — `committed_seq - snapshot seq` observed by
    /// snapshot-handle and batched snapshot reads: how many committed
    /// (necessarily read-only) rounds the served snapshot's mark trailed
    /// by.  Point reads skip the sample to stay cheaper than the combiner
    /// fast path.
    snapshot_lag: Arc<Histogram>,
}

impl CombineMetrics {
    fn new(registry: &Registry) -> CombineMetrics {
        CombineMetrics {
            rounds: registry.counter("combine.rounds"),
            ops: registry.counter("combine.ops"),
            pooled_rounds: registry.counter("combine.pooled_rounds"),
            fast_path_rounds: registry.counter("combine.fast_path_rounds"),
            slow_path_ops: registry.counter("combine.slow_path_ops"),
            poisoned: registry.counter("combine.poisoned"),
            batch_rounds: registry.counter("combine.batch_rounds"),
            round_size: registry.histogram("combine.round_size"),
            snapshot_reads: registry.counter("combine.snapshot_reads"),
            publish_clone_keys: registry.counter("combine.publish_clone_keys"),
            snapshot_lag: registry.histogram("combine.snapshot_lag"),
        }
    }
}

/// An immutable view of the set's contents paired with the seq of the
/// round it reflects — what the wait-free read path serves (see the module
/// docs' *wait-free snapshot reads* section).
///
/// The view shares structure with the live set (copy-on-write), so holding
/// one is cheap; its contents never change, no matter how many rounds
/// commit after it was published.
pub struct ReadSnapshot<K> {
    seq: u64,
    view: Arc<dyn SetView<K>>,
}

impl<K> fmt::Debug for ReadSnapshot<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadSnapshot")
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<K> ReadSnapshot<K> {
    /// Sequence number of the last *mutating* round this snapshot reflects.
    /// May trail [`ConcurrentSet::committed_seq`] by read-only rounds —
    /// the contents are still exact for every seq in between.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen contents.
    pub fn view(&self) -> &dyn SetView<K> {
        self.view.as_ref()
    }
}

/// [`ConcurrentSet::read_at_least`] was asked for a freshness mark that no
/// committed round carries and that no in-flight work can produce: the
/// front-end was idle with `committed < want`, so waiting longer would wait
/// on writers that need never arrive.
///
/// Seeing this error means `want` was not an *observed* mark (every
/// observed mark is already committed — rounds publish before they
/// acknowledge); the caller is asking about the future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessError {
    /// The freshness floor the caller asked for.
    pub want: u64,
    /// The committed high-water mark when the front-end went idle.
    pub committed: u64,
}

impl std::fmt::Display for FreshnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read_at_least({}) cannot be satisfied: the front-end is idle \
             at committed seq {} and no in-flight round can reach the mark",
            self.want, self.committed
        )
    }
}

impl std::error::Error for FreshnessError {}

/// One slot of the left-right snapshot cell: the snapshot plus the number
/// of readers currently borrowing it.
struct SnapSlot<K> {
    readers: AtomicUsize,
    snap: UnsafeCell<Arc<ReadSnapshot<K>>>,
}

/// A two-slot *left-right* cell holding the last published snapshot.
///
/// Readers ([`SnapCell::load`]) are lock-free and run concurrently with
/// each other and with the single writer; the writer ([`SnapCell::publish`],
/// always the combiner, serialised by the combiner flag) updates the
/// *inactive* slot after waiting out its borrowers, then flips the active
/// index.  `SeqCst` on the index and the borrow registration keeps the
/// classic left-right argument airtight (see the proof sketch on `load`);
/// the borrow release needs only `Release` (the writer's spin load pairs
/// with it).
struct SnapCell<K> {
    /// Index (0 or 1) of the slot readers should borrow.
    active: AtomicUsize,
    slots: [SnapSlot<K>; 2],
}

// SAFETY: the `UnsafeCell`s are governed by the left-right protocol — the
// single writer mutates a slot only while its reader count is zero and the
// slot is inactive, and readers only read while registered on a slot they
// re-verified as active — so shared references handed out never alias a
// mutation.  The payload is an `Arc<ReadSnapshot<K>>`, shared across
// threads, hence `K: Send + Sync`.
unsafe impl<K: Send + Sync> Sync for SnapCell<K> {}
unsafe impl<K: Send + Sync> Send for SnapCell<K> {}

impl<K> SnapCell<K> {
    fn new(initial: Arc<ReadSnapshot<K>>) -> SnapCell<K> {
        SnapCell {
            active: AtomicUsize::new(0),
            slots: [
                SnapSlot {
                    readers: AtomicUsize::new(0),
                    snap: UnsafeCell::new(Arc::clone(&initial)),
                },
                SnapSlot {
                    readers: AtomicUsize::new(0),
                    snap: UnsafeCell::new(initial),
                },
            ],
        }
    }

    /// Returns the last published snapshot.  Lock-free: a reader retries
    /// only when the writer flipped the active index between its first load
    /// and its re-check, which one `publish` does at most once.
    ///
    /// Why the re-check suffices (all index/registration ops are `SeqCst`,
    /// so they form one total order): a writer mutates slot `a` only after
    /// its zero-check of `readers[a]`.  If our registration precedes that
    /// check in the total order, the writer sees the count and spins until
    /// our release.  If it follows, the flip that made `a` inactive (the
    /// writer targets `1 - active`) also precedes our re-check, which
    /// therefore reads the flipped index, fails, and retries — we never
    /// dereference a slot the writer may be mutating.
    fn load(&self) -> Arc<ReadSnapshot<K>> {
        self.with_snap(Arc::clone)
    }

    /// Runs `read` against the last published snapshot *inside* the borrow
    /// window — no `Arc` clone, so a point read's whole synchronisation
    /// cost is the two borrow-count bumps.  The flip side: the window now
    /// spans the read itself, so a publishing combiner may wait out one
    /// in-flight read (still bounded — new readers land on the flipped
    /// slot).  Long reads (batch scans) should [`SnapCell::load`] and pay
    /// the clone instead.
    fn with_snap<T>(&self, read: impl FnOnce(&Arc<ReadSnapshot<K>>) -> T) -> T {
        loop {
            let idx = self.active.load(Ordering::SeqCst);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == idx {
                // SAFETY: registered on a slot re-verified active — the
                // left-right protocol (see `Sync` impl) keeps the writer
                // out until the release below.
                let result = read(unsafe { &*slot.snap.get() });
                slot.readers.fetch_sub(1, Ordering::Release);
                return result;
            }
            slot.readers.fetch_sub(1, Ordering::Release);
        }
    }

    /// Installs a new snapshot.  Caller must hold the combiner flag (single
    /// writer); waits out readers still borrowing the inactive slot, which
    /// hold it for at most one read — an `Arc` clone ([`SnapCell::load`])
    /// or a point query ([`SnapCell::with_snap`]).
    fn publish(&self, snap: Arc<ReadSnapshot<K>>) {
        let idx = 1 - self.active.load(Ordering::Relaxed);
        let slot = &self.slots[idx];
        while slot.readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // SAFETY: slot `idx` is inactive (readers registering now target the
        // other slot, or will fail their re-check) and drained of readers;
        // the combiner flag excludes other writers.
        unsafe { *slot.snap.get() = snap };
        // The flip publishes the write above to readers: their `SeqCst`
        // re-check of `active` pairs with this store.
        self.active.store(idx, Ordering::SeqCst);
    }
}

/// Per-kind scratch for the round being combined.  Only the combiner (the
/// thread holding the `combiner` flag) touches this; buffers are reused
/// across rounds so a steady-state round allocates nothing.
struct Lane<K> {
    /// Drained slots of this kind, in publish order.
    slots: Vec<*const OpSlot<K>>,
    /// Reusable key buffer; round-trips through [`Batch::into_vec`].
    keys: Vec<K>,
    /// Reusable per-key flag buffer for the `_report` batch variants.
    flags: Vec<bool>,
}

impl<K> Lane<K> {
    fn new() -> Lane<K> {
        Lane {
            slots: Vec::new(),
            keys: Vec::new(),
            flags: Vec::new(),
        }
    }
}

/// Combiner-only scratch state (guarded by the `combiner` flag).
struct Scratch<K> {
    contains: Lane<K>,
    insert: Lane<K>,
    remove: Lane<K>,
    /// Tracks which batch keys have already been claimed by an earlier
    /// duplicate op while distributing insert/remove results.
    claimed: Vec<bool>,
}

/// A concurrent ordered set serving per-operation traffic from any number
/// of client threads by flat-combining it into batches for a
/// [`BatchedSet`] backend.
///
/// See the [module docs](self) for the protocol and its memory-ordering
/// contract.  Shared by reference (typically `Arc`); all operations take
/// `&self`.
///
/// # Poisoning
///
/// If a backend batch operation panics while a combiner executes a round,
/// the set's state — and the results of every operation drained into that
/// round — are indeterminate.  The front-end then behaves like a poisoned
/// `Mutex`: the panic propagates on the combining thread, clients whose
/// operations were in that round panic instead of blocking forever, and
/// every subsequent operation panics immediately.
pub struct ConcurrentSet<K, S> {
    /// Head of the Treiber-stack ingress list of published op slots.
    ingress: AtomicPtr<OpSlot<K>>,
    /// The combiner flag: held (`true`) by at most one thread, which has
    /// exclusive access to `set`, `scratch` and the log tail.
    combiner: AtomicBool,
    /// The backing batched set.  Touched only while holding `combiner`.
    set: UnsafeCell<S>,
    /// Sequence number of the most recently committed round (starts at
    /// [`Options::first_seq`]).  Advanced by the combiner for **every**
    /// committed round, logged or not, so snapshot high-water marks stay
    /// meaningful even when the round log is off.  Touched only while
    /// holding `combiner`.
    seq: UnsafeCell<u64>,
    /// Reused round buffers.  Touched only while holding `combiner`.
    scratch: UnsafeCell<Scratch<K>>,
    /// The last published read snapshot (root + seq), republished by the
    /// combiner at the end of every mutating round.  Read lock-free by the
    /// snapshot read path; written only while holding `combiner`.
    snap: SnapCell<K>,
    /// Seq of the last committed round of *any* kind (read-only rounds
    /// included), stored by the combiner after the round's snapshot (if
    /// any) is published.  Lets [`ConcurrentSet::read_at_least`] tell a
    /// stale snapshot *mark* from stale snapshot *contents*.
    committed: AtomicU64,
    /// See [`Options::snapshot_reads`].
    snapshot_reads: bool,
    /// Fork-join pool executing rounds of at least `pool_cutoff` ops.
    pool: Pool,
    /// See [`Options::pool_cutoff`].
    pool_cutoff: usize,
    /// Committed-round log, present when [`Options::log_rounds`] was set.
    /// Appended only by the combiner; the mutex serialises appends against
    /// concurrent [`ConcurrentSet::take_rounds`] drains.
    log: Option<Mutex<Vec<Round<K>>>>,
    /// Guards `progress` (never the data — that is what `combiner` is for).
    sleep_mutex: Mutex<()>,
    /// Signalled after every round commit and combiner unlock.
    progress: Condvar,
    /// Clients currently blocked on `progress`.
    sleepers: AtomicUsize,
    /// Set when a combiner panicked mid-round (a backend batch op threw):
    /// the backing set's state — and the results of any op drained into
    /// that round — are indeterminate, so every subsequent operation
    /// panics instead of blocking forever.  Mutex-poisoning semantics.
    poisoned: AtomicBool,
    /// Named-metric registry behind [`ConcurrentSet::metrics`]; the hot
    /// path goes through the pre-cloned handles in `metrics` instead.
    registry: Registry,
    /// See [`CombineMetrics`].
    metrics: CombineMetrics,
    /// Round-trace ring, present when [`Options::trace_capacity`] was
    /// non-zero.  Internally locked; spans are recorded by the combiner.
    trace: Option<TraceRing>,
}

/// Releases the combiner flag (and wakes waiters) on every exit from a
/// combining critical section — **including unwinds**.  A panic while
/// combining marks the front-end poisoned before the flag is released, so
/// woken waiters observe the poison rather than re-electing themselves
/// onto a half-mutated set (or hanging on slots whose `done` will never
/// come).
struct CombinerGuard<'a, K, S> {
    set: &'a ConcurrentSet<K, S>,
}

impl<K, S> Drop for CombinerGuard<'_, K, S> {
    fn drop(&mut self) {
        let poisoning = std::thread::panicking();
        if poisoning {
            self.set.metrics.poisoned.inc();
            // SeqCst so the unlock below can never be observed before the
            // poison by a waiter's fenced re-check.
            self.set.poisoned.store(true, Ordering::SeqCst);
        }
        self.set.combiner.store(false, Ordering::Release);
        // Producer half of the Dekker handshake (see module docs): fence,
        // then look for registered sleepers.  The common no-sleeper case is
        // one fence and one load.  On poison, always notify: blocked
        // clients must wake to observe it.
        fence(Ordering::SeqCst);
        if poisoning || self.set.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.set.sleep_mutex.lock().unwrap();
            self.set.progress.notify_all();
        }
    }
}

// SAFETY: `ConcurrentSet` is a Mutex-like container.  `set`, `scratch` and
// the log tail are accessed only by the thread holding the `combiner` flag
// (Acquire/Release on that flag sequences successive combiners), so they
// need `Send` but not `Sync`.  The ingress list holds pointers to `OpSlot`s
// pinned on client stacks; the publish CAS (Release) / drain swap (Acquire)
// pair transfers them to the combiner, which reads `key` by shared
// reference from another thread — hence `K: Sync` — and hands them back
// through the `done` Release/Acquire pair, after which only the owning
// client touches them.
unsafe impl<K: Send + Sync, S: Send> Sync for ConcurrentSet<K, S> {}
unsafe impl<K: Send, S: Send> Send for ConcurrentSet<K, S> {}

impl<K, S> ConcurrentSet<K, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    S: BatchedSet<K> + Send,
{
    /// Wraps `set` behind a flat-combining front-end with default
    /// [`Options`], executing large rounds on `pool`.
    pub fn new(set: S, pool: Pool) -> ConcurrentSet<K, S> {
        ConcurrentSet::with_options(set, pool, Options::default())
    }

    /// Wraps `set` with explicit [`Options`].
    pub fn with_options(set: S, pool: Pool, options: Options) -> ConcurrentSet<K, S> {
        let registry = Registry::new();
        let metrics = CombineMetrics::new(&registry);
        // Publish the initial contents so the read path has a snapshot
        // before any round commits; its mark is the pre-history seq.
        let snap = SnapCell::new(Arc::new(ReadSnapshot {
            seq: options.first_seq,
            view: set.publish_root(),
        }));
        ConcurrentSet {
            ingress: AtomicPtr::new(ptr::null_mut()),
            combiner: AtomicBool::new(false),
            set: UnsafeCell::new(set),
            seq: UnsafeCell::new(options.first_seq),
            snap,
            committed: AtomicU64::new(options.first_seq),
            snapshot_reads: options.snapshot_reads,
            scratch: UnsafeCell::new(Scratch {
                contains: Lane::new(),
                insert: Lane::new(),
                remove: Lane::new(),
                claimed: Vec::new(),
            }),
            pool,
            pool_cutoff: options.pool_cutoff,
            log: options.log_rounds.then(|| Mutex::new(Vec::new())),
            sleep_mutex: Mutex::new(()),
            progress: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            registry,
            metrics,
            trace: (options.trace_capacity > 0).then(|| TraceRing::new(options.trace_capacity)),
        }
    }

    /// Inserts `key`, returning `true` iff it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the front-end is [poisoned](ConcurrentSet#poisoning)
    /// (same for [`remove`](ConcurrentSet::remove),
    /// [`contains`](ConcurrentSet::contains) and
    /// [`len`](ConcurrentSet::len)).
    pub fn insert(&self, key: K) -> bool {
        match self.try_fast_op(OpKind::Insert, &key) {
            Some(result) => result,
            None => self.run_op_published(OpKind::Insert, key),
        }
    }

    /// Removes `key`, returning `true` iff it was present.
    pub fn remove(&self, key: &K) -> bool {
        match self.try_fast_op(OpKind::Remove, key) {
            Some(result) => result,
            None => self.run_op_published(OpKind::Remove, key.clone()),
        }
    }

    /// Returns `true` iff `key` is in the set.
    ///
    /// With [`Options::snapshot_reads`] on (the default) this is a
    /// wait-free snapshot read — see the module docs' staleness contract;
    /// otherwise it linearises through the combiner like a write.
    pub fn contains(&self, key: &K) -> bool {
        if self.snapshot_reads {
            return self.snap_read(|view| view.contains(key));
        }
        match self.try_fast_op(OpKind::Contains, key) {
            Some(result) => result,
            None => self.run_op_published(OpKind::Contains, key.clone()),
        }
    }

    /// Number of keys strictly smaller than `key` — a snapshot read (or a
    /// combining round of its own when [`Options::snapshot_reads`] is off).
    pub fn rank(&self, key: &K) -> usize {
        if self.snapshot_reads {
            return self.snap_read(|view| view.rank(key));
        }
        self.read_via_round(|set| set.rank(key))
    }

    /// The smallest key, or `None` for an empty set — a snapshot read (or
    /// a combining round of its own when [`Options::snapshot_reads`] is
    /// off).  Cloned out: the set's contents move on under concurrent
    /// writes, only a snapshot's view can hand out references.
    pub fn min(&self) -> Option<K> {
        if self.snapshot_reads {
            return self.snap_read(|view| view.min().cloned());
        }
        self.read_via_round(|set| set.min().cloned())
    }

    /// The largest key, or `None` for an empty set.  See
    /// [`ConcurrentSet::min`].
    pub fn max(&self) -> Option<K> {
        if self.snapshot_reads {
            return self.snap_read(|view| view.max().cloned());
        }
        self.read_via_round(|set| set.max().cloned())
    }

    /// Keys inside the `(lo, hi)` bound pair, in ascending order.
    ///
    /// With [`Options::snapshot_reads`] on (the default) the whole range is
    /// carved out of the last published [`ReadSnapshot`] — one consistent
    /// linearisation point, wait-free, under the module docs' staleness
    /// contract (the result reflects every *acknowledged* write, and may
    /// miss writes not yet acknowledged).  Counted in
    /// `combine.snapshot_reads`.  With snapshot reads off it linearises
    /// through a combining round like the other reads.
    pub fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        if self.snapshot_reads {
            self.check_poisoned();
            // A range scan can be long: hold an `Arc` (`read_snapshot`)
            // rather than the cell's borrow window (`snap_read`), so a
            // concurrent publisher never waits on our scan.
            return self.read_snapshot().view().range_keys(lo, hi);
        }
        self.read_via_round(|set| set.range_keys(lo, hi))
    }

    /// Number of keys inside the `(lo, hi)` bound pair — two rank descents
    /// against one snapshot.  Same linearisation and staleness contract as
    /// [`ConcurrentSet::range_keys`].
    pub fn range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        if self.snapshot_reads {
            return self.snap_read(|view| view.range_count(lo, hi));
        }
        self.read_via_round(|set| set.range_count(lo, hi))
    }

    /// The largest key strictly smaller than `key`, or `None`.  Same
    /// contract as [`ConcurrentSet::range_keys`].
    pub fn predecessor(&self, key: &K) -> Option<K> {
        if self.snapshot_reads {
            return self.snap_read(|view| view.predecessor(key));
        }
        self.read_via_round(|set| set.predecessor(key))
    }

    /// The smallest key strictly greater than `key`, or `None`.  Same
    /// contract as [`ConcurrentSet::range_keys`].
    pub fn successor(&self, key: &K) -> Option<K> {
        if self.snapshot_reads {
            return self.snap_read(|view| view.successor(key));
        }
        self.read_via_round(|set| set.successor(key))
    }

    /// The `k`-th smallest key (0-indexed), or `None` when `k >= len()`.
    /// Same contract as [`ConcurrentSet::range_keys`].
    pub fn kth(&self, k: usize) -> Option<K> {
        if self.snapshot_reads {
            return self.snap_read(|view| view.kth(k));
        }
        self.read_via_round(|set| set.kth(k))
    }

    /// Answers one membership query per key of a pre-sorted `batch`,
    /// executed as one combining round of its own.
    ///
    /// This is the batched ingress a sharded service tier routes sub-batches
    /// through: the caller becomes the combiner (flushing any point ops
    /// published before it won the flag — they were pending first, so they
    /// linearise first), runs the whole batch against the backend in one
    /// round, and commits it to the round log like any other round.  Batches
    /// of at least [`Options::pool_cutoff`] keys execute inside the pool.
    ///
    /// # Panics
    ///
    /// Panics if the front-end is [poisoned](ConcurrentSet#poisoning)
    /// (same for the other batched operations).
    pub fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_contains_report(batch, &mut out);
        out
    }

    /// Inserts every key of `batch` as one combining round; `result[i]` is
    /// `true` iff `batch[i]` was newly inserted.  See
    /// [`ConcurrentSet::batch_contains`] for the linearisation contract.
    pub fn batch_insert(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_insert_report(batch, &mut out);
        out
    }

    /// Removes every key of `batch` as one combining round; `result[i]` is
    /// `true` iff `batch[i]` was present.  See
    /// [`ConcurrentSet::batch_contains`] for the linearisation contract.
    pub fn batch_remove(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_remove_report(batch, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ConcurrentSet::batch_contains`]: flags
    /// land in `out` (cleared first), so a tier issuing many sub-batches
    /// can reuse one buffer per shard.
    ///
    /// With [`Options::snapshot_reads`] on the whole batch is answered from
    /// one snapshot — one consistent linearisation point, no round, no log
    /// entry; otherwise it commits as a combining round of its own.
    pub fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        if self.snapshot_reads {
            self.check_poisoned();
            if batch.is_empty() {
                out.clear();
                return;
            }
            self.read_snapshot()
                .view()
                .batch_contains_report(batch, out);
            return;
        }
        self.run_batch_op(OpKind::Contains, batch, out);
    }

    /// Buffer-reusing variant of [`ConcurrentSet::batch_insert`].
    pub fn batch_insert_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        self.run_batch_op(OpKind::Insert, batch, out);
    }

    /// Buffer-reusing variant of [`ConcurrentSet::batch_remove`].
    pub fn batch_remove_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        self.run_batch_op(OpKind::Remove, batch, out);
    }

    /// Becomes the combiner (waiting out a concurrent one), flushes pending
    /// published ops, then executes `batch` as one `kind` round: the
    /// backend's batched op runs once, per-key flags land in `out`, and the
    /// round is logged and counted exactly like a combined one.  Duplicate
    /// resolution never arises — a [`Batch`] holds each key at most once.
    fn run_batch_op(&self, kind: OpKind, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        if batch.is_empty() {
            // An empty round would break the `ops >= rounds` stats
            // invariant; there is nothing to linearise anyway.
            self.check_poisoned();
            return;
        }
        loop {
            self.check_poisoned();
            if self.lock_combiner() {
                let _unlock = CombinerGuard { set: self };
                // Same post-CAS re-check as `try_fast_op`: never execute
                // after a poisoning release.
                self.check_poisoned();
                // Ops published before we won the flag were pending before
                // this batch arrived; linearise them first, as the fast
                // path does.
                self.combine_round();
                let total = batch.len() as u64;
                let _span = self
                    .trace
                    .as_ref()
                    .map(|ring| obs::trace_round(ring, total));
                // SAFETY: we hold the combiner flag — exclusive set access.
                let set = unsafe { &mut *self.set.get() };
                let pooled = batch.len() >= self.pool_cutoff;
                let run = |set: &mut S, out: &mut Vec<bool>| match kind {
                    OpKind::Contains => set.batch_contains_report(batch, out),
                    OpKind::Insert => set.batch_insert_report(batch, out),
                    OpKind::Remove => set.batch_remove_report(batch, out),
                };
                if pooled {
                    self.pool.install(|| run(set, out));
                } else {
                    run(set, out);
                }
                debug_assert_eq!(out.len(), batch.len(), "one flag per batch key");
                let seq = self.next_seq();
                self.commit_round_state(seq, !matches!(kind, OpKind::Contains));
                if let Some(log) = &self.log {
                    let ops = batch
                        .iter()
                        .zip(out.iter())
                        .map(|(key, &result)| RoundOp {
                            kind,
                            key: key.clone(),
                            result,
                        })
                        .collect();
                    log.lock().unwrap().push(Round { seq, ops });
                }
                self.metrics.batch_rounds.add_single_writer(1);
                self.bump_stats(total, pooled);
                return;
            }
            self.wait_until(|| {
                !self.combiner.load(Ordering::Acquire) || self.poisoned.load(Ordering::Acquire)
            });
        }
    }

    /// Returns `true` when a combiner panic has
    /// [poisoned](ConcurrentSet#poisoning) the front-end.  Unlike the
    /// operations, this never panics — it is how a supervising layer (a
    /// sharded tier) inspects shard health without tripping the poison
    /// itself.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Number of keys in the set.
    ///
    /// A snapshot read under [`Options::snapshot_reads`] (the default);
    /// otherwise it linearises as a combining round of its own: pending
    /// published operations are flushed first, then the backing set is
    /// read under the combiner flag.
    pub fn len(&self) -> usize {
        if self.snapshot_reads {
            return self.snap_read(|view| view.len());
        }
        self.read_via_round(|set| set.len())
    }

    /// Becomes the combiner (waiting out a concurrent one), flushes pending
    /// published ops, and reads the backing set under the flag — the
    /// round-entering read path behind `len`/`rank`/`min`/`max` when
    /// snapshot reads are off.
    fn read_via_round<T>(&self, read: impl FnOnce(&S) -> T) -> T {
        let mut read = Some(read);
        loop {
            self.check_poisoned();
            if self.lock_combiner() {
                let _unlock = CombinerGuard { set: self };
                // Post-CAS re-check, as in `try_fast_op`.
                self.check_poisoned();
                self.combine_round();
                // SAFETY: we hold the combiner flag, the only licence to
                // touch `set`.
                return (read.take().expect("called once"))(unsafe { &*self.set.get() });
            }
            self.wait_until(|| {
                !self.combiner.load(Ordering::Acquire) || self.poisoned.load(Ordering::Acquire)
            });
        }
    }

    /// One wait-free point read against the published snapshot: the query
    /// runs inside the cell's borrow window (no `Arc` refcount traffic —
    /// the read-side cost is two borrow-count bumps plus the counter), so
    /// the snapshot path stays cheaper than electing a combiner even on
    /// the uncontended fast path.  Lag is *not* sampled here; it is
    /// recorded on the handle and batch reads, where its cost amortises.
    fn snap_read<T>(&self, read: impl FnOnce(&dyn SetView<K>) -> T) -> T {
        self.check_poisoned();
        let result = self.snap.with_snap(|snap| read(snap.view()));
        self.metrics.snapshot_reads.inc();
        result
    }

    /// The last published [`ReadSnapshot`]: contents plus the seq of the
    /// mutating round they reflect.  Lock-free; counts as a snapshot read
    /// in the metrics (and samples `combine.snapshot_lag`).  Unlike the
    /// read operations this does **not** check for poisoning — like
    /// [`ConcurrentSet::is_poisoned`] it is a supervisor-grade accessor
    /// (the snapshot predates the poisoned round: a panicking round never
    /// publishes).
    pub fn read_snapshot(&self) -> Arc<ReadSnapshot<K>> {
        let snap = self.snap.load();
        self.metrics.snapshot_reads.inc();
        let committed = self.committed.load(Ordering::Acquire);
        self.metrics
            .snapshot_lag
            .record(committed.saturating_sub(snap.seq));
        snap
    }

    /// Seq of the last committed round of any kind — the high-water mark a
    /// client passes to [`ConcurrentSet::read_at_least`] to read its own
    /// (and every earlier acknowledged) write.
    pub fn committed_seq(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Snapshot read with a freshness floor: returns a snapshot whose
    /// *contents* include every round with seq `<= want`, waiting (and
    /// combining pending rounds itself when it can) until one is published.
    ///
    /// The returned snapshot's [`ReadSnapshot::seq`] may still be below
    /// `want` when the rounds in between were read-only — they changed
    /// nothing, so the older root is content-identical.
    ///
    /// # Bounded wait
    ///
    /// Every legitimately *observed* mark is already committed (rounds
    /// publish before they acknowledge), so a caller passing a mark it
    /// observed — [`ConcurrentSet::committed_seq`], a
    /// [`ReadSnapshot::seq`], a durable log record — returns immediately.
    /// A `want` above the committed mark can only be satisfied by rounds
    /// still in flight; this call helps drain them, but the moment the
    /// front-end is idle (no combiner running, no published operations)
    /// with `committed` still short of `want`, no progress this call can
    /// make will ever commit `want`, and it returns
    /// [`FreshnessError`] instead of spinning forever.
    ///
    /// # Panics
    ///
    /// Panics if the front-end is poisoned (`want` may never arrive);
    /// the poison check repeats on every wait iteration.
    pub fn read_at_least(&self, want: u64) -> Result<Arc<ReadSnapshot<K>>, FreshnessError> {
        loop {
            self.check_poisoned();
            // `committed` is loaded *before* the snapshot: if rounds
            // `(snap.seq, want]` were all committed by then and none of
            // them published, none mutated — the snapshot loaded *after*
            // is content-exact through `want` (a later mutating publish
            // only makes it fresher).
            let committed = self.committed.load(Ordering::Acquire);
            let snap = self.snap.load();
            if snap.seq >= want || committed >= want {
                self.metrics.snapshot_reads.inc();
                self.metrics
                    .snapshot_lag
                    .record(committed.saturating_sub(snap.seq));
                return Ok(snap);
            }
            // Behind: help drain pending rounds (we may become the
            // combiner ourselves) rather than bust-waiting.
            self.try_combine();
            // Re-check after helping.  If the mark still trails `want`
            // with no combiner mid-round and nothing published, the seq
            // counter is frozen: `want` exceeds every seq that will be
            // committed without new writers arriving, and waiting on
            // writers that need never arrive is the unbounded spin this
            // contract forbids.
            let committed = self.committed.load(Ordering::Acquire);
            if committed >= want {
                continue;
            }
            if !self.combiner.load(Ordering::Acquire)
                && self.ingress.load(Ordering::Acquire).is_null()
            {
                return Err(FreshnessError { want, committed });
            }
            std::thread::yield_now();
        }
    }

    /// Returns `true` when the set holds no keys.  Same linearisation as
    /// [`ConcurrentSet::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects every key of the last published snapshot (ascending)
    /// together with the sequence number it reflects — a consistent
    /// snapshot *and* its high-water mark, from one linearisation point.
    ///
    /// Served from the published [`ReadSnapshot`] (regardless of
    /// [`Options::snapshot_reads`]), so it never enters a round and never
    /// races a combiner: a round that panics mid-execution never publishes,
    /// so a half-applied round's view is structurally unreachable from
    /// here.  Pending published ops are *not* flushed — the pair reflects
    /// acknowledged rounds only (every acknowledged write is covered,
    /// because rounds publish before they acknowledge).  This is the
    /// durability tier's snapshot primitive: persist the keys, record the
    /// mark, and replay only log records with seq above it — rounds above
    /// the mark that mutated nothing are safe to replay anyway.
    pub fn snapshot_keys(&self) -> (Vec<K>, u64) {
        self.check_poisoned();
        let snap = self.snap.load();
        (snap.view().collect_keys(), snap.seq())
    }

    /// Snapshot of the combining counters.
    pub fn stats(&self) -> Stats {
        // `rounds` is Acquire-loaded FIRST: it pairs with the combiner's
        // Release store in `bump_stats`, whose write order guarantees the
        // `ops` (and `pooled_rounds`) advances of every visible round
        // happened-before — so `ops >= rounds` in any snapshot.
        let rounds = self.metrics.rounds.get_acquire();
        let ops = self.metrics.ops.get();
        // `pooled_rounds` advances before `rounds`, so a racing reader can
        // see the new pooled count with the old round count; clamping
        // keeps the documented `pooled_rounds <= rounds`.
        let pooled_rounds = self.metrics.pooled_rounds.get().min(rounds);
        Stats {
            rounds,
            ops,
            pooled_rounds,
        }
    }

    /// Snapshot of every named metric on the front-end's registry — the
    /// [`ConcurrentSet::stats`] counters plus the fast/slow path split,
    /// the poison count and the `combine.round_size` histogram.  Metric
    /// names follow the workspace `<subsystem>.<metric>` convention.
    pub fn metrics(&self) -> obs::Snapshot {
        self.registry.snapshot()
    }

    /// Scheduler telemetry of the backing fork-join pool (all zeros unless
    /// the pool was built with
    /// [`PoolBuilder::metrics`](forkjoin::PoolBuilder::metrics) enabled).
    /// Lets a service snapshot front-end and scheduler counters from one
    /// handle.
    pub fn pool_metrics(&self) -> forkjoin::PoolMetrics {
        self.pool.metrics()
    }

    /// Drains the round-trace ring (empty unless built with a non-zero
    /// [`Options::trace_capacity`]): one span per committed round, oldest
    /// first, each carrying begin/end timestamps and its op count.
    pub fn take_trace(&self) -> Vec<SpanRecord> {
        self.trace.as_ref().map(TraceRing::take).unwrap_or_default()
    }

    /// Renders the current trace ring as JSON without draining it.
    pub fn trace_json(&self) -> String {
        match &self.trace {
            Some(ring) => ring.to_json(),
            None => String::from("{\"dropped\": 0, \"spans\": []}"),
        }
    }

    /// Drains the committed-round log (empty unless built with
    /// [`Options::log_rounds`]).  Rounds are in commit order; replaying
    /// them sequentially reproduces every client-observed result.
    pub fn take_rounds(&self) -> Vec<Round<K>> {
        match &self.log {
            Some(log) => mem::take(&mut *log.lock().unwrap()),
            None => Vec::new(),
        }
    }

    /// Consumes the front-end, returning the backing set (and shutting the
    /// pool down).  Owning `self` proves no operation is in flight, so no
    /// published slot can be pending.
    pub fn into_inner(self) -> S {
        debug_assert!(self.ingress.load(Ordering::Relaxed).is_null());
        self.set.into_inner()
    }

    /// The uncontended fast path: if nobody is combining, become the
    /// combiner *without* publishing a slot — flush whatever is already
    /// published (ops pending longer than ours must not be starved, and
    /// linearising them first keeps the log order honest), then run our
    /// own op directly against the backend's point path.  No slot, no
    /// `done` handshake, no key clone; under no contention the front-end
    /// costs one CAS + one load over a plain mutex.
    ///
    /// Returns `None` when the path does not apply — the combiner flag is
    /// taken, or the cutoff demands pooled rounds (`pool_cutoff <= 1`,
    /// which routes every op through the batch machinery) — and the caller
    /// must fall back to [`ConcurrentSet::run_op_published`].
    fn try_fast_op(&self, kind: OpKind, key: &K) -> Option<bool> {
        self.check_poisoned();
        if self.pool_cutoff <= 1 || !self.lock_combiner() {
            return None;
        }
        let _unlock = CombinerGuard { set: self };
        // Re-check *after* winning the flag: the pre-CAS check races a
        // poisoning combiner's release, and proceeding here would both
        // combine on the half-mutated set and dereference slots abandoned
        // by clients that already panicked out.  The Acquire CAS pairs
        // with the poisoner's Release unlock, which its poison store
        // preceded, so this load cannot miss the poison.
        self.check_poisoned();
        // A plain load dodges the swap's locked RMW in the common empty
        // case.  Missing a racing publish is harmless: its publisher
        // observes our unlock (spin recheck or the Dekker handshake)
        // and elects itself next.
        if !self.ingress.load(Ordering::Acquire).is_null() {
            self.combine_round();
        }
        self.metrics.fast_path_rounds.add_single_writer(1);
        Some(self.run_point_op(kind, key))
    }

    /// Executes one operation directly against the backend's point path,
    /// logging it as a round of its own and counting it.  Caller must hold
    /// the combiner flag.
    fn run_point_op(&self, kind: OpKind, key: &K) -> bool {
        // One span per point round; recorded when `_span` drops at return.
        let _span = self.trace.as_ref().map(|ring| obs::trace_round(ring, 1));
        // SAFETY: the caller holds the combiner flag — exclusive set access.
        let set = unsafe { &mut *self.set.get() };
        let result = match kind {
            OpKind::Insert => set.insert_one(key),
            OpKind::Remove => set.remove_one(key),
            OpKind::Contains => set.contains(key),
        };
        let seq = self.next_seq();
        self.commit_round_state(seq, !matches!(kind, OpKind::Contains));
        if let Some(log) = &self.log {
            log.lock().unwrap().push(Round {
                seq,
                ops: vec![RoundOp {
                    kind,
                    key: key.clone(),
                    result,
                }],
            });
        }
        self.bump_stats(1, false);
        result
    }

    /// The contended path: publishes a slot, then combines or waits until
    /// the op completes.
    fn run_op_published(&self, kind: OpKind, key: K) -> bool {
        // Concurrent clients land here, so this is a real RMW, not the
        // combiner-only single-writer advance.
        self.metrics.slow_path_ops.inc();
        let slot = OpSlot {
            next: AtomicPtr::new(ptr::null_mut()),
            kind,
            key,
            result: UnsafeCell::new(false),
            done: AtomicBool::new(false),
        };
        // Pinned from here on: `slot` must not move until `done` is set.
        let slot_ptr = &slot as *const OpSlot<K> as *mut OpSlot<K>;
        let mut head = self.ingress.load(Ordering::Relaxed);
        loop {
            slot.next.store(head, Ordering::Relaxed);
            // Release publishes the slot's fields (kind/key/next) to the
            // combiner's Acquire drain-swap.  A successful CAS against a
            // re-seen head value is still correct (push-only ABA): whatever
            // lives at that address now is a live published slot, and our
            // `next` points at it.
            match self.ingress.compare_exchange_weak(
                head,
                slot_ptr,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        loop {
            if slot.done.load(Ordering::Acquire) {
                break;
            }
            // A poisoned front-end will never complete our slot; panicking
            // here (rather than blocking forever) also means the slot's
            // memory is abandoned exactly like every other poisoned path —
            // nothing dereferences it again, because every entry point
            // panics before touching the ingress list.
            self.check_poisoned();
            if self.try_combine() {
                continue; // a round committed; our op may be done now
            }
            // Someone else holds the combiner flag; they will either drain
            // our op or wake us when they release.
            self.wait_until(|| {
                slot.done.load(Ordering::Acquire)
                    || !self.combiner.load(Ordering::Acquire)
                    || self.poisoned.load(Ordering::Acquire)
            });
        }
        // SAFETY: `done` was set (Acquire above) after the combiner's final
        // write of `result`, and the combiner no longer touches the slot.
        unsafe { *slot.result.get() }
    }

    /// Attempts to become the combiner; on success runs one round, unlocks
    /// and wakes waiters.  Returns whether a round was run.
    fn try_combine(&self) -> bool {
        if !self.lock_combiner() {
            return false;
        }
        let _unlock = CombinerGuard { set: self };
        // Same post-CAS re-check as `try_fast_op`: never drain after a
        // poisoning release.
        self.check_poisoned();
        self.combine_round();
        true
    }

    /// Commits a round's read-path state: republishes the snapshot when
    /// the round could have mutated the backend, then advances the
    /// `committed` mark.  Caller must hold the combiner flag and call this
    /// *after* [`ConcurrentSet::next_seq`] but **before** logging the round
    /// or storing any client's `done` flag — publish-before-acknowledge is
    /// the whole read-your-writes guarantee.  Runs on every round, even
    /// with [`Options::snapshot_reads`] off: `snapshot_keys` and
    /// `read_at_least` serve from the cell regardless.
    fn commit_round_state(&self, seq: u64, mutated: bool) {
        if mutated {
            // SAFETY: combiner flag held — exclusive set access (the
            // round's own `&mut` borrow is dead by the time this runs).
            let set = unsafe { &*self.set.get() };
            let view = set.publish_root();
            // Make the publication cost visible: backends without an O(1)
            // `publish_root` override clone their whole contents here,
            // every mutating round.
            self.metrics
                .publish_clone_keys
                .add_single_writer(set.publish_clone_keys() as u64);
            self.snap.publish(Arc::new(ReadSnapshot { seq, view }));
        }
        self.committed.store(seq, Ordering::Release);
    }

    /// Allocates the sequence number for a round about to commit.  Caller
    /// must hold the combiner flag; successive combiners hand the counter
    /// off through the flag's Release/Acquire pair, so seqs are strictly
    /// increasing and gap-free in commit order.
    fn next_seq(&self) -> u64 {
        // SAFETY: combiner-exclusive (like `set` and `scratch`).
        unsafe {
            let seq = &mut *self.seq.get();
            *seq += 1;
            *seq
        }
    }

    fn lock_combiner(&self) -> bool {
        // Acquire pairs with the Release unlock of the previous combiner,
        // carrying the backing set's state to this thread.
        self.combiner
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Panics if a combiner panicked mid-round (see the struct docs'
    /// poisoning section).
    fn check_poisoned(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!(
                "ConcurrentSet is poisoned: a combiner panicked mid-round, \
                 so the backing set's state is indeterminate"
            );
        }
    }

    /// Spin, then yield, then sleep until `ready` holds.  Sleeper half of
    /// the Dekker handshake: register, fence, re-check, and only then wait,
    /// so a concurrent round commit or unlock cannot be slept through.
    fn wait_until(&self, mut ready: impl FnMut() -> bool) {
        for _ in 0..SPIN_LIMIT {
            if ready() {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELD_LIMIT {
            if ready() {
                return;
            }
            std::thread::yield_now();
        }
        let mut guard = self.sleep_mutex.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        while !ready() {
            guard = self.progress.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Runs one combining round.  Caller must hold the combiner flag.
    fn combine_round(&self) {
        // Claim everything published so far.  Acquire pairs with the
        // publishers' Release CASes, making the slots' fields visible.
        let drained = self.ingress.swap(ptr::null_mut(), Ordering::Acquire);
        if drained.is_null() {
            return;
        }
        // Single-op round (the common case whenever clients do not outnumber
        // actual hardware concurrency): skip the batch machinery entirely
        // and hit the backend's point path.  Only when the cutoff would not
        // send a one-op round through the pool — `pool_cutoff <= 1` keeps
        // its documented "everything pooled" meaning.
        // SAFETY: the slot stays pinned until its `done` store below.
        if self.pool_cutoff > 1 && unsafe { (*drained).next.load(Ordering::Relaxed) }.is_null() {
            let slot = unsafe { &*drained };
            let result = self.run_point_op(slot.kind, &slot.key);
            // SAFETY: combiner-exclusive until the `done` store, which is
            // the last touch (Release publishes the result write).
            unsafe {
                *slot.result.get() = result;
                slot.done.store(true, Ordering::Release);
            }
            return;
        }
        // SAFETY: combiner flag held — exclusive access to the scratch.
        let scratch = unsafe { &mut *self.scratch.get() };
        let Scratch {
            contains: con,
            insert: ins,
            remove: rem,
            claimed,
        } = scratch;

        // Split by kind.  The Treiber stack yields newest-first; pushing
        // onto the lanes and reversing restores publish order.
        let mut total: u64 = 0;
        let mut cursor = drained;
        while !cursor.is_null() {
            // SAFETY: every published slot stays pinned until its `done`
            // flag is set, which this round has not done yet.
            let slot = unsafe { &*cursor };
            cursor = slot.next.load(Ordering::Relaxed);
            let lane = match slot.kind {
                OpKind::Contains => &mut *con,
                OpKind::Insert => &mut *ins,
                OpKind::Remove => &mut *rem,
            };
            lane.slots.push(slot);
            total += 1;
        }
        for lane in [&mut *con, &mut *ins, &mut *rem] {
            lane.slots.reverse();
            lane.keys.clear();
            // SAFETY: slots stay pinned (as above); `key` is read by shared
            // reference, which `K: Sync` licences across threads.
            lane.keys
                .extend(lane.slots.iter().map(|&s| unsafe { (*s).key.clone() }));
        }

        // One span for the whole batch round (build, execute, distribute,
        // complete); recorded when `_span` drops at return.
        let _span = self
            .trace
            .as_ref()
            .map(|ring| obs::trace_round(ring, total));

        // One sorted batch per kind; the key buffers come back via
        // `into_vec` below, so steady-state rounds do not allocate.
        let con_batch = Batch::from_unsorted(mem::take(&mut con.keys));
        let ins_batch = Batch::from_unsorted(mem::take(&mut ins.keys));
        let rem_batch = Batch::from_unsorted(mem::take(&mut rem.keys));

        // Execute in linearisation order: contains, insert, remove.
        // SAFETY: combiner flag held — exclusive access to the set.
        let set = unsafe { &mut *self.set.get() };
        let (con_flags, ins_flags, rem_flags) = (&mut con.flags, &mut ins.flags, &mut rem.flags);
        let mut run = |set: &mut S| {
            if !con_batch.is_empty() {
                set.batch_contains_report(&con_batch, con_flags);
            }
            if !ins_batch.is_empty() {
                set.batch_insert_report(&ins_batch, ins_flags);
            }
            if !rem_batch.is_empty() {
                set.batch_remove_report(&rem_batch, rem_flags);
            }
        };
        let pooled = (total as usize) >= self.pool_cutoff;
        if pooled {
            self.pool.install(|| run(set));
        } else {
            run(set);
        }

        // Fan per-key flags back out to per-op results, logging the
        // linearised round if asked to.
        let mut logged = self
            .log
            .as_ref()
            .map(|_| Vec::with_capacity(total as usize));
        distribute(
            &con.slots,
            &con_batch,
            &con.flags,
            claimed,
            false,
            &mut logged,
        );
        distribute(
            &ins.slots,
            &ins_batch,
            &ins.flags,
            claimed,
            true,
            &mut logged,
        );
        distribute(
            &rem.slots,
            &rem_batch,
            &rem.flags,
            claimed,
            true,
            &mut logged,
        );

        // Log the round *before* releasing any client: once a `done` flag
        // is stored its client may return and immediately `take_rounds`,
        // which must already contain every round whose results have been
        // observed.  The snapshot publishes first for the same reason —
        // a released client must find its write in the next snapshot read.
        let seq = self.next_seq();
        self.commit_round_state(seq, !ins_batch.is_empty() || !rem_batch.is_empty());
        if let (Some(log), Some(round)) = (&self.log, logged) {
            log.lock().unwrap().push(Round { seq, ops: round });
        }

        // Completion: after each `done` store the owning client may pop the
        // slot off its stack, so this loop is the combiner's last touch.
        for lane in [&mut *con, &mut *ins, &mut *rem] {
            for &slot in &lane.slots {
                // SAFETY: Release publishes the result write above; the
                // slot is not accessed afterwards.
                unsafe { (*slot).done.store(true, Ordering::Release) };
            }
            lane.slots.clear();
        }

        // Reclaim the key buffers for the next round.
        con.keys = con_batch.into_vec();
        ins.keys = ins_batch.into_vec();
        rem.keys = rem_batch.into_vec();

        self.bump_stats(total, pooled);
    }

    /// Advances the counters for one committed round.  Combiner-only — the
    /// caller holds the combiner flag, and flag hand-off (Release unlock /
    /// Acquire lock) orders successive combiners — so the single-writer
    /// plain-load+store advance is exact without atomic RMWs.
    ///
    /// The *write order* is load-bearing for racing `stats()` readers,
    /// Loom-style:
    ///
    /// ```text
    /// combiner (this fn):              stats() reader:
    ///   ops      += n   (Release)        r = rounds (Acquire)  // FIRST
    ///   pooled   += 0|1 (Release)        o = ops    (Relaxed)
    ///   round_size.record(n)             p = pooled (Relaxed)
    ///   rounds   += 1   (Release)  // LAST
    /// ```
    ///
    /// A reader that observes `rounds = r` observed the Release store that
    /// published round *r*, so every write sequenced before it — the `ops`
    /// advances of all `r` rounds — is visible: `o >= r` holds in **every**
    /// snapshot, racing or quiescent, because each round carries at least
    /// one op.  (An earlier revision advanced `rounds` first with `Relaxed`
    /// stores, letting a racing reader see `ops < rounds`; the stress suite
    /// now hammers this invariant.)  `pooled` advances before `rounds` too,
    /// but a reader can still pair a new `pooled` with an old `rounds` —
    /// `stats()` clamps instead.
    fn bump_stats(&self, ops: u64, pooled: bool) {
        self.metrics.ops.add_single_writer(ops);
        if pooled {
            self.metrics.pooled_rounds.add_single_writer(1);
        }
        self.metrics.round_size.record(ops);
        self.metrics.rounds.add_single_writer(1);
    }
}

/// Writes one lane's per-op results from its batch's per-key flags.
///
/// `consume` is set for insert/remove lanes, where duplicated keys resolve
/// sequentially: the first op on a key gets the batch flag, later
/// duplicates observe the first one's effect (insert after insert → already
/// present; remove after remove → already gone), exactly as the replayed
/// linearisation does.
fn distribute<K: Ord + Clone>(
    slots: &[*const OpSlot<K>],
    batch: &Batch<K>,
    flags: &[bool],
    claimed: &mut Vec<bool>,
    consume: bool,
    logged: &mut Option<Vec<RoundOp<K>>>,
) {
    claimed.clear();
    claimed.resize(batch.len(), false);
    for &ptr in slots {
        // SAFETY: slots stay pinned until their `done` store, which happens
        // after all `distribute` calls of the round.
        let slot = unsafe { &*ptr };
        let idx = batch
            .binary_search(&slot.key)
            .expect("round batch is built from exactly these op keys");
        let result = if consume {
            let first = !claimed[idx];
            claimed[idx] = true;
            first && flags[idx]
        } else {
            flags[idx]
        };
        // SAFETY: combiner-exclusive until `done` is set; the owning client
        // reads `result` only after its Acquire load of `done`.
        unsafe { *slot.result.get() = result };
        if let Some(log) = logged {
            log.push(RoundOp {
                kind: slot.kind,
                key: slot.key.clone(),
                result,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// A sequential reference backend: a sorted Vec driven through the
    /// default (allocating) trait paths.
    struct VecSet(Vec<u64>);

    impl BatchedSet<u64> for VecSet {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn contains(&self, key: &u64) -> bool {
            self.0.binary_search(key).is_ok()
        }
        fn rank(&self, key: &u64) -> usize {
            self.0.partition_point(|k| k < key)
        }
        fn min(&self) -> Option<&u64> {
            self.0.first()
        }
        fn max(&self) -> Option<&u64> {
            self.0.last()
        }
        fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
            batch.iter().map(|q| self.contains(q)).collect()
        }
        fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            let flags: Vec<bool> = batch.iter().map(|q| !self.contains(q)).collect();
            self.0.extend(
                batch
                    .iter()
                    .zip(&flags)
                    .filter(|(_, &f)| f)
                    .map(|(q, _)| *q),
            );
            self.0.sort_unstable();
            flags
        }
        fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            let flags: Vec<bool> = batch.iter().map(|q| self.contains(q)).collect();
            self.0.retain(|k| batch.binary_search(k).is_err());
            flags
        }
        fn collect_keys(&self) -> Vec<u64> {
            self.0.clone()
        }
    }

    /// Round-path harness: snapshot reads off, so every read linearises
    /// through the combiner and lands in the round log — what the replay
    /// assertions below count on.  Snapshot-path behaviour has its own
    /// tests.
    fn fresh(log: bool) -> ConcurrentSet<u64, VecSet> {
        ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 4,
                log_rounds: log,
                snapshot_reads: false,
                ..Options::default()
            },
        )
    }

    #[test]
    fn sequential_ops_have_set_semantics() {
        let set = fresh(false);
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.insert(9));
        assert!(set.contains(&5));
        assert!(!set.contains(&6));
        assert_eq!(set.len(), 2);
        assert!(set.remove(&5));
        assert!(!set.remove(&5));
        assert!(!set.is_empty());
        assert_eq!(set.into_inner().0, vec![9]);
    }

    #[test]
    fn round_log_records_sequential_history() {
        let set = fresh(true);
        assert!(set.insert(1));
        assert!(set.contains(&1));
        assert!(set.remove(&1));
        let rounds = set.take_rounds();
        // Sequential clients combine themselves: one op per round.
        assert_eq!(rounds.len(), 3);
        let flat: Vec<RoundOp<u64>> = rounds.into_iter().flat_map(|r| r.ops).collect();
        assert_eq!(
            flat,
            vec![
                RoundOp {
                    kind: OpKind::Insert,
                    key: 1,
                    result: true
                },
                RoundOp {
                    kind: OpKind::Contains,
                    key: 1,
                    result: true
                },
                RoundOp {
                    kind: OpKind::Remove,
                    key: 1,
                    result: true
                },
            ]
        );
        // The log drains.
        assert!(set.take_rounds().is_empty());
        assert_eq!(set.stats().rounds, 3);
        assert_eq!(set.stats().ops, 3);
    }

    #[test]
    fn rounds_carry_gap_free_sequence_numbers() {
        let set = fresh(true);
        assert!(set.insert(1));
        set.batch_insert(&Batch::from_unsorted(vec![2u64, 3]));
        assert!(set.contains(&2));
        assert!(set.remove(&1));
        let rounds = set.take_rounds();
        let seqs: Vec<u64> = rounds.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "fresh history numbers from 1");

        // Numbering continues across take_rounds drains.
        set.insert(9);
        assert_eq!(set.take_rounds()[0].seq, 5);

        // first_seq seeds the counter (the recovery path).
        let resumed = ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 4,
                log_rounds: true,
                first_seq: 41,
                ..Options::default()
            },
        );
        resumed.insert(7);
        assert_eq!(resumed.take_rounds()[0].seq, 42);
    }

    #[test]
    fn snapshot_keys_pairs_contents_with_their_seq() {
        let set = fresh(true);
        let (keys, seq) = set.snapshot_keys();
        assert!(keys.is_empty());
        assert_eq!(seq, 0, "no rounds committed yet");

        set.insert(5);
        set.batch_insert(&Batch::from_unsorted(vec![1u64, 9]));
        set.remove(&9);
        let (keys, seq) = set.snapshot_keys();
        assert_eq!(keys, vec![1, 5]);
        assert_eq!(seq, 3, "mark equals the last committed round's seq");
        assert_eq!(
            set.take_rounds().last().unwrap().seq,
            seq,
            "log agrees with the snapshot mark"
        );
        // Snapshot rounds commit no ops and consume no seq.
        set.insert(2);
        assert_eq!(set.take_rounds()[0].seq, 4);
    }

    #[test]
    fn stats_count_pooled_rounds() {
        // pool_cutoff 4 and single-op rounds: nothing goes through the pool.
        let set = fresh(false);
        for k in 0..10 {
            set.insert(k);
        }
        let stats = set.stats();
        assert_eq!(stats.ops, 10);
        assert_eq!(stats.pooled_rounds, 0);

        // pool_cutoff 0: every round is a pool round.
        let pooled = ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 0,
                log_rounds: false,
                ..Options::default()
            },
        );
        pooled.insert(1);
        pooled.insert(2);
        assert_eq!(pooled.stats().pooled_rounds, pooled.stats().rounds);
    }

    /// A backend that panics when asked to insert a magic key.
    struct BombSet(VecSet);

    impl BatchedSet<u64> for BombSet {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn contains(&self, key: &u64) -> bool {
            self.0.contains(key)
        }
        fn rank(&self, key: &u64) -> usize {
            self.0.rank(key)
        }
        fn min(&self) -> Option<&u64> {
            self.0.min()
        }
        fn max(&self) -> Option<&u64> {
            self.0.max()
        }
        fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
            self.0.batch_contains(batch)
        }
        fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            assert!(!batch.contains(&u64::MAX), "bomb");
            self.0.batch_insert(batch)
        }
        fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            self.0.batch_remove(batch)
        }
        fn collect_keys(&self) -> Vec<u64> {
            self.0.collect_keys()
        }
    }

    #[test]
    fn backend_panic_poisons_instead_of_wedging() {
        // pool_cutoff 0 forces the batch path, whose `batch_insert` bombs.
        let set = ConcurrentSet::with_options(
            BombSet(VecSet(Vec::new())),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 0,
                log_rounds: false,
                ..Options::default()
            },
        );
        assert!(set.insert(1));
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.insert(u64::MAX);
        }));
        assert!(boom.is_err());
        // Subsequent operations fail fast with the poison message rather
        // than deadlocking on a combiner flag that never clears.
        let after = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.contains(&1);
        }));
        let payload = after.unwrap_err();
        let msg = payload.downcast_ref::<&str>().expect("str payload");
        assert!(msg.contains("poisoned"), "{msg}");
        let len_call = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| set.len()));
        assert!(len_call.is_err());
    }

    #[test]
    fn registry_metrics_split_fast_and_slow_paths() {
        let set = fresh(false);
        for k in 0..10 {
            set.insert(k);
        }
        assert!(set.contains(&3));
        let m = set.metrics();
        // Sequential clients always win the flag: everything is fast path.
        assert_eq!(m.counter("combine.fast_path_rounds"), Some(11));
        assert_eq!(m.counter("combine.slow_path_ops"), Some(0));
        assert_eq!(m.counter("combine.rounds"), Some(11));
        assert_eq!(m.counter("combine.ops"), Some(11));
        assert_eq!(m.counter("combine.poisoned"), Some(0));
        let sizes = m.histogram("combine.round_size").unwrap();
        assert_eq!(sizes.count(), 11);
        assert_eq!(sizes.sum, 11, "all point rounds");
        // The registry snapshot agrees with the legacy Stats view.
        assert_eq!(set.stats().rounds, 11);
        let json = m.to_json();
        assert!(json.contains("\"combine.rounds\": 11"), "{json}");

        // pool_cutoff <= 1 forbids the fast path; everything publishes.
        let slow = ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 0,
                ..Options::default()
            },
        );
        slow.insert(1);
        slow.insert(2);
        let m = slow.metrics();
        assert_eq!(m.counter("combine.fast_path_rounds"), Some(0));
        assert_eq!(m.counter("combine.slow_path_ops"), Some(2));
    }

    #[test]
    fn batched_surface_commits_whole_batches_as_rounds() {
        let set = fresh(true);
        assert!(set.insert(5));
        let ins = set.batch_insert(&Batch::from_unsorted(vec![1u64, 5, 9]));
        assert_eq!(ins, vec![true, false, true]);
        let con = set.batch_contains(&Batch::from_unsorted(vec![1u64, 2, 9]));
        assert_eq!(con, vec![true, false, true]);
        let rem = set.batch_remove(&Batch::from_unsorted(vec![2u64, 5]));
        assert_eq!(rem, vec![false, true]);
        assert_eq!(set.len(), 2);

        // The log holds the point round plus one round per batch, each
        // batch round carrying its keys in batch order.
        let rounds = set.take_rounds();
        assert_eq!(rounds.len(), 4);
        assert_eq!(rounds[1].ops.len(), 3);
        assert_eq!(
            rounds[1].ops[0],
            RoundOp {
                kind: OpKind::Insert,
                key: 1,
                result: true
            }
        );
        assert_eq!(rounds[3].ops.len(), 2);

        // Stats count batch keys as ops; the batched rounds are tallied.
        let m = set.metrics();
        assert_eq!(m.counter("combine.batch_rounds"), Some(3));
        assert_eq!(m.counter("combine.ops"), Some(1 + 3 + 3 + 2));
        assert_eq!(m.counter("combine.rounds"), Some(4));

        // Empty batches are no-ops: no round, no flags, nothing logged.
        let before = set.stats();
        assert!(set.batch_insert(&Batch::empty()).is_empty());
        let mut out = vec![true; 4];
        set.batch_remove_report(&Batch::empty(), &mut out);
        assert!(out.is_empty(), "report variant clears stale flags");
        assert_eq!(set.stats(), before);
        assert!(set.take_rounds().is_empty());
    }

    #[test]
    fn batched_surface_pools_large_batches() {
        // pool_cutoff 4: a 5-key batch must execute inside the pool.
        let set = fresh(false);
        set.batch_insert(&Batch::from_unsorted(vec![1u64, 2, 3, 4, 5]));
        assert_eq!(set.stats().pooled_rounds, 1);
        set.batch_contains(&Batch::from_unsorted(vec![1u64, 2]));
        assert_eq!(set.stats().pooled_rounds, 1, "below cutoff stays inline");
    }

    #[test]
    fn batched_surface_respects_poisoning() {
        let set = ConcurrentSet::with_options(
            BombSet(VecSet(Vec::new())),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 0,
                log_rounds: false,
                ..Options::default()
            },
        );
        assert!(!set.is_poisoned());
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.batch_insert(&Batch::from_unsorted(vec![1u64, u64::MAX]));
        }));
        assert!(boom.is_err());
        assert!(set.is_poisoned(), "is_poisoned reports without panicking");
        let after = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.batch_contains(&Batch::from_unsorted(vec![1u64]));
        }));
        let payload = after.unwrap_err();
        let msg = payload.downcast_ref::<&str>().expect("str payload");
        assert!(msg.contains("poisoned"), "{msg}");
    }

    #[test]
    fn trace_ring_records_round_spans() {
        let set = ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 4,
                trace_capacity: 2,
                ..Options::default()
            },
        );
        // Tracing off by default elsewhere:
        assert!(fresh(false).take_trace().is_empty());
        assert_eq!(fresh(false).trace_json(), "{\"dropped\": 0, \"spans\": []}");

        for k in 0..3 {
            set.insert(k);
        }
        let json = set.trace_json();
        assert!(
            json.contains("\"dropped\": 1"),
            "capacity 2, 3 rounds: {json}"
        );
        let spans = set.take_trace();
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert_eq!(span.label, "round");
            assert_eq!(span.ops, 1);
            assert!(span.end_ns >= span.start_ns);
        }
        assert!(set.take_trace().is_empty(), "take drains");
    }

    /// Snapshot-path harness: default `snapshot_reads: true`, log on so
    /// the tests can prove reads *stay out* of the round log.
    fn fresh_snap() -> ConcurrentSet<u64, VecSet> {
        ConcurrentSet::with_options(
            VecSet(Vec::new()),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 4,
                log_rounds: true,
                ..Options::default()
            },
        )
    }

    #[test]
    fn snapshot_reads_bypass_the_combiner() {
        let set = fresh_snap();
        // Read-your-writes: every acknowledged insert is visible to the
        // very next snapshot read.
        for k in [5u64, 1, 9] {
            assert!(set.insert(k));
            assert!(set.contains(&k), "write to {k} not visible to read");
        }
        assert!(!set.contains(&2));
        assert_eq!(set.len(), 3);
        assert_eq!(set.rank(&9), 2);
        assert_eq!(set.min(), Some(1));
        assert_eq!(set.max(), Some(9));
        assert_eq!(
            set.batch_contains(&Batch::from_unsorted(vec![1u64, 2, 9])),
            vec![true, false, true]
        );
        assert!(set.remove(&9));
        assert!(!set.contains(&9), "remove not visible to read");
        let _handle = set.read_snapshot();

        // None of those reads entered a round: the log holds only the
        // four writes, and no Contains op anywhere.
        let rounds = set.take_rounds();
        assert_eq!(rounds.len(), 4);
        assert!(rounds
            .iter()
            .flat_map(|r| &r.ops)
            .all(|op| op.kind != OpKind::Contains));
        assert_eq!(set.committed_seq(), 4, "reads consume no seqs");

        let m = set.metrics();
        let snap_reads = m.counter("combine.snapshot_reads").unwrap();
        assert!(snap_reads >= 10, "every read served by snapshot");
        // Lag is sampled on handle and batch reads (point reads skip it
        // to stay cheaper than the combiner fast path): one sample for
        // the batch_contains above, one for the read_snapshot.
        assert_eq!(
            m.histogram("combine.snapshot_lag").unwrap().count(),
            2,
            "one lag sample per handle/batch read"
        );
        assert_eq!(m.counter("combine.ops"), Some(4), "writes only");
    }

    #[test]
    fn snapshots_are_frozen_at_their_seq() {
        let set = fresh_snap();
        set.batch_insert(&Batch::from_unsorted(vec![1u64, 2, 3]));
        let before = set.read_snapshot();
        assert!(set.insert(10));
        assert!(set.remove(&1));
        let after = set.read_snapshot();
        // The old snapshot still answers as of its own round.
        assert_eq!(before.seq(), 1);
        assert!(before.view().contains(&1) && !before.view().contains(&10));
        assert_eq!(before.view().collect_keys(), vec![1, 2, 3]);
        assert_eq!(after.seq(), 3);
        assert!(!after.view().contains(&1) && after.view().contains(&10));
        // `snapshot_keys` pairs the same way, without entering a round.
        let (keys, seq) = set.snapshot_keys();
        assert_eq!((keys, seq), (vec![2, 3, 10], 3));
        assert_eq!(set.committed_seq(), 3, "snapshot consumed no seq");
    }

    #[test]
    fn read_at_least_reads_the_named_write() {
        let set = fresh_snap();
        set.insert(7);
        let mark = set.committed_seq();
        assert_eq!(mark, 1);
        let snap = set.read_at_least(mark).unwrap();
        assert!(snap.seq() >= mark);
        assert!(snap.view().contains(&7));

        // With snapshot reads off, read-only rounds advance `committed`
        // without republishing: the mark trails, the contents do not.
        let set = fresh(false);
        set.insert(1);
        assert!(set.contains(&1)); // a combining round of its own
        assert_eq!(set.committed_seq(), 2);
        let snap = set.read_at_least(2).unwrap();
        assert_eq!(snap.seq(), 1, "mutating publish was round 1");
        assert!(
            snap.view().contains(&1),
            "contents exact through the wanted mark"
        );
    }

    #[test]
    fn read_at_least_errors_on_unreachable_marks() {
        // Regression: a `want` one past the last committed seq, with no
        // concurrent writers, used to spin forever — nothing would ever
        // commit it.  The bounded-wait contract returns an error instead.
        let set = fresh_snap();
        set.insert(7);
        let mark = set.committed_seq();
        let err = set.read_at_least(mark + 1).unwrap_err();
        assert_eq!(
            err,
            FreshnessError {
                want: mark + 1,
                committed: mark
            }
        );
        assert!(err.to_string().contains("idle"), "{err}");
        // The front-end is unharmed: observed marks still succeed, writes
        // still commit and are then reachable.
        assert!(set.read_at_least(mark).is_ok());
        set.insert(8);
        let snap = set.read_at_least(mark + 1).unwrap();
        assert!(snap.view().contains(&8));
        // An empty, never-written set errors for any positive mark.
        let idle = fresh_snap();
        assert!(idle.read_at_least(1).is_err());
    }

    #[test]
    fn range_reads_are_wait_free_snapshot_reads() {
        let set = fresh_snap();
        set.batch_insert(&Batch::from_unsorted((0..100u64).map(|i| i * 2).collect()));
        let before = set.metrics().counter("combine.snapshot_reads").unwrap();

        assert_eq!(
            set.range_keys(Bound::Included(&10), Bound::Excluded(&20)),
            vec![10, 12, 14, 16, 18]
        );
        assert_eq!(
            set.range_count(Bound::Included(&10), Bound::Excluded(&20)),
            5
        );
        assert_eq!(set.predecessor(&11), Some(10));
        assert_eq!(set.predecessor(&0), None);
        assert_eq!(set.successor(&196), Some(198));
        assert_eq!(set.successor(&198), None);
        assert_eq!(set.kth(0), Some(0));
        assert_eq!(set.kth(99), Some(198));
        assert_eq!(set.kth(100), None);

        // Every one of those was served from the snapshot: the counter
        // moved and the round log gained nothing.
        let after = set.metrics().counter("combine.snapshot_reads").unwrap();
        assert!(after >= before + 9, "{before} -> {after}");
        assert_eq!(set.take_rounds().len(), 1, "only the batch insert");

        // Staleness contract: a range read reflects acknowledged writes.
        set.insert(11);
        assert_eq!(
            set.range_keys(Bound::Included(&10), Bound::Included(&12)),
            vec![10, 11, 12]
        );

        // With snapshot reads off the same queries linearise via rounds
        // and agree.
        let set = fresh(false);
        set.batch_insert(&Batch::from_unsorted((0..50u64).collect()));
        assert_eq!(set.range_count(Bound::Unbounded, Bound::Excluded(&10)), 10);
        assert_eq!(set.kth(3), Some(3));
        assert_eq!(set.predecessor(&1), Some(0));
        assert_eq!(set.successor(&48), Some(49));
    }

    #[test]
    fn publish_clone_keys_stays_zero_for_shared_roots() {
        // VecSet has no publish_root override: every mutating round clones
        // the whole contents, and the counter makes that cost visible.
        let set = fresh_snap();
        set.insert(1);
        set.insert(2);
        set.insert(3);
        let cloned = set.metrics().counter("combine.publish_clone_keys").unwrap();
        assert_eq!(cloned, 1 + 2 + 3, "VecSet pays O(n) per mutating round");

        // The IST overrides publication to an Arc clone: zero keys cloned.
        let pool = Pool::new(2).unwrap();
        let ist = ConcurrentSet::new(pbist::IstSet::from_unsorted((0..1000u64).collect()), pool);
        ist.insert(5000);
        ist.batch_insert(&Batch::from_unsorted((2000..2100u64).collect()));
        assert_eq!(
            ist.metrics().counter("combine.publish_clone_keys"),
            Some(0),
            "IstSet publishes in O(1)"
        );
    }

    #[test]
    fn snapshot_reads_panic_on_poison_without_blocking() {
        let set = ConcurrentSet::with_options(
            BombSet(VecSet(Vec::new())),
            Pool::new(1).unwrap(),
            Options {
                pool_cutoff: 0,
                ..Options::default()
            },
        );
        assert!(set.insert(3));
        assert!(set.contains(&3), "snapshot read before poisoning");
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.insert(u64::MAX);
        }));
        assert!(boom.is_err());
        // Every snapshot-served entry point fails fast with the poison
        // message — no hang, no stale answer.
        let reads: Vec<Box<dyn Fn() + '_>> = vec![
            Box::new(|| {
                set.contains(&3);
            }),
            Box::new(|| {
                set.len();
            }),
            Box::new(|| {
                set.rank(&3);
            }),
            Box::new(|| {
                set.min();
            }),
            Box::new(|| {
                set.snapshot_keys();
            }),
            Box::new(|| {
                set.batch_contains(&Batch::from_unsorted(vec![3u64]));
            }),
            Box::new(|| {
                let _ = set.read_at_least(1);
            }),
        ];
        for read in reads {
            let after = std::panic::catch_unwind(std::panic::AssertUnwindSafe(read));
            let payload = after.unwrap_err();
            let msg = payload.downcast_ref::<&str>().expect("str payload");
            assert!(msg.contains("poisoned"), "{msg}");
        }
        // The supervisor-grade accessor still answers: the last published
        // snapshot predates the poisoned round.
        assert!(set.read_snapshot().view().contains(&3));
    }

    #[test]
    fn concurrent_clients_agree_with_oracle_replay() {
        let set = Arc::new(fresh(true));
        let threads = 4;
        let per_thread = 300u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    // Overlapping key ranges force result races on purpose.
                    for i in 0..per_thread {
                        let k = (t * 7 + i) % 50;
                        match i % 3 {
                            0 => set.insert(k),
                            1 => set.remove(&k),
                            _ => set.contains(&k),
                        };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rounds = set.take_rounds();
        let total_ops: usize = rounds.iter().map(|r| r.ops.len()).sum();
        assert_eq!(total_ops as u64, threads * per_thread);
        // Replaying the committed rounds sequentially must reproduce every
        // per-op result.
        let mut oracle = BTreeSet::new();
        for (r, round) in rounds.iter().enumerate() {
            for op in &round.ops {
                let expect = match op.kind {
                    OpKind::Insert => oracle.insert(op.key),
                    OpKind::Remove => oracle.remove(&op.key),
                    OpKind::Contains => oracle.contains(&op.key),
                };
                assert_eq!(op.result, expect, "round {r}, op {op:?}");
            }
        }
        let final_keys: Vec<u64> = oracle.into_iter().collect();
        let backing = Arc::try_unwrap(set).ok().unwrap().into_inner();
        assert_eq!(backing.0, final_keys);
    }
}
