//! Durability tier: a write-ahead log, snapshots and crash recovery
//! layered over the flat-combining front-end's commit log.
//!
//! The flat-combining combiner already produces exactly the artefact a
//! write-ahead log needs: a totally-ordered stream of committed rounds,
//! each stamped with a gap-free sequence number (`combine::Round::seq`).
//! [`DurableSet`] drains that stream ([`combine::ConcurrentSet::take_rounds`])
//! and appends one checksummed record per *mutation* round to an
//! append-only segment log, amortising `fsync` over groups of rounds the
//! same way combining amortises tree descents over groups of keys.
//!
//! # The protocol
//!
//! * **Append.**  Every operation, after completing in memory, *publishes*:
//!   it takes the wal lock, drains all committed-but-unappended rounds
//!   (its own round among them — the combiner logs a round before
//!   releasing any of its clients), strips reads and ineffective ops, and
//!   appends the remainder as records.  The wal lock makes append order
//!   equal commit order, so the log *is* the linearisation.
//! * **Group commit.**  Records accumulate until
//!   [`DurableOptions::group_commit`] of them are pending, then one
//!   `fsync` covers them all.  `group_commit: 1` fsyncs on every mutation
//!   round — each op is durable before its call returns; larger groups
//!   trade bounded post-crash loss for an order of magnitude fewer
//!   fsyncs.  [`DurableSet::durable_seq`] is the contract either way: it
//!   advances only when records reach disk, so state at or below it
//!   survives any crash.  [`DurableSet::sync`] forces the boundary.
//! * **Snapshot.**  Every [`DurableOptions::snapshot_every`] appended
//!   records (or on [`DurableSet::snapshot`]), the set's full contents are
//!   captured at one linearisation point ([`combine::ConcurrentSet::snapshot_keys`],
//!   which serves the combiner-published read snapshot without entering a
//!   round), written to a snapshot file, and committed by atomically
//!   renaming a manifest into place.  Because the combiner publishes a
//!   round's snapshot *before* appending the round to the commit log, the
//!   snapshot's seq covers every record already drained into the wal, so
//!   *all* segments are deleted and the log restarts empty — bounded disk,
//!   bounded recovery.
//! * **Recover.**  [`DurableSet::open`] loads the manifest's snapshot (if
//!   any) and replays log records with seq above it, in segment-name
//!   order, into a fresh backend.  A torn final record — the signature of
//!   a crash mid-append — ends replay cleanly and is truncated away; the
//!   new combiner's numbering resumes from the recovered high-water seq
//!   ([`combine::Options::first_seq`]), so a later recovery replays the
//!   continued history without seq collisions.
//!
//! # Crash-consistency contract
//!
//! After `SIGKILL` at any point, reopening the directory yields a set
//! whose contents equal the committed history up to some round boundary
//! at or after the last fsynced record — never a torn state, never a
//! reordering, and always including every round at or below the
//! `durable_seq` the crashed process last observed.  The kill-9 test in
//! `tests/durable_crash.rs` and the property suite in
//! `crates/durable/tests/recovery_props.rs` enforce exactly this.
//!
//! What is *not* promised: rounds above `durable_seq` (acknowledged in
//! memory, not yet fsynced under `group_commit > 1`) may or may not
//! survive — whole trailing rounds, never fractions of one.
//!
//! # Maps
//!
//! [`DurableMap`] is the key-value variant: the same WAL/snapshot/recover
//! protocol in a *version-2* on-disk dialect whose upsert records and
//! snapshots carry value payloads.  See the [`map`] module docs for the
//! dialect and its (mutex-serialised, combiner-less) concurrency model.
//!
//! # Example
//!
//! ```
//! use durable::{DurableOptions, DurableSet};
//! use pbist::IstSet;
//! use forkjoin::Pool;
//!
//! let dir = std::env::temp_dir().join(format!("durable-doc-{}", std::process::id()));
//! let open = |pool| {
//!     DurableSet::open(&dir, pool, DurableOptions::default(), |batch| {
//!         IstSet::from_batch(&batch)
//!     })
//! };
//!
//! let set = open(Pool::new(2).unwrap()).unwrap();
//! assert!(set.insert(7).unwrap());
//! set.sync().unwrap();
//! set.close().unwrap();
//!
//! // A new process (here: a new handle) recovers the history.
//! let set = open(Pool::new(2).unwrap()).unwrap();
//! assert!(set.contains(&7).unwrap());
//! set.close().unwrap();
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

mod log;
pub mod map;
mod record;
mod snapshot;

pub use map::DurableMap;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use batchapi::{Batch, BatchedSet, KeyCodec};
use combine::{ConcurrentSet, OpKind, Options};
use forkjoin::Pool;
use obs::{Counter, Gauge, Histogram, Registry};

use crate::log::{
    list_segments, replay_segment, truncate_segment, SegmentEnd, SegmentLog, SEGMENT_MAGIC,
};
use crate::record::{encode_record, WalOp};
use crate::snapshot::{
    commit_manifest, load_snapshot, read_manifest, remove_stale_snapshots, snapshot_path,
    write_snapshot,
};

/// Construction-time knobs for [`DurableSet`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Mutation records per `fsync`: `1` makes every op durable before it
    /// returns; `n` lets up to `n` records ride one fsync (bounded loss on
    /// crash — see the crate docs' contract).  Values below 1 behave as 1.
    pub group_commit: u64,
    /// Appended records between automatic snapshots; `0` (the default)
    /// never snapshots automatically — [`DurableSet::snapshot`] still
    /// works on demand.
    pub snapshot_every: u64,
    /// Size threshold, in bytes, at which the active log segment rotates.
    pub segment_bytes: u64,
    /// Options for the wrapped flat-combining front-end.  `log_rounds`
    /// and `first_seq` are overwritten — the WAL *is* the round log's
    /// consumer, and recovery dictates the numbering.
    pub combine: Options,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            group_commit: 8,
            snapshot_every: 0,
            segment_bytes: 8 << 20,
            combine: Options::default(),
        }
    }
}

/// The wal-side mutable state, all under one mutex: the lock is what makes
/// WAL append order equal round commit order.
#[derive(Debug)]
struct Wal {
    log: SegmentLog,
    /// Seq of the last record appended (starts at the recovery mark).
    appended_seq: u64,
    /// Highest segment name ever created; names must strictly increase so
    /// that segment-name order stays append order (see `next_name`).
    last_name: u64,
    /// Records appended since the last fsync.
    pending: u64,
    /// Records appended since the last snapshot.
    since_snapshot: u64,
    /// Encode scratch, reused across appends.
    buf: Vec<u8>,
    /// Set when an I/O error left the on-disk log in an unknown state;
    /// every later durability call refuses, because appending past a
    /// possibly-partial record would corrupt the log.  The in-memory set
    /// keeps working; reopening the directory recovers the durable prefix.
    wedged: bool,
}

impl Wal {
    /// The name for the next segment: past the last appended record *and*
    /// past every name already used (post-snapshot segments can carry
    /// late-drained records numbered below their name, so `appended_seq`
    /// alone could repeat a name and truncate a live segment).
    fn next_name(&self) -> u64 {
        (self.appended_seq + 1).max(self.last_name + 1)
    }
}

/// Handles to the `durable.*` metrics, resolved once at construction.
#[derive(Debug)]
struct Metrics {
    rounds_drained: Arc<Counter>,
    records_appended: Arc<Counter>,
    bytes_written: Arc<Counter>,
    fsyncs: Arc<Counter>,
    snapshots: Arc<Counter>,
    segments_created: Arc<Counter>,
    segments_deleted: Arc<Counter>,
    torn_tails: Arc<Counter>,
    group_size: Arc<Histogram>,
    recovery_replayed: Arc<Histogram>,
    appended_seq: Arc<Gauge>,
    durable_seq: Arc<Gauge>,
    snapshot_seq: Arc<Gauge>,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            rounds_drained: registry.counter("durable.rounds_drained"),
            records_appended: registry.counter("durable.records_appended"),
            bytes_written: registry.counter("durable.bytes_written"),
            fsyncs: registry.counter("durable.fsyncs"),
            snapshots: registry.counter("durable.snapshots"),
            segments_created: registry.counter("durable.segments_created"),
            segments_deleted: registry.counter("durable.segments_deleted"),
            torn_tails: registry.counter("durable.torn_tails"),
            group_size: registry.histogram("durable.group_size"),
            recovery_replayed: registry.histogram("durable.recovery_replayed"),
            appended_seq: registry.gauge("durable.appended_seq"),
            durable_seq: registry.gauge("durable.durable_seq"),
            snapshot_seq: registry.gauge("durable.snapshot_seq"),
        }
    }
}

/// A durable concurrent set: a [`combine::ConcurrentSet`] whose committed
/// rounds are appended to an on-disk write-ahead log, checkpointed by
/// snapshots, and recovered by [`DurableSet::open`].  See the crate docs
/// for the protocol and the crash-consistency contract.
///
/// Operations return `io::Result`: besides its own round, each call may
/// drain and append *other* clients' rounds and trip the group-commit
/// fsync, any of which can fail.  After an error the instance is
/// *wedged* — later calls fail fast — and reopening the directory
/// recovers everything durable up to that point.
pub struct DurableSet<K, S>
where
    K: Ord + Clone + Send + Sync + KeyCodec + 'static,
    S: BatchedSet<K> + Send,
{
    inner: ConcurrentSet<K, S>,
    wal: Mutex<Wal>,
    dir: PathBuf,
    group_commit: u64,
    snapshot_every: u64,
    registry: Registry,
    metrics: Metrics,
}

impl<K, S> DurableSet<K, S>
where
    K: Ord + Clone + Send + Sync + KeyCodec + 'static,
    S: BatchedSet<K> + Send,
{
    /// Opens (creating if absent) the durable set rooted at `dir`,
    /// recovering any existing history: load the manifest's snapshot,
    /// replay the log tail above it, truncate a torn final record, and
    /// seed a fresh backend via `make_backend` (e.g.
    /// `IstSet::from_batch`).  Large recovered batches build on `pool`,
    /// which the front-end then uses for large rounds.
    ///
    /// # Errors
    ///
    /// I/O failure, or `InvalidData` when a *committed* artefact (the
    /// manifest or the snapshot it points to) is damaged — that is real
    /// corruption, unlike a torn log tail, which is an expected crash
    /// signature and recovered from silently.
    pub fn open<P, F>(
        dir: P,
        pool: Pool,
        options: DurableOptions,
        make_backend: F,
    ) -> io::Result<DurableSet<K, S>>
    where
        P: AsRef<Path>,
        F: FnOnce(Batch<K>) -> S,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);

        // 1. The snapshot, if one was ever committed.
        let mut contents: BTreeSet<K> = BTreeSet::new();
        let mut snap_seq = 0u64;
        if let Some((seq, path)) = read_manifest(&dir)? {
            let (file_seq, keys) = load_snapshot::<K>(&path)?;
            if file_seq != seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "manifest says seq {seq} but snapshot {} says {file_seq}",
                        path.display()
                    ),
                ));
            }
            snap_seq = seq;
            contents.extend(keys);
        }
        metrics.snapshot_seq.set(snap_seq);

        // 2. Replay the log tail in segment-name (= append) order.  A
        //    record seq that fails to strictly increase is treated like a
        //    checksum failure: the valid log ends there.
        let segments = list_segments(&dir)?;
        let mut max_seq = snap_seq;
        let mut last_record_seq = 0u64;
        let mut replayed = 0u64;
        let mut tear: Option<(usize, u64)> = None;
        for (i, (_, path)) in segments.iter().enumerate() {
            let end = replay_segment::<K, _>(path, |record| {
                if record.seq <= last_record_seq {
                    return false;
                }
                last_record_seq = record.seq;
                if record.seq > snap_seq {
                    for (op, key) in record.ops {
                        match op {
                            WalOp::Insert => contents.insert(key),
                            WalOp::Remove => contents.remove(&key),
                        };
                    }
                    max_seq = record.seq;
                    replayed += 1;
                }
                true
            })?;
            if let SegmentEnd::Torn(offset) = end {
                tear = Some((i, offset));
                break;
            }
        }

        // 3. Heal a tear: truncate the damaged segment at the tear and
        //    delete everything appended after it — point-in-time recovery
        //    to the last valid record.
        if let Some((i, offset)) = tear {
            metrics.torn_tails.inc();
            if offset == 0 {
                // No valid prefix — not even the magic.  Truncating would
                // leave a headerless file that replays as torn on every
                // future open; delete it instead.
                std::fs::remove_file(&segments[i].1)?;
                metrics.segments_deleted.inc();
            } else {
                truncate_segment(&segments[i].1, offset)?;
            }
            for (_, path) in &segments[i + 1..] {
                std::fs::remove_file(path)?;
                metrics.segments_deleted.inc();
            }
            log::sync_dir(&dir)?;
        }
        metrics.recovery_replayed.record(replayed);

        // 4. A fresh active segment, named past every survivor so that
        //    name order stays append order across process lifetimes.
        let highest_name = segments.iter().map(|&(seq, _)| seq).max().unwrap_or(0);
        let name = (max_seq + 1).max(highest_name + 1);
        let log = SegmentLog::create(&dir, name, options.segment_bytes.max(1), SEGMENT_MAGIC)?;
        metrics.segments_created.inc();

        // 5. The backend, from the recovered contents, with round
        //    numbering continuing where the history left off.
        let keys: Vec<K> = contents.into_iter().collect();
        let batch = Batch::from_sorted(keys).expect("BTreeSet iterates strictly ascending");
        let backend = make_backend(batch);
        let inner = ConcurrentSet::with_options(
            backend,
            pool,
            Options {
                log_rounds: true,
                first_seq: max_seq,
                ..options.combine
            },
        );

        metrics.appended_seq.set(max_seq);
        metrics.durable_seq.set(max_seq);
        Ok(DurableSet {
            inner,
            wal: Mutex::new(Wal {
                log,
                appended_seq: max_seq,
                last_name: name,
                pending: 0,
                since_snapshot: 0,
                buf: Vec::new(),
                wedged: false,
            }),
            dir,
            group_commit: options.group_commit.max(1),
            snapshot_every: options.snapshot_every,
            registry,
            metrics,
        })
    }

    /// Inserts `key`; `Ok(true)` iff it was newly inserted.  Durable on
    /// return only under `group_commit: 1` — otherwise durable once
    /// [`DurableSet::durable_seq`] passes its round (see the crate docs).
    pub fn insert(&self, key: K) -> io::Result<bool> {
        let result = self.inner.insert(key);
        self.publish()?;
        Ok(result)
    }

    /// Removes `key`; `Ok(true)` iff it was present.
    pub fn remove(&self, key: &K) -> io::Result<bool> {
        let result = self.inner.remove(key);
        self.publish()?;
        Ok(result)
    }

    /// Membership test.  Reads change nothing, but the call still
    /// publishes: it may drain and append *other* clients' committed
    /// rounds, which is why it, too, can fail.
    pub fn contains(&self, key: &K) -> io::Result<bool> {
        let result = self.inner.contains(key);
        self.publish()?;
        Ok(result)
    }

    /// Batch insert; one combining round, one WAL record.
    pub fn batch_insert(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        let result = self.inner.batch_insert(batch);
        self.publish()?;
        Ok(result)
    }

    /// Batch remove; one combining round, one WAL record.
    pub fn batch_remove(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        let result = self.inner.batch_remove(batch);
        self.publish()?;
        Ok(result)
    }

    /// Batch membership test (publishes, like [`DurableSet::contains`]).
    pub fn batch_contains(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        let result = self.inner.batch_contains(batch);
        self.publish()?;
        Ok(result)
    }

    /// Number of keys in the set (in memory; does not publish).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty (in memory; does not publish).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Forces everything committed so far onto disk and returns the new
    /// durable high-water sequence number.
    pub fn sync(&self) -> io::Result<u64> {
        self.with_wal(|this, wal| {
            this.drain_into(wal)?;
            this.fsync_wal(wal)?;
            Ok(this.metrics.durable_seq.get())
        })
    }

    /// Takes a snapshot now (regardless of [`DurableOptions::snapshot_every`])
    /// and truncates the log; returns the snapshot's sequence number.
    /// Everything at or below it is durable when this returns.
    pub fn snapshot(&self) -> io::Result<u64> {
        self.with_wal(|this, wal| {
            this.drain_into(wal)?;
            this.snapshot_wal(wal)
        })
    }

    /// The durable high-water mark: every round with seq at or below this
    /// has reached disk (via fsynced records or a committed snapshot) and
    /// survives any crash.
    pub fn durable_seq(&self) -> u64 {
        self.metrics.durable_seq.get()
    }

    /// Snapshot of the `durable.*` metrics (see the README's metrics
    /// table).  The wrapped front-end's `combine.*` metrics live on
    /// [`DurableSet::inner`]`.metrics()`.
    pub fn metrics(&self) -> obs::Snapshot {
        self.registry.snapshot()
    }

    /// The wrapped flat-combining front-end, for its stats, metrics and
    /// traces.  Issuing *writes* through it does not lose them — they are
    /// drained on the next publish — but they bypass group commit's
    /// timing, so their durability point is some later client's call.
    pub fn inner(&self) -> &ConcurrentSet<K, S> {
        &self.inner
    }

    /// Drains and fsyncs, then closes.  [`Drop`] does the same on a best-
    /// effort basis; `close` is the variant that reports the error.
    pub fn close(self) -> io::Result<()> {
        self.sync().map(|_| ())
    }

    /// The post-op durability step: under the wal lock, drain every
    /// committed round, append the mutations, and run group commit and
    /// the snapshot policy.  See the crate docs' protocol section.
    fn publish(&self) -> io::Result<()> {
        self.with_wal(|this, wal| {
            this.drain_into(wal)?;
            if wal.pending >= this.group_commit {
                this.fsync_wal(wal)?;
            }
            if this.snapshot_every > 0 && wal.since_snapshot >= this.snapshot_every {
                this.snapshot_wal(wal)?;
            }
            Ok(())
        })
    }

    /// Runs `f` under the wal lock with wedge bookkeeping: refuse if a
    /// previous call failed, wedge if this one does.
    fn with_wal<T>(&self, f: impl FnOnce(&Self, &mut Wal) -> io::Result<T>) -> io::Result<T> {
        let mut wal = self.wal.lock().unwrap();
        if wal.wedged {
            return Err(io::Error::other(
                "durable set wedged by an earlier I/O error; reopen the directory to recover",
            ));
        }
        let result = f(self, &mut wal);
        if result.is_err() {
            wal.wedged = true;
        }
        result
    }

    /// Drains the combiner's round log and appends one record per
    /// mutation round.  Caller holds the wal lock.
    fn drain_into(&self, wal: &mut Wal) -> io::Result<()> {
        let rounds = self.inner.take_rounds();
        if rounds.is_empty() {
            return Ok(());
        }
        self.metrics.rounds_drained.add(rounds.len() as u64);
        for round in &rounds {
            // Keep only ops that changed state: reads replay to nothing,
            // and a failed insert/remove is a no-op too.  Sequence gaps
            // this leaves in the WAL are expected (crate docs).
            let muts: Vec<(WalOp, &K)> = round
                .ops
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Insert if op.result => Some((WalOp::Insert, &op.key)),
                    OpKind::Remove if op.result => Some((WalOp::Remove, &op.key)),
                    _ => None,
                })
                .collect();
            if muts.is_empty() {
                continue;
            }
            if wal.log.wants_rotation() {
                // Seal the active segment before abandoning it: its
                // records must never wait on a rotated-away fd.
                self.fsync_wal(wal)?;
                let name = wal.next_name();
                wal.log.rotate(name)?;
                wal.last_name = name;
                self.metrics.segments_created.inc();
            }
            let mut buf = std::mem::take(&mut wal.buf);
            buf.clear();
            encode_record(round.seq, &muts, &mut buf);
            let appended = wal.log.append(&buf);
            self.metrics.bytes_written.add(buf.len() as u64);
            wal.buf = buf;
            appended?;
            self.metrics.records_appended.inc();
            wal.appended_seq = round.seq;
            wal.pending += 1;
            wal.since_snapshot += 1;
            self.metrics.appended_seq.set(round.seq);
        }
        Ok(())
    }

    /// Fsyncs the active segment, advancing the durable mark over every
    /// pending record.  Caller holds the wal lock.
    fn fsync_wal(&self, wal: &mut Wal) -> io::Result<()> {
        if wal.pending == 0 {
            return Ok(());
        }
        wal.log.sync()?;
        self.metrics.fsyncs.inc();
        self.metrics.group_size.record(wal.pending);
        wal.pending = 0;
        self.metrics.durable_seq.set_max(wal.appended_seq);
        Ok(())
    }

    /// Takes and commits a snapshot, then truncates the log.  Caller
    /// holds the wal lock and has drained.
    fn snapshot_wal(&self, wal: &mut Wal) -> io::Result<u64> {
        // Seal what is already appended: the snapshot supersedes it, but
        // if the snapshot fails mid-way the log must still stand alone.
        self.fsync_wal(wal)?;

        // One linearisation point: contents plus their high-water seq,
        // read from the combiner-published snapshot (no round entered).
        // Every record drained above carries seq <= snap_seq, because its
        // round published the snapshot cell *before* entering the commit
        // log and the cell is monotone.  Rounds that publish between the
        // drain and this load land in the *next* segment with seq <= snap
        // — skipped at replay, harmless (the snapshot already holds them).
        let (keys, snap_seq) = self.inner.snapshot_keys();
        let name = write_snapshot(&self.dir, snap_seq, &keys)?;
        commit_manifest(&self.dir, snap_seq, &name)?;
        self.metrics.snapshots.inc();
        self.metrics.snapshot_seq.set(snap_seq);
        self.metrics.durable_seq.set_max(snap_seq);

        // Every record in every segment now has seq <= snap_seq: the
        // snapshot covers them all, so truncation deletes whole segments.
        let survivors = list_segments(&self.dir)?;
        let next = wal.next_name().max(snap_seq + 1);
        wal.log.rotate(next)?;
        wal.last_name = next;
        self.metrics.segments_created.inc();
        let active = log::segment_path(&self.dir, next);
        for (_, path) in survivors {
            if path != active {
                std::fs::remove_file(&path)?;
                self.metrics.segments_deleted.inc();
            }
        }
        remove_stale_snapshots(&self.dir, &snapshot_path(&self.dir, snap_seq))?;
        log::sync_dir(&self.dir)?;
        wal.since_snapshot = 0;
        Ok(snap_seq)
    }
}

impl<K, S> Drop for DurableSet<K, S>
where
    K: Ord + Clone + Send + Sync + KeyCodec + 'static,
    S: BatchedSet<K> + Send,
{
    fn drop(&mut self) {
        // Best-effort final drain + fsync; `close()` is the error-
        // reporting path.  Skip when wedged (appending could corrupt) or
        // when the wal mutex is poisoned by a panicking thread.
        let Ok(mut wal) = self.wal.lock() else { return };
        if wal.wedged || self.inner.is_poisoned() {
            return;
        }
        let _ = self
            .drain_into(&mut wal)
            .and_then(|()| self.fsync_wal(&mut wal));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    /// A plain sorted-vec backend, enough for unit tests.
    struct VecSet {
        keys: Vec<u64>,
    }

    impl VecSet {
        fn from_batch(batch: Batch<u64>) -> VecSet {
            VecSet {
                keys: batch.into_vec(),
            }
        }
    }

    impl BatchedSet<u64> for VecSet {
        fn len(&self) -> usize {
            self.keys.len()
        }
        fn contains(&self, key: &u64) -> bool {
            self.keys.binary_search(key).is_ok()
        }
        fn rank(&self, key: &u64) -> usize {
            self.keys.partition_point(|k| k < key)
        }
        fn min(&self) -> Option<&u64> {
            self.keys.first()
        }
        fn max(&self) -> Option<&u64> {
            self.keys.last()
        }
        fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
            batch.iter().map(|k| self.contains(k)).collect()
        }
        fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            batch
                .as_slice()
                .to_vec()
                .iter()
                .map(|k| self.insert_one(k))
                .collect()
        }
        fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            batch
                .as_slice()
                .to_vec()
                .iter()
                .map(|k| self.remove_one(k))
                .collect()
        }
        fn insert_one(&mut self, key: &u64) -> bool {
            match self.keys.binary_search(key) {
                Ok(_) => false,
                Err(at) => {
                    self.keys.insert(at, *key);
                    true
                }
            }
        }
        fn remove_one(&mut self, key: &u64) -> bool {
            match self.keys.binary_search(key) {
                Ok(at) => {
                    self.keys.remove(at);
                    true
                }
                Err(_) => false,
            }
        }
        fn collect_keys(&self) -> Vec<u64> {
            self.keys.clone()
        }
    }

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "durable-lib-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn open(dir: &Path, options: DurableOptions) -> DurableSet<u64, VecSet> {
        DurableSet::open(dir, Pool::new(2).unwrap(), options, VecSet::from_batch).unwrap()
    }

    #[test]
    fn fresh_open_write_reopen_recovers() {
        let dir = scratch_dir("basic");
        let set = open(&dir, DurableOptions::default());
        assert!(set.is_empty());
        assert!(set.insert(3).unwrap());
        assert!(set.insert(1).unwrap());
        assert!(!set.insert(3).unwrap());
        assert!(set.remove(&1).unwrap());
        assert!(set.contains(&3).unwrap());
        set.close().unwrap();

        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), 1);
        assert!(set.contains(&3).unwrap());
        assert!(!set.contains(&1).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_one_makes_every_op_durable_on_return() {
        let dir = scratch_dir("group1");
        let set = open(
            &dir,
            DurableOptions {
                group_commit: 1,
                ..DurableOptions::default()
            },
        );
        for k in 0..10u64 {
            set.insert(k).unwrap();
            let appended = set.metrics().gauge("durable.appended_seq").unwrap();
            assert_eq!(
                set.durable_seq(),
                appended,
                "group_commit=1 leaves nothing pending"
            );
        }
        let m = set.metrics();
        assert_eq!(m.counter("durable.records_appended"), Some(10));
        assert_eq!(m.counter("durable.fsyncs"), Some(10));
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn larger_groups_amortise_fsyncs() {
        let dir = scratch_dir("group8");
        let set = open(
            &dir,
            DurableOptions {
                group_commit: 64,
                ..DurableOptions::default()
            },
        );
        // Single-threaded, so each op is its own round/record: 64 records
        // per fsync exactly.
        for k in 0..128u64 {
            set.insert(k).unwrap();
        }
        let m = set.metrics();
        assert_eq!(m.counter("durable.records_appended"), Some(128));
        assert_eq!(m.counter("durable.fsyncs"), Some(2));
        let sizes = m.histogram("durable.group_size").unwrap();
        assert_eq!(sizes.count(), 2);
        assert_eq!(sizes.sum, 128);
        // Ops beyond the durable mark are pending, not lost: sync flushes.
        assert!(set.insert(1000).unwrap());
        assert!(set.durable_seq() < set.metrics().gauge("durable.appended_seq").unwrap());
        let durable = set.sync().unwrap();
        assert_eq!(
            durable,
            set.metrics().gauge("durable.appended_seq").unwrap()
        );
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_and_failed_mutations_write_no_records() {
        let dir = scratch_dir("noop");
        let set = open(&dir, DurableOptions::default());
        set.insert(5).unwrap();
        let before = set.metrics().counter("durable.records_appended").unwrap();
        assert!(set.contains(&5).unwrap());
        assert!(!set.contains(&6).unwrap());
        assert!(!set.insert(5).unwrap());
        assert!(!set.remove(&99).unwrap());
        let after = set.metrics().counter("durable.records_appended").unwrap();
        assert_eq!(before, after, "no state change, no WAL record");
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batches_recover_and_batch_results_survive() {
        let dir = scratch_dir("batch");
        let set = open(&dir, DurableOptions::default());
        let ins = Batch::from_unsorted((0..100u64).map(|i| i * 3).collect());
        assert!(set.batch_insert(&ins).unwrap().iter().all(|&b| b));
        let rem = Batch::from_unsorted((0..50u64).map(|i| i * 6).collect());
        assert!(set.batch_remove(&rem).unwrap().iter().all(|&b| b));
        set.close().unwrap();

        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), 50);
        let check = set.batch_contains(&ins).unwrap();
        for (i, (key, hit)) in ins.iter().zip(check).enumerate() {
            assert_eq!(hit, key % 6 != 0, "key {key} at {i}");
        }
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_the_log_and_still_recovers() {
        let dir = scratch_dir("snap");
        let set = open(&dir, DurableOptions::default());
        for k in 0..200u64 {
            set.insert(k).unwrap();
        }
        let snap_seq = set.snapshot().unwrap();
        assert!(snap_seq >= 200);
        assert_eq!(set.durable_seq(), snap_seq);
        // Post-snapshot, exactly one (fresh, near-empty) segment remains.
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        // And the history continues past it.
        for k in 200..230u64 {
            set.insert(k).unwrap();
        }
        set.close().unwrap();

        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), 230);
        let m = set.metrics();
        assert_eq!(m.gauge("durable.snapshot_seq"), Some(snap_seq));
        let replayed = m.histogram("durable.recovery_replayed").unwrap();
        assert_eq!(replayed.count(), 1);
        assert_eq!(replayed.sum, 30, "only the post-snapshot tail replays");
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_snapshots_fire_on_the_configured_cadence() {
        let dir = scratch_dir("autosnap");
        let set = open(
            &dir,
            DurableOptions {
                snapshot_every: 10,
                ..DurableOptions::default()
            },
        );
        for k in 0..35u64 {
            set.insert(k).unwrap();
        }
        let m = set.metrics();
        assert_eq!(m.counter("durable.snapshots"), Some(3));
        drop(set);
        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), 35);
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation_keeps_every_record() {
        let dir = scratch_dir("rotate");
        let set = open(
            &dir,
            DurableOptions {
                segment_bytes: 64,
                ..DurableOptions::default()
            },
        );
        for k in 0..100u64 {
            set.insert(k).unwrap();
        }
        set.sync().unwrap();
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "64-byte segments must have rotated"
        );
        drop(set);
        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), 100);
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_recover_exactly() {
        let dir = scratch_dir("threads");
        let set = Arc::new(open(
            &dir,
            DurableOptions {
                group_commit: 4,
                ..DurableOptions::default()
            },
        ));
        thread::scope(|s| {
            for t in 0..4u64 {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = t * 1_000 + i;
                        set.insert(key).unwrap();
                        if i % 3 == 0 {
                            set.remove(&key).unwrap();
                        }
                    }
                });
            }
        });
        let expect: BTreeSet<u64> = (0..4u64)
            .flat_map(|t| (0..200u64).map(move |i| (t, i)))
            .filter(|&(_, i)| i % 3 != 0)
            .map(|(t, i)| t * 1_000 + i)
            .collect();
        assert_eq!(set.len(), expect.len());
        let set = Arc::into_inner(set).unwrap();
        set.close().unwrap();

        let set = open(&dir, DurableOptions::default());
        assert_eq!(set.len(), expect.len());
        let probe = Batch::from_unsorted(expect.iter().copied().collect());
        assert!(set.batch_contains(&probe).unwrap().iter().all(|&b| b));
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_numbering_continues_across_reopen() {
        let dir = scratch_dir("seqcont");
        let set = open(&dir, DurableOptions::default());
        for k in 0..5u64 {
            set.insert(k).unwrap();
        }
        let before = set.metrics().gauge("durable.appended_seq").unwrap();
        set.close().unwrap();

        let set = open(&dir, DurableOptions::default());
        set.insert(99).unwrap();
        let after = set.metrics().gauge("durable.appended_seq").unwrap();
        assert!(
            after > before,
            "new rounds must continue the old numbering ({after} vs {before})"
        );
        drop(set);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
