//! Append-only segment files for the write-ahead log.
//!
//! The log is a directory of segments named `wal-<seq>.log` (20-digit
//! zero-padded, so lexicographic name order is numeric seq order).  A
//! segment's name is the smallest sequence number any record inside it may
//! carry: segments are created when the previous one reaches its size
//! threshold, and are named `appended_seq + 1` at that moment.  Because
//! records are appended in strictly increasing seq order, this gives two
//! recovery invariants for free:
//!
//! 1. replaying segments in name order replays records in seq order, and
//! 2. a snapshot at seq `S` makes *every* record in *every* current
//!    segment redundant (all have seq <= `S`), so truncation after a
//!    snapshot deletes whole segments — never a byte range.
//!
//! Every segment opens with an 8-byte magic; a file too short for the
//! magic, or with the wrong magic, replays as torn at offset zero.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use batchapi::KeyCodec;

use crate::record::{decode_map_record, decode_record, DecodeOutcome, WalMapRecord, WalRecord};

/// Identifies a version-1 (set) WAL segment: records carry keys only.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"PBWAL\x00\x00\x01";

/// Identifies a version-2 (map) WAL segment: upsert records carry a value
/// payload after the key.  The bumped magic keeps the families apart — a
/// set opening a map's log (or vice versa) tears at offset zero instead
/// of mis-decoding value bytes as keys.
pub(crate) const SEGMENT_MAGIC_V2: &[u8; 8] = b"PBWAL\x00\x00\x02";

/// The active segment an open [`DurableSet`](crate::DurableSet) appends to.
#[derive(Debug)]
pub(crate) struct SegmentLog {
    dir: PathBuf,
    file: File,
    /// The magic this log stamps on every segment it creates (version 1
    /// for set logs, version 2 for map logs); rotation preserves it.
    magic: &'static [u8; 8],
    /// Bytes written to the active segment (including the magic).
    bytes: u64,
    /// Rotation threshold; the active segment rotates once `bytes`
    /// exceeds it.  A single record never splits across segments.
    segment_bytes: u64,
}

impl SegmentLog {
    /// Creates (truncating) the active segment `wal-<name_seq>.log` and
    /// makes its directory entry durable.
    pub(crate) fn create(
        dir: &Path,
        name_seq: u64,
        segment_bytes: u64,
        magic: &'static [u8; 8],
    ) -> io::Result<SegmentLog> {
        let path = segment_path(dir, name_seq);
        let mut file = File::create(&path)?;
        file.write_all(magic)?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(SegmentLog {
            dir: dir.to_path_buf(),
            file,
            magic,
            bytes: magic.len() as u64,
            segment_bytes,
        })
    }

    /// Appends raw encoded record bytes (no fsync).
    pub(crate) fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Forces everything appended so far onto disk.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Whether the active segment has reached its rotation threshold.
    pub(crate) fn wants_rotation(&self) -> bool {
        self.bytes >= self.segment_bytes
    }

    /// Rotates to a fresh segment named `name_seq`.  The caller must have
    /// synced the old segment first (rotation seals it; nothing ever
    /// appends to it again).
    pub(crate) fn rotate(&mut self, name_seq: u64) -> io::Result<()> {
        let next = SegmentLog::create(&self.dir, name_seq, self.segment_bytes, self.magic)?;
        *self = next;
        Ok(())
    }

    /// Bytes written to the active segment so far.
    #[cfg(test)]
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Path of the segment named `seq` inside `dir`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

/// All segment files in `dir`, sorted by their name's sequence number.
/// Files that do not match the `wal-<digits>.log` pattern are ignored
/// (the manifest and snapshots share the directory).
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        segments.push((seq, entry.path()));
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// How one segment's replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentEnd {
    /// Every byte decoded as a record; the segment is intact.
    Clean,
    /// The valid prefix ends at this byte offset (torn final write, bit
    /// rot, or a foreign/empty file).  Recovery truncates here.
    Torn(u64),
}

/// Replays one segment, feeding each valid record to `apply` in order.
/// `apply` returns `false` to reject a record (recovery uses this to
/// treat a non-increasing sequence number as damage); the rejected
/// record's offset is reported as the tear.
pub(crate) fn replay_segment<K, F>(path: &Path, apply: F) -> io::Result<SegmentEnd>
where
    K: KeyCodec,
    F: FnMut(WalRecord<K>) -> bool,
{
    replay_segment_with(path, SEGMENT_MAGIC, decode_record::<K>, apply)
}

/// [`replay_segment`] for version-2 (map) segments: value-bearing records
/// decoded by [`decode_map_record`].
pub(crate) fn replay_map_segment<K, V, F>(path: &Path, apply: F) -> io::Result<SegmentEnd>
where
    K: KeyCodec,
    V: KeyCodec,
    F: FnMut(WalMapRecord<K, V>) -> bool,
{
    replay_segment_with(path, SEGMENT_MAGIC_V2, decode_map_record::<K, V>, apply)
}

/// Shared replay loop: verify the expected magic, then decode records
/// with `decode` until the buffer ends cleanly or tears.
fn replay_segment_with<R, D, F>(
    path: &Path,
    magic: &[u8; 8],
    decode: D,
    mut apply: F,
) -> io::Result<SegmentEnd>
where
    D: Fn(&[u8], usize) -> DecodeOutcome<R>,
    F: FnMut(R) -> bool,
{
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < magic.len() || &buf[..magic.len()] != magic {
        return Ok(SegmentEnd::Torn(0));
    }
    let mut at = magic.len();
    loop {
        match decode(&buf, at) {
            DecodeOutcome::Clean => return Ok(SegmentEnd::Clean),
            DecodeOutcome::Torn => return Ok(SegmentEnd::Torn(at as u64)),
            DecodeOutcome::Record { record, consumed } => {
                if !apply(record) {
                    return Ok(SegmentEnd::Torn(at as u64));
                }
                at += consumed;
            }
        }
    }
}

/// Truncates the file at `path` to `len` bytes and syncs it — recovery's
/// cleanup of a torn tail, so the next open sees a clean log.
pub(crate) fn truncate_segment(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// Makes `dir`'s entries durable.  File creation, deletion and rename are
/// directory mutations: without this an fsynced *file* can survive a crash
/// while its *name* does not.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        // Windows has no directory handle sync with std; rely on the
        // file-level syncs (tests and CI for this workspace run on unix).
        let _ = dir;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, WalOp};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "durable-log-test-{}-{tag}-{id}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn one_record(seq: u64, key: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_record(seq, &[(WalOp::Insert, &key)], &mut buf);
        buf
    }

    #[test]
    fn append_replay_round_trips_across_rotation() {
        let dir = scratch_dir("rotate");
        // Tiny threshold: every record trips rotation.
        let mut log = SegmentLog::create(&dir, 1, 16, SEGMENT_MAGIC).unwrap();
        for seq in 1..=5u64 {
            if log.wants_rotation() {
                log.sync().unwrap();
                log.rotate(seq).unwrap();
            }
            log.append(&one_record(seq, seq * 10)).unwrap();
        }
        log.sync().unwrap();

        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "rotation should have split the log");
        assert!(segments.windows(2).all(|w| w[0].0 < w[1].0));

        let mut seen = Vec::new();
        for (_, path) in &segments {
            let end = replay_segment::<u64, _>(path, |r| {
                seen.push((r.seq, r.ops.clone()));
                true
            })
            .unwrap();
            assert_eq!(end, SegmentEnd::Clean);
        }
        assert_eq!(
            seen,
            (1..=5u64)
                .map(|s| (s, vec![(WalOp::Insert, s * 10)]))
                .collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_reports_the_valid_prefix_and_truncation_heals_it() {
        let dir = scratch_dir("torn");
        let mut log = SegmentLog::create(&dir, 1, u64::MAX, SEGMENT_MAGIC).unwrap();
        log.append(&one_record(1, 7)).unwrap();
        let valid_end = log.bytes();
        let mut partial = one_record(2, 8);
        partial.truncate(partial.len() - 3);
        log.append(&partial).unwrap();
        log.sync().unwrap();

        let path = segment_path(&dir, 1);
        let mut count = 0;
        let end = replay_segment::<u64, _>(&path, |_| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 1);
        assert_eq!(end, SegmentEnd::Torn(valid_end));

        truncate_segment(&path, valid_end).unwrap();
        let end = replay_segment::<u64, _>(&path, |_| true).unwrap();
        assert_eq!(end, SegmentEnd::Clean);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_or_headerless_file_is_torn_at_zero() {
        let dir = scratch_dir("magic");
        let path = segment_path(&dir, 3);
        fs::write(&path, b"not a wal segment").unwrap();
        let end = replay_segment::<u64, _>(&path, |_| panic!("no records")).unwrap();
        assert_eq!(end, SegmentEnd::Torn(0));
        fs::write(&path, b"xy").unwrap();
        let end = replay_segment::<u64, _>(&path, |_| panic!("no records")).unwrap();
        assert_eq!(end, SegmentEnd::Torn(0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_ignores_non_segment_files() {
        let dir = scratch_dir("list");
        SegmentLog::create(&dir, 2, 64, SEGMENT_MAGIC).unwrap();
        fs::write(dir.join("MANIFEST"), b"m").unwrap();
        fs::write(dir.join("snap-00000000000000000001.snap"), b"s").unwrap();
        fs::write(dir.join("wal-junk.log"), b"j").unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
