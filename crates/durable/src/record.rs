//! The write-ahead log's record codec.
//!
//! One record per *mutation* round (pure-`Contains` rounds never reach the
//! log — a membership test changes nothing, so replaying it would be
//! wasted work and the WAL's sequence numbers are allowed to have gaps
//! where read-only rounds committed).  The wire layout is
//!
//! ```text
//! [payload_len: u32 LE][checksum: u64 LE]    <- header, 12 bytes
//! [seq: u64 LE][n_ops: u32 LE]               <- payload ...
//! n_ops x ([kind: u8][key: K::WIDTH bytes])
//! ```
//!
//! The checksum is FNV-1a 64 over the payload bytes.  Decoding is strictly
//! *prefix-tolerant*: any defect — a partial header, a partial payload, an
//! implausible length, a checksum mismatch, an unknown kind byte — is
//! reported as [`DecodeOutcome::Torn`] at the offending offset rather than
//! an error, because on the recovery path every one of those is the same
//! event: the valid log ends here.  Recovery truncates at that point and
//! the history before it stands.

use batchapi::KeyCodec;

/// Bytes in a record header: `payload_len: u32` + `checksum: u64`.
pub(crate) const RECORD_HEADER: usize = 4 + 8;

/// Upper bound on a single record's payload, as a plausibility filter: a
/// corrupted length field must not convince the replayer to wait for
/// gigabytes of payload that never existed.  256 MiB is far above any real
/// round (a round holds at most one op per client thread).
pub(crate) const MAX_PAYLOAD: usize = 256 << 20;

/// Op kind tags on the wire.  `Contains` has no tag: read-only ops are
/// stripped before encoding.  `KIND_INSERT_KV` (a key *and* a value)
/// appears only in version-2 (map) segments; each codec rejects the other
/// family's kinds as [`DecodeOutcome::Torn`], so a set log replayed as a
/// map (or vice versa) tears instead of mis-decoding.
const KIND_INSERT: u8 = 0;
const KIND_REMOVE: u8 = 1;
const KIND_INSERT_KV: u8 = 2;

/// FNV-1a 64-bit over `bytes` — tiny, allocation-free, std-only, and
/// plenty to catch torn writes and bit rot (this guards against crashes,
/// not adversaries).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One decoded mutation, replayed against a `BTreeSet` during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalOp {
    /// The round inserted this key.
    Insert,
    /// The round removed this key.
    Remove,
}

/// One decoded WAL record: a mutation round's sequence number and its
/// surviving (non-`Contains`) operations in linearisation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord<K> {
    pub(crate) seq: u64,
    pub(crate) ops: Vec<(WalOp, K)>,
}

/// Appends one encoded record for `(seq, ops)` to `buf`.
///
/// `ops` must already be filtered down to mutations; the caller skips
/// rounds whose mutation list is empty rather than writing empty records.
pub(crate) fn encode_record<K: KeyCodec>(seq: u64, ops: &[(WalOp, &K)], buf: &mut Vec<u8>) {
    let payload_len = 8 + 4 + ops.len() * (1 + K::WIDTH);
    buf.reserve(RECORD_HEADER + payload_len);
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; RECORD_HEADER]);
    let payload_at = buf.len();
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for (op, key) in ops {
        buf.push(match op {
            WalOp::Insert => KIND_INSERT,
            WalOp::Remove => KIND_REMOVE,
        });
        let at = buf.len();
        buf.resize(at + K::WIDTH, 0);
        key.encode(&mut buf[at..at + K::WIDTH]);
    }
    debug_assert_eq!(buf.len() - payload_at, payload_len);
    let checksum = fnv1a(&buf[payload_at..]);
    buf[header_at..header_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[header_at + 4..header_at + 12].copy_from_slice(&checksum.to_le_bytes());
}

/// One decoded *map* mutation: upserts carry their value payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalMapOp<K, V> {
    /// The round upserted this key to this value (logged even when the key
    /// was already present — the value may have changed, and replaying an
    /// unchanged upsert is idempotent).
    InsertKv(K, V),
    /// The round removed this key.
    Remove(K),
}

/// Borrowed form of [`WalMapOp`] for encoding without cloning payloads.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WalMapOpRef<'a, K, V> {
    /// Upsert `key -> value`.
    InsertKv(&'a K, &'a V),
    /// Remove `key`.
    Remove(&'a K),
}

/// One decoded map-WAL record (version-2 segments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalMapRecord<K, V> {
    pub(crate) seq: u64,
    pub(crate) ops: Vec<WalMapOp<K, V>>,
}

/// Appends one encoded map record for `(seq, ops)` to `buf`.  Same frame
/// as [`encode_record`]; the body interleaves fixed-width ops of two
/// kinds, so op width is keyed off the kind byte at decode.
pub(crate) fn encode_map_record<K: KeyCodec, V: KeyCodec>(
    seq: u64,
    ops: &[WalMapOpRef<'_, K, V>],
    buf: &mut Vec<u8>,
) {
    let payload_len = 8
        + 4
        + ops
            .iter()
            .map(|op| match op {
                WalMapOpRef::InsertKv(..) => 1 + K::WIDTH + V::WIDTH,
                WalMapOpRef::Remove(..) => 1 + K::WIDTH,
            })
            .sum::<usize>();
    buf.reserve(RECORD_HEADER + payload_len);
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; RECORD_HEADER]);
    let payload_at = buf.len();
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            WalMapOpRef::InsertKv(key, val) => {
                buf.push(KIND_INSERT_KV);
                let at = buf.len();
                buf.resize(at + K::WIDTH + V::WIDTH, 0);
                key.encode(&mut buf[at..at + K::WIDTH]);
                val.encode(&mut buf[at + K::WIDTH..at + K::WIDTH + V::WIDTH]);
            }
            WalMapOpRef::Remove(key) => {
                buf.push(KIND_REMOVE);
                let at = buf.len();
                buf.resize(at + K::WIDTH, 0);
                key.encode(&mut buf[at..at + K::WIDTH]);
            }
        }
    }
    debug_assert_eq!(buf.len() - payload_at, payload_len);
    let checksum = fnv1a(&buf[payload_at..]);
    buf[header_at..header_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[header_at + 4..header_at + 12].copy_from_slice(&checksum.to_le_bytes());
}

/// What decoding found at one offset.  `R` is the decoded record type —
/// [`WalRecord`] for set (version-1) segments, [`WalMapRecord`] for map
/// (version-2) segments.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum DecodeOutcome<R> {
    /// A valid record; `consumed` bytes advance the cursor past it.
    Record { record: R, consumed: usize },
    /// The buffer ends exactly here — a cleanly-terminated log.
    Clean,
    /// The bytes from this offset on are not a valid record (torn final
    /// write, bit rot, garbage).  The valid log ends at this offset.
    Torn,
}

/// Validates the common frame (header, plausible length, checksum) and
/// returns the payload slice, or the non-record outcome.
fn frame(buf: &[u8], at: usize) -> Result<&[u8], DecodeOutcome<std::convert::Infallible>> {
    let rest = &buf[at..];
    if rest.is_empty() {
        return Err(DecodeOutcome::Clean);
    }
    if rest.len() < RECORD_HEADER {
        return Err(DecodeOutcome::Torn);
    }
    let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    if !(8 + 4..=MAX_PAYLOAD).contains(&payload_len) {
        return Err(DecodeOutcome::Torn);
    }
    let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + payload_len) else {
        return Err(DecodeOutcome::Torn);
    };
    if fnv1a(payload) != checksum {
        return Err(DecodeOutcome::Torn);
    }
    Ok(payload)
}

/// Maps the non-record outcome of [`frame`] into any record type.
fn other<R>(outcome: DecodeOutcome<std::convert::Infallible>) -> DecodeOutcome<R> {
    match outcome {
        DecodeOutcome::Clean => DecodeOutcome::Clean,
        DecodeOutcome::Torn => DecodeOutcome::Torn,
        DecodeOutcome::Record { .. } => unreachable!("frame never yields a record"),
    }
}

/// Decodes the set record starting at `buf[at..]`.
pub(crate) fn decode_record<K: KeyCodec>(buf: &[u8], at: usize) -> DecodeOutcome<WalRecord<K>> {
    let payload = match frame(buf, at) {
        Ok(payload) => payload,
        Err(outcome) => return other(outcome),
    };
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let n_ops = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let body = &payload[12..];
    if body.len() != n_ops * (1 + K::WIDTH) {
        return DecodeOutcome::Torn;
    }
    let mut ops = Vec::with_capacity(n_ops);
    for chunk in body.chunks_exact(1 + K::WIDTH) {
        let op = match chunk[0] {
            KIND_INSERT => WalOp::Insert,
            KIND_REMOVE => WalOp::Remove,
            // KIND_INSERT_KV included: a value-bearing record in a set log
            // is damage, not data.
            _ => return DecodeOutcome::Torn,
        };
        ops.push((op, K::decode(&chunk[1..])));
    }
    DecodeOutcome::Record {
        record: WalRecord { seq, ops },
        consumed: RECORD_HEADER + payload.len(),
    }
}

/// Decodes the map record starting at `buf[at..]`.  Ops are
/// variable-width (the kind byte decides whether a value follows the
/// key), so the body is walked with a cursor; any unknown kind — the
/// set-only `KIND_INSERT` among them — or a body that does not end
/// exactly at the declared op count reads as [`DecodeOutcome::Torn`].
pub(crate) fn decode_map_record<K: KeyCodec, V: KeyCodec>(
    buf: &[u8],
    at: usize,
) -> DecodeOutcome<WalMapRecord<K, V>> {
    let payload = match frame(buf, at) {
        Ok(payload) => payload,
        Err(outcome) => return other(outcome),
    };
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let n_ops = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let body = &payload[12..];
    let mut ops = Vec::with_capacity(n_ops.min(body.len()));
    let mut cursor = 0usize;
    for _ in 0..n_ops {
        let Some(&kind) = body.get(cursor) else {
            return DecodeOutcome::Torn;
        };
        cursor += 1;
        match kind {
            KIND_INSERT_KV => {
                let Some(bytes) = body.get(cursor..cursor + K::WIDTH + V::WIDTH) else {
                    return DecodeOutcome::Torn;
                };
                ops.push(WalMapOp::InsertKv(
                    K::decode(&bytes[..K::WIDTH]),
                    V::decode(&bytes[K::WIDTH..]),
                ));
                cursor += K::WIDTH + V::WIDTH;
            }
            KIND_REMOVE => {
                let Some(bytes) = body.get(cursor..cursor + K::WIDTH) else {
                    return DecodeOutcome::Torn;
                };
                ops.push(WalMapOp::Remove(K::decode(bytes)));
                cursor += K::WIDTH;
            }
            // Unknown kinds — the keys-only KIND_INSERT among them — are
            // rejected: a map replay must never invent a value.
            _ => return DecodeOutcome::Torn,
        }
    }
    if cursor != body.len() {
        return DecodeOutcome::Torn;
    }
    DecodeOutcome::Record {
        record: WalMapRecord { seq, ops },
        consumed: RECORD_HEADER + payload.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(seq: u64, ops: &[(WalOp, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        let borrowed: Vec<(WalOp, &u64)> = ops.iter().map(|(op, k)| (*op, k)).collect();
        encode_record(seq, &borrowed, &mut buf);
        buf
    }

    #[test]
    fn encode_decode_round_trips() {
        let ops = [
            (WalOp::Insert, 7u64),
            (WalOp::Remove, u64::MAX),
            (WalOp::Insert, 0),
        ];
        let buf = roundtrip(42, &ops);
        match decode_record::<u64>(&buf, 0) {
            DecodeOutcome::Record { record, consumed } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(record.seq, 42);
                assert_eq!(record.ops, ops.map(|(op, k)| (op, k)));
            }
            other => panic!("expected a record, got {other:?}"),
        }
        assert_eq!(decode_record::<u64>(&buf, buf.len()), DecodeOutcome::Clean);
    }

    #[test]
    fn every_truncation_point_reads_as_torn() {
        let buf = roundtrip(9, &[(WalOp::Insert, 123), (WalOp::Remove, 456)]);
        for cut in 1..buf.len() {
            assert_eq!(
                decode_record::<u64>(&buf[..cut], 0),
                DecodeOutcome::Torn,
                "prefix of {cut} bytes should read as torn"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_reads_as_torn_or_shorter_valid_log() {
        let buf = roundtrip(5, &[(WalOp::Insert, 0xDEAD_BEEF)]);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            match decode_record::<u64>(&bad, 0) {
                DecodeOutcome::Torn => {}
                // A flip in the length field *could* in principle frame a
                // different window whose checksum happens to match — FNV
                // makes that astronomically unlikely, so treat it as a
                // failure if it ever shows up here.
                other => panic!("flip at byte {i} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn bad_kind_byte_is_torn() {
        let mut buf = roundtrip(1, &[(WalOp::Insert, 1)]);
        // Kind byte sits right after header + seq + n_ops.
        let kind_at = RECORD_HEADER + 8 + 4;
        buf[kind_at] = 7;
        // Recompute the checksum so only the kind is wrong.
        let payload = &buf[RECORD_HEADER..];
        let sum = fnv1a(payload);
        buf[4..12].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_record::<u64>(&buf, 0), DecodeOutcome::Torn);
    }

    #[test]
    fn implausible_length_is_torn_not_a_huge_allocation() {
        let mut buf = vec![0u8; RECORD_HEADER];
        buf[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(decode_record::<u64>(&buf, 0), DecodeOutcome::Torn);
    }

    fn kv_roundtrip(seq: u64, ops: &[WalMapOp<u64, u64>]) -> Vec<u8> {
        let mut buf = Vec::new();
        let borrowed: Vec<WalMapOpRef<'_, u64, u64>> = ops
            .iter()
            .map(|op| match op {
                WalMapOp::InsertKv(k, v) => WalMapOpRef::InsertKv(k, v),
                WalMapOp::Remove(k) => WalMapOpRef::Remove(k),
            })
            .collect();
        encode_map_record(seq, &borrowed, &mut buf);
        buf
    }

    #[test]
    fn map_records_round_trip_with_values() {
        let ops = vec![
            WalMapOp::InsertKv(7u64, 700u64),
            WalMapOp::Remove(9),
            WalMapOp::InsertKv(u64::MAX, 0),
        ];
        let buf = kv_roundtrip(13, &ops);
        match decode_map_record::<u64, u64>(&buf, 0) {
            DecodeOutcome::Record { record, consumed } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(record.seq, 13);
                assert_eq!(record.ops, ops);
            }
            other => panic!("expected a record, got {other:?}"),
        }
        assert_eq!(
            decode_map_record::<u64, u64>(&buf, buf.len()),
            DecodeOutcome::Clean
        );
    }

    #[test]
    fn map_truncations_and_flips_read_as_torn() {
        let buf = kv_roundtrip(3, &[WalMapOp::InsertKv(1, 2), WalMapOp::Remove(3)]);
        for cut in 1..buf.len() {
            assert_eq!(
                decode_map_record::<u64, u64>(&buf[..cut], 0),
                DecodeOutcome::Torn,
                "prefix of {cut} bytes"
            );
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                decode_map_record::<u64, u64>(&bad, 0),
                DecodeOutcome::Torn,
                "flip at byte {i}"
            );
        }
    }

    #[test]
    fn codecs_reject_each_others_kinds() {
        // A set record (KIND_INSERT, keys only) must not decode as a map
        // record: the map codec has no value to give kind 0.
        let set_buf = roundtrip(1, &[(WalOp::Insert, 5)]);
        assert_eq!(
            decode_map_record::<u64, u64>(&set_buf, 0),
            DecodeOutcome::Torn
        );
        // And a map upsert (KIND_INSERT_KV) must not decode as a set
        // record: the set codec does not know the kind.
        let map_buf = kv_roundtrip(1, &[WalMapOp::InsertKv(5, 50)]);
        assert_eq!(decode_record::<u64>(&map_buf, 0), DecodeOutcome::Torn);
        // Removes are the same width in both framings, but the set codec
        // still rejects the record when any op in it is value-bearing.
        let mixed = kv_roundtrip(2, &[WalMapOp::Remove(1), WalMapOp::InsertKv(2, 20)]);
        assert_eq!(decode_record::<u64>(&mixed, 0), DecodeOutcome::Torn);
    }

    #[test]
    fn unknown_map_kind_is_torn() {
        let mut buf = kv_roundtrip(1, &[WalMapOp::Remove(1)]);
        let kind_at = RECORD_HEADER + 8 + 4;
        buf[kind_at] = 9;
        let payload = &buf[RECORD_HEADER..];
        let sum = fnv1a(payload);
        buf[4..12].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_map_record::<u64, u64>(&buf, 0), DecodeOutcome::Torn);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
