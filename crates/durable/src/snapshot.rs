//! Snapshot files and the manifest that commits them.
//!
//! A snapshot is the set's full contents at one linearisation point,
//! paired with that point's sequence number `S`: loading the snapshot and
//! replaying WAL records with seq > `S` reconstructs the exact state.
//! The snapshot file itself (`snap-<seq>.snap`) is written and fsynced
//! first; it only *becomes* the recovery root when the single-file
//! `MANIFEST` is atomically renamed into place pointing at it.  Crash
//! anywhere before the rename and the old manifest (or none) still rules;
//! crash after and the new snapshot rules — there is no in-between state.
//!
//! Both files carry a magic, an FNV-1a 64 checksum, and explicit lengths.
//! A *missing* manifest means a fresh (or pre-snapshot) directory and is
//! normal; a *corrupt* manifest or snapshot is an error — silently falling
//! back to "no snapshot" would present data loss as a clean recovery,
//! because the snapshot that manifest pointed at was what authorised
//! deleting older log segments.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use batchapi::KeyCodec;

use crate::log::sync_dir;
use crate::record::fnv1a;

/// Identifies a keys-only (set) snapshot file (version 1).
const SNAP_MAGIC: &[u8; 8] = b"PBSNAP\x00\x01";

/// Identifies a key-value (map) snapshot file (version 2): each entry is
/// `K::WIDTH` key bytes followed by `V::WIDTH` value bytes.  The bumped
/// magic keeps a map snapshot from loading as a set snapshot (or vice
/// versa) — the loaders reject the other family's files as corrupt.
const KV_SNAP_MAGIC: &[u8; 8] = b"PBSNAP\x00\x02";

/// Identifies the manifest (version 1).
const MANIFEST_MAGIC: &[u8; 8] = b"PBMANI\x00\x01";

/// The manifest's file name inside the durable directory.
const MANIFEST_NAME: &str = "MANIFEST";

/// Path of the snapshot taken at `seq` inside `dir`.
pub(crate) fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(snapshot_name(seq))
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

fn corrupt(what: &str, path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what} at {} is corrupt", path.display()),
    )
}

/// Writes and fsyncs the snapshot of `keys` (must be strictly ascending)
/// taken at `seq`; returns its file name.  The snapshot is inert until
/// [`commit_manifest`] points the manifest at it.
pub(crate) fn write_snapshot<K: KeyCodec>(dir: &Path, seq: u64, keys: &[K]) -> io::Result<String> {
    let mut buf = Vec::with_capacity(8 + 8 + 8 + keys.len() * K::WIDTH + 8);
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for key in keys {
        let at = buf.len();
        buf.resize(at + K::WIDTH, 0);
        key.encode(&mut buf[at..]);
    }
    let checksum = fnv1a(&buf[SNAP_MAGIC.len()..]);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let path = snapshot_path(dir, seq);
    let mut file = File::create(&path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    sync_dir(dir)?;
    Ok(snapshot_name(seq))
}

/// Loads and verifies the snapshot at `path`, returning `(seq, keys)`.
pub(crate) fn load_snapshot<K: KeyCodec + Ord>(path: &Path) -> io::Result<(u64, Vec<K>)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let header = SNAP_MAGIC.len() + 8 + 8;
    if buf.len() < header + 8 || &buf[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt("snapshot", path));
    }
    let body = &buf[SNAP_MAGIC.len()..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(corrupt("snapshot", path));
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let count = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
    let keys_bytes = &body[16..];
    if keys_bytes.len() != count * K::WIDTH {
        return Err(corrupt("snapshot", path));
    }
    let mut keys = Vec::with_capacity(count);
    for chunk in keys_bytes.chunks_exact(K::WIDTH) {
        let key = K::decode(chunk);
        if let Some(last) = keys.last() {
            if *last >= key {
                return Err(corrupt("snapshot (keys not strictly ascending)", path));
            }
        }
        keys.push(key);
    }
    Ok((seq, keys))
}

/// Writes and fsyncs the key-value snapshot of `keys -> vals` (keys must
/// be strictly ascending, `vals` parallel to them) taken at `seq`;
/// returns its file name.  The map-tier sibling of [`write_snapshot`].
pub(crate) fn write_kv_snapshot<K: KeyCodec, V: KeyCodec>(
    dir: &Path,
    seq: u64,
    keys: &[K],
    vals: &[V],
) -> io::Result<String> {
    debug_assert_eq!(keys.len(), vals.len());
    let entry = K::WIDTH + V::WIDTH;
    let mut buf = Vec::with_capacity(8 + 8 + 8 + keys.len() * entry + 8);
    buf.extend_from_slice(KV_SNAP_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for (key, val) in keys.iter().zip(vals) {
        let at = buf.len();
        buf.resize(at + entry, 0);
        key.encode(&mut buf[at..at + K::WIDTH]);
        val.encode(&mut buf[at + K::WIDTH..at + entry]);
    }
    let checksum = fnv1a(&buf[KV_SNAP_MAGIC.len()..]);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let path = snapshot_path(dir, seq);
    let mut file = File::create(&path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    sync_dir(dir)?;
    Ok(snapshot_name(seq))
}

/// Loads and verifies the key-value snapshot at `path`, returning
/// `(seq, keys, vals)` with `vals` parallel to the strictly-ascending
/// `keys`.
pub(crate) fn load_kv_snapshot<K: KeyCodec + Ord, V: KeyCodec>(
    path: &Path,
) -> io::Result<(u64, Vec<K>, Vec<V>)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let header = KV_SNAP_MAGIC.len() + 8 + 8;
    if buf.len() < header + 8 || &buf[..KV_SNAP_MAGIC.len()] != KV_SNAP_MAGIC {
        return Err(corrupt("kv snapshot", path));
    }
    let body = &buf[KV_SNAP_MAGIC.len()..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(corrupt("kv snapshot", path));
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let count = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
    let entry = K::WIDTH + V::WIDTH;
    let entry_bytes = &body[16..];
    if entry_bytes.len() != count * entry {
        return Err(corrupt("kv snapshot", path));
    }
    let mut keys = Vec::with_capacity(count);
    let mut vals = Vec::with_capacity(count);
    for chunk in entry_bytes.chunks_exact(entry) {
        let key = K::decode(&chunk[..K::WIDTH]);
        if let Some(last) = keys.last() {
            if *last >= key {
                return Err(corrupt("kv snapshot (keys not strictly ascending)", path));
            }
        }
        keys.push(key);
        vals.push(V::decode(&chunk[K::WIDTH..]));
    }
    Ok((seq, keys, vals))
}

/// Atomically commits `snap_name` (taken at `seq`) as the recovery root:
/// write `MANIFEST.tmp`, fsync it, rename over `MANIFEST`, fsync the
/// directory.  The rename is the commit point.
pub(crate) fn commit_manifest(dir: &Path, seq: u64, snap_name: &str) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 + 8 + 4 + snap_name.len() + 8);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(snap_name.len() as u32).to_le_bytes());
    buf.extend_from_slice(snap_name.as_bytes());
    let checksum = fnv1a(&buf[MANIFEST_MAGIC.len()..]);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
    sync_dir(dir)
}

/// Reads the manifest: `Ok(None)` when it does not exist (a fresh or
/// never-snapshotted directory), `Ok(Some((seq, snapshot_path)))` when
/// valid, `Err` when present but damaged (see the module docs for why
/// damage must not degrade to `None`).
pub(crate) fn read_manifest(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    let path = dir.join(MANIFEST_NAME);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut buf)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let header = MANIFEST_MAGIC.len() + 8 + 4;
    if buf.len() < header + 8 || &buf[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(corrupt("manifest", &path));
    }
    let body = &buf[MANIFEST_MAGIC.len()..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(corrupt("manifest", &path));
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let name_len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    if body.len() != 12 + name_len {
        return Err(corrupt("manifest", &path));
    }
    let Ok(name) = std::str::from_utf8(&body[12..]) else {
        return Err(corrupt("manifest", &path));
    };
    // The name is a bare file name we wrote ourselves; refuse anything
    // that could escape the directory.
    if name.contains('/') || name.contains('\\') || name.is_empty() {
        return Err(corrupt("manifest", &path));
    }
    Ok(Some((seq, dir.join(name))))
}

/// Deletes every `snap-*.snap` in `dir` except `keep`; returns how many
/// were removed.  Run after a manifest commit to reap the superseded
/// snapshot (and any orphans a crash left behind).
pub(crate) fn remove_stale_snapshots(dir: &Path, keep: &Path) -> io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("snap-") && name.ends_with(".snap") && path != keep {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "durable-snap-test-{}-{tag}-{id}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_and_manifest_round_trip() {
        let dir = scratch_dir("roundtrip");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let keys: Vec<u64> = vec![3, 9, 27, u64::MAX];
        let name = write_snapshot(&dir, 41, &keys).unwrap();
        commit_manifest(&dir, 41, &name).unwrap();
        let (seq, path) = read_manifest(&dir).unwrap().expect("manifest committed");
        assert_eq!(seq, 41);
        let (snap_seq, loaded) = load_snapshot::<u64>(&path).unwrap();
        assert_eq!(snap_seq, 41);
        assert_eq!(loaded, keys);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let dir = scratch_dir("empty");
        let name = write_snapshot::<u64>(&dir, 0, &[]).unwrap();
        let (seq, keys) = load_snapshot::<u64>(&dir.join(name)).unwrap();
        assert_eq!((seq, keys), (0, vec![]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_or_manifest_is_an_error_not_a_fallback() {
        let dir = scratch_dir("corrupt");
        let name = write_snapshot(&dir, 5, &[1u64, 2]).unwrap();
        commit_manifest(&dir, 5, &name).unwrap();

        let snap_path = dir.join(&name);
        let mut bytes = fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&snap_path, &bytes).unwrap();
        assert_eq!(
            load_snapshot::<u64>(&snap_path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let manifest = dir.join("MANIFEST");
        let mut bytes = fs::read(&manifest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&manifest, &bytes).unwrap();
        assert_eq!(
            read_manifest(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsorted_snapshot_keys_are_rejected() {
        let dir = scratch_dir("unsorted");
        // Hand-build a snapshot whose keys are out of order but whose
        // checksum is honest: the order check must still reject it.
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAP_MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&9u64.to_be_bytes());
        buf.extend_from_slice(&3u64.to_be_bytes());
        let sum = fnv1a(&buf[SNAP_MAGIC.len()..]);
        buf.extend_from_slice(&sum.to_le_bytes());
        let path = dir.join("snap-bad.snap");
        fs::write(&path, &buf).unwrap();
        assert_eq!(
            load_snapshot::<u64>(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kv_snapshot_round_trips_and_families_stay_apart() {
        let dir = scratch_dir("kv");
        let keys: Vec<u64> = vec![2, 5, 8];
        let vals: Vec<u64> = vec![20, 50, 80];
        let name = write_kv_snapshot(&dir, 7, &keys, &vals).unwrap();
        let path = dir.join(&name);
        let (seq, k, v) = load_kv_snapshot::<u64, u64>(&path).unwrap();
        assert_eq!((seq, k, v), (7, keys.clone(), vals));
        // A kv snapshot must not load as a set snapshot, nor vice versa:
        // the magics differ.
        assert_eq!(
            load_snapshot::<u64>(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let set_name = write_snapshot(&dir, 9, &keys).unwrap();
        assert_eq!(
            load_kv_snapshot::<u64, u64>(&dir.join(set_name))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_snapshots_are_reaped_except_the_kept_one() {
        let dir = scratch_dir("reap");
        let a = write_snapshot(&dir, 1, &[1u64]).unwrap();
        let b = write_snapshot(&dir, 2, &[1u64, 2]).unwrap();
        let keep = dir.join(&b);
        assert_eq!(remove_stale_snapshots(&dir, &keep).unwrap(), 1);
        assert!(!dir.join(a).exists());
        assert!(keep.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
