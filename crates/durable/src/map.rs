//! Durable key-value maps: the map-tier sibling of [`DurableSet`].
//!
//! A [`DurableMap`] persists a [`batchapi::BatchedMap`] backend with the
//! same artefacts as the set tier — an append-only segment WAL, key-value
//! snapshots, an atomically-committed manifest — but in the *version-2*
//! on-disk dialect: segments open with the bumped magic
//! (`PBWAL\x00\x00\x02`), upsert records carry a value payload after the
//! key (`KIND_INSERT_KV`), and snapshots store `(key, value)` entries
//! (`PBSNAP\x00\x02`).  Each dialect's recovery rejects the other's
//! artefacts — a set log never replays into a map or vice versa, and an
//! unknown record kind reads as a torn tail, never as invented data.
//!
//! # Concurrency model
//!
//! Unlike [`DurableSet`], which layers the WAL over the flat-combining
//! front-end's commit log, `DurableMap` serialises every operation through
//! one mutex holding the backend *and* the WAL together.  That single
//! critical section makes append order trivially equal to commit order —
//! the WAL is the linearisation — at the cost of no combining: one writer
//! mutates at a time.  Batched calls still amortise (one lock, one round,
//! one record per batch); wiring a map-aware combining front-end in front
//! is the roadmap's follow-on.
//!
//! # Logging policy
//!
//! Every upsert is logged, including upserts of already-present keys —
//! the value may have changed, and replaying an unchanged upsert is
//! idempotent (last-wins).  Removes of absent keys and pure reads are not
//! logged.  Group commit, snapshots, `durable_seq`, wedging, and the
//! crash-consistency contract are exactly the set tier's; the kill-9
//! suite in `tests/durable_map_crash.rs` enforces that *values*, not
//! just keys, survive recovery.
//!
//! [`DurableSet`]: crate::DurableSet

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use batchapi::{Batch, BatchedMap, KeyCodec, KvBatch};
use obs::Registry;

use crate::log::{
    list_segments, replay_map_segment, truncate_segment, SegmentEnd, SegmentLog, SEGMENT_MAGIC_V2,
};
use crate::record::{encode_map_record, WalMapOp, WalMapOpRef};
use crate::snapshot::{
    commit_manifest, load_kv_snapshot, read_manifest, remove_stale_snapshots, snapshot_path,
    write_kv_snapshot,
};
use crate::{log, DurableOptions, Metrics, Wal};

/// The backend and its WAL, under one mutex: the shared critical section
/// is what makes append order equal commit order (see the module docs).
struct MapInner<M> {
    map: M,
    wal: Wal,
}

/// A durable concurrent map: a [`batchapi::BatchedMap`] backend whose
/// mutations are appended — values included — to a version-2 write-ahead
/// log, checkpointed by key-value snapshots, and recovered by
/// [`DurableMap::open`].  See the [module docs](self) for the dialect and
/// the concurrency model, and the [crate docs](crate) for the protocol
/// and crash-consistency contract it shares with [`crate::DurableSet`].
pub struct DurableMap<K, V, M>
where
    K: Ord + Clone + KeyCodec,
    V: Clone + KeyCodec,
    M: BatchedMap<K, V>,
{
    inner: Mutex<MapInner<M>>,
    dir: PathBuf,
    group_commit: u64,
    snapshot_every: u64,
    registry: Registry,
    metrics: Metrics,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K, V, M> DurableMap<K, V, M>
where
    K: Ord + Clone + KeyCodec,
    V: Clone + KeyCodec,
    M: BatchedMap<K, V>,
{
    /// Opens (creating if absent) the durable map rooted at `dir`,
    /// recovering any existing history: load the manifest's key-value
    /// snapshot, replay the version-2 log tail above it, truncate a torn
    /// final record, and seed a fresh backend via `make_backend` (e.g.
    /// `IstMap::from_kv_batch`).
    ///
    /// # Errors
    ///
    /// I/O failure, or `InvalidData` when a committed artefact (manifest
    /// or snapshot) is damaged — including a *set*-dialect snapshot,
    /// which a map must refuse rather than invent values for.  A torn log
    /// tail is an expected crash signature and recovered from silently;
    /// so is a whole set-dialect (version-1) segment, which tears at
    /// offset zero.
    pub fn open<P, F>(
        dir: P,
        options: DurableOptions,
        make_backend: F,
    ) -> io::Result<DurableMap<K, V, M>>
    where
        P: AsRef<Path>,
        F: FnOnce(KvBatch<K, V>) -> M,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);

        // 1. The snapshot, if one was ever committed.
        let mut contents: BTreeMap<K, V> = BTreeMap::new();
        let mut snap_seq = 0u64;
        if let Some((seq, path)) = read_manifest(&dir)? {
            let (file_seq, keys, vals) = load_kv_snapshot::<K, V>(&path)?;
            if file_seq != seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "manifest says seq {seq} but snapshot {} says {file_seq}",
                        path.display()
                    ),
                ));
            }
            snap_seq = seq;
            contents.extend(keys.into_iter().zip(vals));
        }
        metrics.snapshot_seq.set(snap_seq);

        // 2. Replay the log tail in segment-name (= append) order; a
        //    non-increasing record seq is damage, like the set tier.
        let segments = list_segments(&dir)?;
        let mut max_seq = snap_seq;
        let mut last_record_seq = 0u64;
        let mut replayed = 0u64;
        let mut tear: Option<(usize, u64)> = None;
        for (i, (_, path)) in segments.iter().enumerate() {
            let end = replay_map_segment::<K, V, _>(path, |record| {
                if record.seq <= last_record_seq {
                    return false;
                }
                last_record_seq = record.seq;
                if record.seq > snap_seq {
                    for op in record.ops {
                        match op {
                            WalMapOp::InsertKv(key, val) => {
                                contents.insert(key, val);
                            }
                            WalMapOp::Remove(key) => {
                                contents.remove(&key);
                            }
                        }
                    }
                    max_seq = record.seq;
                    replayed += 1;
                }
                true
            })?;
            if let SegmentEnd::Torn(offset) = end {
                tear = Some((i, offset));
                break;
            }
        }

        // 3. Heal a tear exactly as the set tier does.
        if let Some((i, offset)) = tear {
            metrics.torn_tails.inc();
            if offset == 0 {
                std::fs::remove_file(&segments[i].1)?;
                metrics.segments_deleted.inc();
            } else {
                truncate_segment(&segments[i].1, offset)?;
            }
            for (_, path) in &segments[i + 1..] {
                std::fs::remove_file(path)?;
                metrics.segments_deleted.inc();
            }
            log::sync_dir(&dir)?;
        }
        metrics.recovery_replayed.record(replayed);

        // 4. A fresh active version-2 segment, named past every survivor.
        let highest_name = segments.iter().map(|&(seq, _)| seq).max().unwrap_or(0);
        let name = (max_seq + 1).max(highest_name + 1);
        let wal_log =
            SegmentLog::create(&dir, name, options.segment_bytes.max(1), SEGMENT_MAGIC_V2)?;
        metrics.segments_created.inc();

        // 5. The backend, from the recovered entries.
        let pairs: Vec<(K, V)> = contents.into_iter().collect();
        let batch = KvBatch::from_sorted(pairs).expect("BTreeMap iterates strictly ascending");
        let map = make_backend(batch);

        metrics.appended_seq.set(max_seq);
        metrics.durable_seq.set(max_seq);
        Ok(DurableMap {
            inner: Mutex::new(MapInner {
                map,
                wal: Wal {
                    log: wal_log,
                    appended_seq: max_seq,
                    last_name: name,
                    pending: 0,
                    since_snapshot: 0,
                    buf: Vec::new(),
                    wedged: false,
                },
            }),
            dir,
            group_commit: options.group_commit.max(1),
            snapshot_every: options.snapshot_every,
            registry,
            metrics,
            _marker: std::marker::PhantomData,
        })
    }

    /// Upserts `key -> val`; `Ok(true)` iff the key was newly inserted
    /// (an upsert of a present key returns `Ok(false)` but still replaces
    /// the value, and is still logged).  Durable on return only under
    /// `group_commit: 1` (see the crate docs).
    pub fn insert(&self, key: K, val: V) -> io::Result<bool> {
        let batch = KvBatch::from_unsorted(vec![(key, val)]);
        Ok(self.batch_insert_kv(&batch)?[0])
    }

    /// Removes `key`; `Ok(true)` iff it was present.
    pub fn remove(&self, key: &K) -> io::Result<bool> {
        let batch =
            Batch::from_sorted(vec![key.clone()]).expect("a single key is trivially sorted");
        Ok(self.batch_remove(&batch)?[0])
    }

    /// The value stored under `key`, if any.  Reads touch only the
    /// in-memory backend — no WAL work, no `io::Result`.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().unwrap().map.get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.lock().unwrap().map.contains_key(key)
    }

    /// One lookup per batch key; `result[i]` answers `batch[i]`.
    pub fn batch_get(&self, batch: &Batch<K>) -> Vec<Option<V>> {
        self.inner.lock().unwrap().map.batch_get(batch)
    }

    /// Upserts every batch entry (last-wins dedup already applied by
    /// [`KvBatch`]); one round, one WAL record carrying every `(key,
    /// value)` payload.  `result[i]` is `true` iff `batch.keys()[i]` was
    /// newly inserted.
    pub fn batch_insert_kv(&self, batch: &KvBatch<K, V>) -> io::Result<Vec<bool>> {
        self.with_wal(|this, inner| {
            let flags = inner.map.batch_insert_kv(batch);
            this.metrics.rounds_drained.inc();
            let ops: Vec<WalMapOpRef<'_, K, V>> = batch
                .iter()
                .map(|(k, v)| WalMapOpRef::InsertKv(k, v))
                .collect();
            this.append_and_commit(inner, &ops)?;
            Ok(flags)
        })
    }

    /// Removes every batch key; `result[i]` is `true` iff
    /// `batch[i]` was present.  Only effective removals are logged.
    pub fn batch_remove(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        self.with_wal(|this, inner| {
            let flags = inner.map.batch_remove(batch);
            this.metrics.rounds_drained.inc();
            let ops: Vec<WalMapOpRef<'_, K, V>> = batch
                .iter()
                .zip(&flags)
                .filter(|&(_, &hit)| hit)
                .map(|(k, _)| WalMapOpRef::Remove(k))
                .collect();
            this.append_and_commit(inner, &ops)?;
            Ok(flags)
        })
    }

    /// Number of entries (in memory; does not publish).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every `(key, value)` entry in ascending key order — the full
    /// contents at one linearisation point.
    pub fn collect_entries(&self) -> Vec<(K, V)> {
        self.inner.lock().unwrap().map.collect_entries()
    }

    /// Forces everything committed so far onto disk and returns the new
    /// durable high-water sequence number.
    pub fn sync(&self) -> io::Result<u64> {
        self.with_wal(|this, inner| {
            this.fsync_wal(&mut inner.wal)?;
            Ok(this.metrics.durable_seq.get())
        })
    }

    /// Takes a key-value snapshot now and truncates the log; returns the
    /// snapshot's sequence number.  Everything at or below it is durable
    /// when this returns.
    pub fn snapshot(&self) -> io::Result<u64> {
        self.with_wal(|this, inner| this.snapshot_inner(inner))
    }

    /// The durable high-water mark: every round with seq at or below this
    /// has reached disk and survives any crash.
    pub fn durable_seq(&self) -> u64 {
        self.metrics.durable_seq.get()
    }

    /// Snapshot of the `durable.*` metrics (same registry names as the
    /// set tier).
    pub fn metrics(&self) -> obs::Snapshot {
        self.registry.snapshot()
    }

    /// Drains and fsyncs, then closes; the error-reporting variant of
    /// [`Drop`].
    pub fn close(self) -> io::Result<()> {
        self.sync().map(|_| ())
    }

    /// The shared durability tail of every mutation: append one record
    /// carrying `ops` (skipped entirely when there are none — no-op
    /// rounds leave no trace, like the set tier's stripped rounds), then
    /// run group commit and the snapshot policy.  Caller holds the lock
    /// and has already applied the mutation to the backend.
    fn append_and_commit(
        &self,
        inner: &mut MapInner<M>,
        ops: &[WalMapOpRef<'_, K, V>],
    ) -> io::Result<()> {
        if !ops.is_empty() {
            let wal = &mut inner.wal;
            if wal.log.wants_rotation() {
                self.fsync_wal(wal)?;
                let name = wal.next_name();
                wal.log.rotate(name)?;
                wal.last_name = name;
                self.metrics.segments_created.inc();
            }
            let seq = wal.appended_seq + 1;
            let mut buf = std::mem::take(&mut wal.buf);
            buf.clear();
            encode_map_record(seq, ops, &mut buf);
            let appended = wal.log.append(&buf);
            self.metrics.bytes_written.add(buf.len() as u64);
            wal.buf = buf;
            appended?;
            self.metrics.records_appended.inc();
            wal.appended_seq = seq;
            wal.pending += 1;
            wal.since_snapshot += 1;
            self.metrics.appended_seq.set(seq);
        }
        if inner.wal.pending >= self.group_commit {
            self.fsync_wal(&mut inner.wal)?;
        }
        if self.snapshot_every > 0 && inner.wal.since_snapshot >= self.snapshot_every {
            self.snapshot_inner(inner)?;
        }
        Ok(())
    }

    /// Runs `f` under the lock with wedge bookkeeping, mirroring the set
    /// tier: refuse if a previous call failed, wedge if this one does.
    fn with_wal<T>(
        &self,
        f: impl FnOnce(&Self, &mut MapInner<M>) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.wal.wedged {
            return Err(io::Error::other(
                "durable map wedged by an earlier I/O error; reopen the directory to recover",
            ));
        }
        let result = f(self, &mut inner);
        if result.is_err() {
            inner.wal.wedged = true;
        }
        result
    }

    /// Fsyncs the active segment, advancing the durable mark over every
    /// pending record.  Caller holds the lock.
    fn fsync_wal(&self, wal: &mut Wal) -> io::Result<()> {
        if wal.pending == 0 {
            return Ok(());
        }
        wal.log.sync()?;
        self.metrics.fsyncs.inc();
        self.metrics.group_size.record(wal.pending);
        wal.pending = 0;
        self.metrics.durable_seq.set_max(wal.appended_seq);
        Ok(())
    }

    /// Takes and commits a key-value snapshot, then truncates the log.
    /// Caller holds the lock, so the backend's contents *are* the state
    /// at `appended_seq` — no combiner race to reason about.
    fn snapshot_inner(&self, inner: &mut MapInner<M>) -> io::Result<u64> {
        self.fsync_wal(&mut inner.wal)?;
        let entries = inner.map.collect_entries();
        let (keys, vals): (Vec<K>, Vec<V>) = entries.into_iter().unzip();
        let snap_seq = inner.wal.appended_seq;
        let name = write_kv_snapshot(&self.dir, snap_seq, &keys, &vals)?;
        commit_manifest(&self.dir, snap_seq, &name)?;
        self.metrics.snapshots.inc();
        self.metrics.snapshot_seq.set(snap_seq);
        self.metrics.durable_seq.set_max(snap_seq);

        let survivors = list_segments(&self.dir)?;
        let wal = &mut inner.wal;
        let next = wal.next_name().max(snap_seq + 1);
        wal.log.rotate(next)?;
        wal.last_name = next;
        self.metrics.segments_created.inc();
        let active = log::segment_path(&self.dir, next);
        for (_, path) in survivors {
            if path != active {
                std::fs::remove_file(&path)?;
                self.metrics.segments_deleted.inc();
            }
        }
        remove_stale_snapshots(&self.dir, &snapshot_path(&self.dir, snap_seq))?;
        log::sync_dir(&self.dir)?;
        wal.since_snapshot = 0;
        Ok(snap_seq)
    }
}

impl<K, V, M> Drop for DurableMap<K, V, M>
where
    K: Ord + Clone + KeyCodec,
    V: Clone + KeyCodec,
    M: BatchedMap<K, V>,
{
    fn drop(&mut self) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        if inner.wal.wedged {
            return;
        }
        let _ = self.fsync_wal(&mut inner.wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbist::IstMap;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "durable-map-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn open(dir: &Path, options: DurableOptions) -> DurableMap<u64, u64, IstMap<u64, u64>> {
        DurableMap::open(dir, options, |batch| IstMap::from_kv_batch(&batch)).unwrap()
    }

    #[test]
    fn fresh_open_write_reopen_recovers_values() {
        let dir = scratch_dir("basic");
        let map = open(&dir, DurableOptions::default());
        assert!(map.is_empty());
        assert!(map.insert(3, 30).unwrap());
        assert!(map.insert(1, 10).unwrap());
        // Upsert: replaces the value, reports not-new, still logs.
        assert!(!map.insert(3, 33).unwrap());
        assert!(map.remove(&1).unwrap());
        assert!(!map.remove(&1).unwrap());
        assert_eq!(map.get(&3), Some(33));
        map.close().unwrap();

        let map = open(&dir, DurableOptions::default());
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&3), Some(33), "the upserted value must survive");
        assert_eq!(map.get(&1), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batches_recover_with_last_wins_values() {
        let dir = scratch_dir("batch");
        let map = open(&dir, DurableOptions::default());
        let ins = KvBatch::from_unsorted((0..100u64).map(|i| (i, i * 2)).collect());
        assert!(map.batch_insert_kv(&ins).unwrap().iter().all(|&b| b));
        let over = KvBatch::from_unsorted((0..50u64).map(|i| (i * 2, 9_000 + i)).collect());
        let flags = map.batch_insert_kv(&over).unwrap();
        assert!(flags.iter().all(|&b| !b), "overwrites are not new");
        let rem = Batch::from_unsorted((0..20u64).map(|i| i * 5).collect());
        assert!(map.batch_remove(&rem).unwrap().iter().all(|&b| b));
        map.close().unwrap();

        let map = open(&dir, DurableOptions::default());
        assert_eq!(map.len(), 80);
        for i in 0..100u64 {
            let expect = if i % 5 == 0 {
                None
            } else if i % 2 == 0 {
                Some(9_000 + i / 2)
            } else {
                Some(i * 2)
            };
            assert_eq!(map.get(&i), expect, "key {i}");
        }
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn noop_removes_and_reads_write_no_records() {
        let dir = scratch_dir("noop");
        let map = open(&dir, DurableOptions::default());
        map.insert(5, 50).unwrap();
        let before = map.metrics().counter("durable.records_appended").unwrap();
        assert_eq!(map.get(&5), Some(50));
        assert!(!map.remove(&99).unwrap());
        assert!(map.batch_get(&Batch::from_unsorted(vec![5, 6])).len() == 2);
        let after = map.metrics().counter("durable.records_appended").unwrap();
        assert_eq!(before, after, "no state change, no WAL record");
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_and_recovery_replays_only_the_tail() {
        let dir = scratch_dir("snap");
        let map = open(&dir, DurableOptions::default());
        for k in 0..200u64 {
            map.insert(k, k + 1).unwrap();
        }
        let snap_seq = map.snapshot().unwrap();
        assert_eq!(snap_seq, 200);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        for k in 200..230u64 {
            map.insert(k, k + 1).unwrap();
        }
        map.close().unwrap();

        let map = open(&dir, DurableOptions::default());
        assert_eq!(map.len(), 230);
        assert_eq!(map.get(&150), Some(151), "snapshotted value");
        assert_eq!(map.get(&229), Some(230), "replayed value");
        let m = map.metrics();
        assert_eq!(m.gauge("durable.snapshot_seq"), Some(snap_seq));
        let replayed = m.histogram("durable.recovery_replayed").unwrap();
        assert_eq!(replayed.sum, 30, "only the post-snapshot tail replays");
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_snapshots_and_rotation_keep_every_value() {
        let dir = scratch_dir("auto");
        let map = open(
            &dir,
            DurableOptions {
                snapshot_every: 25,
                segment_bytes: 64,
                ..DurableOptions::default()
            },
        );
        for k in 0..90u64 {
            map.insert(k, k * 7).unwrap();
        }
        assert_eq!(map.metrics().counter("durable.snapshots"), Some(3));
        drop(map);
        let map = open(&dir, DurableOptions::default());
        assert_eq!(map.len(), 90);
        assert_eq!(map.get(&89), Some(89 * 7));
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn set_dialect_segments_are_rejected_not_replayed() {
        let dir = scratch_dir("dialect");
        let map = open(
            &dir,
            DurableOptions {
                group_commit: 1,
                ..DurableOptions::default()
            },
        );
        map.insert(1, 100).unwrap();
        drop(map);
        // Plant a *set*-dialect segment after the map's segments: its
        // version-1 magic must tear at offset zero (and be deleted), not
        // replay keys with invented values.
        let planted = log::segment_path(&dir, 1_000);
        let mut buf = Vec::new();
        buf.extend_from_slice(crate::log::SEGMENT_MAGIC);
        crate::record::encode_record(1_000, &[(crate::record::WalOp::Insert, &7u64)], &mut buf);
        std::fs::write(&planted, &buf).unwrap();

        let map = open(&dir, DurableOptions::default());
        assert_eq!(
            map.metrics().counter("durable.torn_tails"),
            Some(1),
            "the set-dialect segment must read as damage"
        );
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&1), Some(100));
        assert_eq!(map.get(&7), None, "no value was invented for key 7");
        assert!(!planted.exists(), "recovery deletes the foreign segment");
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_gates_the_durable_mark() {
        let dir = scratch_dir("group");
        let map = open(
            &dir,
            DurableOptions {
                group_commit: 8,
                ..DurableOptions::default()
            },
        );
        for k in 0..20u64 {
            map.insert(k, k).unwrap();
        }
        let m = map.metrics();
        assert_eq!(m.counter("durable.records_appended"), Some(20));
        assert_eq!(m.counter("durable.fsyncs"), Some(2));
        assert!(map.durable_seq() < m.gauge("durable.appended_seq").unwrap());
        let durable = map.sync().unwrap();
        assert_eq!(durable, 20);
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
