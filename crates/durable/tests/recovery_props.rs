//! Property tests for durability recovery.
//!
//! Two families:
//!
//! 1. **Oracle equivalence** — a deterministic pseudo-random op stream is
//!    applied to a [`DurableSet`] and a plain `BTreeSet` side by side,
//!    across the configuration grid {snapshot never / every round /
//!    every 7} × {group commit 1 / 8 / 64}, with the set closed and
//!    reopened mid-stream.  Every op result and every recovered state
//!    must match the oracle exactly.
//!
//! 2. **Corrupt-a-byte fuzz** — flip each byte of the on-disk state in a
//!    fresh copy of the directory and reopen.  A flipped WAL byte must
//!    recover exactly the state as of the last record before the damage
//!    (and heal, so a second open is clean); a flipped manifest or
//!    snapshot byte must refuse to open with `InvalidData` — never panic,
//!    and never silently fall back to an emptier state.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use batchapi::Batch;
use durable::{DurableOptions, DurableSet};
use forkjoin::Pool;
use pbist::IstSet;

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("durable-props-{}-{tag}-{id}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &Path, group_commit: u64, snapshot_every: u64) -> DurableSet<u64, IstSet<u64>> {
    DurableSet::open(
        dir,
        Pool::new(1).expect("pool"),
        DurableOptions {
            group_commit,
            snapshot_every,
            ..DurableOptions::default()
        },
        |batch| IstSet::from_batch(&batch),
    )
    .expect("open durable set")
}

/// The durable set's full contents (one linearisation point).
fn contents(set: &DurableSet<u64, IstSet<u64>>) -> Vec<u64> {
    set.inner().snapshot_keys().0
}

/// Flat copy of a durable directory (it never has subdirectories).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn flip_byte(path: &Path, at: usize) {
    let mut bytes = fs::read(path).unwrap();
    bytes[at] ^= 0x5A;
    fs::write(path, &bytes).unwrap();
}

/// xorshift64* — deterministic, seedable, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn recovery_matches_a_btreeset_oracle_across_the_config_grid() {
    for snapshot_every in [0u64, 1, 7] {
        for group_commit in [1u64, 8, 64] {
            let tag = format!("s{snapshot_every}-g{group_commit}");
            let dir = scratch_dir(&tag);
            let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (snapshot_every << 8 | group_commit));
            let mut oracle: BTreeSet<u64> = BTreeSet::new();
            let mut set = open(&dir, group_commit, snapshot_every);

            for step in 0..240 {
                if step == 90 || step == 201 {
                    // Mid-stream reopen: everything must survive the trip
                    // through the log (and any snapshots) byte-for-byte.
                    set.close().expect("close");
                    set = open(&dir, group_commit, snapshot_every);
                    assert_eq!(
                        contents(&set),
                        oracle.iter().copied().collect::<Vec<_>>(),
                        "{tag}: reopen at step {step} diverged from the oracle"
                    );
                }
                let key = rng.next() % 128;
                match rng.next() % 5 {
                    0 => assert_eq!(
                        set.insert(key).expect("insert"),
                        oracle.insert(key),
                        "{tag}: insert({key}) at step {step}"
                    ),
                    1 => assert_eq!(
                        set.remove(&key).expect("remove"),
                        oracle.remove(&key),
                        "{tag}: remove({key}) at step {step}"
                    ),
                    2 => assert_eq!(
                        set.contains(&key).expect("contains"),
                        oracle.contains(&key),
                        "{tag}: contains({key}) at step {step}"
                    ),
                    kind => {
                        let keys: Vec<u64> =
                            (0..1 + rng.next() % 9).map(|_| rng.next() % 128).collect();
                        let batch = Batch::from_unsorted(keys);
                        // Insert-only (or remove-only) batches of distinct
                        // keys: the per-key result is independent of order.
                        let expect: Vec<bool> = batch
                            .as_slice()
                            .iter()
                            .map(|&k| {
                                if kind == 3 {
                                    oracle.insert(k)
                                } else {
                                    oracle.remove(&k)
                                }
                            })
                            .collect();
                        let got = if kind == 3 {
                            set.batch_insert(&batch).expect("batch_insert")
                        } else {
                            set.batch_remove(&batch).expect("batch_remove")
                        };
                        assert_eq!(got, expect, "{tag}: batch op at step {step}");
                    }
                }
                assert_eq!(set.len(), oracle.len(), "{tag}: len at step {step}");
            }

            set.close().expect("final close");
            let set = open(&dir, group_commit, snapshot_every);
            assert_eq!(
                contents(&set),
                oracle.iter().copied().collect::<Vec<_>>(),
                "{tag}: final recovery diverged from the oracle"
            );
            assert_eq!(
                set.metrics().counter("durable.torn_tails"),
                Some(0),
                "{tag}: clean shutdowns must not report tears"
            );
            drop(set);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Builds a directory whose WAL holds exactly 24 single-op records (no
/// snapshot), returning the oracle state after each record: `states[k]`
/// is the contents once the first `k` records have applied.
fn build_wal_fixture(dir: &Path) -> Vec<Vec<u64>> {
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let mut states = vec![Vec::new()];
    let set = open(dir, 1, 0);
    for i in 0..24u64 {
        // Every op is effective (ineffective ops write no record): two
        // inserts of fresh keys, then a remove of the second.
        if i % 3 == 2 {
            assert!(set.remove(&(i - 1)).expect("remove"));
            oracle.remove(&(i - 1));
        } else {
            assert!(set.insert(i).expect("insert"));
            oracle.insert(i);
        }
        states.push(oracle.iter().copied().collect());
    }
    set.close().expect("close fixture");
    states
}

#[test]
fn flipping_any_wal_byte_recovers_the_prefix_before_the_damage() {
    let base = scratch_dir("wal-fuzz-base");
    let states = build_wal_fixture(&base);

    // All 24 records land in the single active segment the fixture's one
    // open created (default 8 MiB rotation threshold).
    let segments: Vec<PathBuf> = fs::read_dir(&base)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(segments.len(), 1, "fixture should be one unrotated segment");
    let segment_name = segments[0].file_name().unwrap().to_owned();
    let len = fs::metadata(&segments[0]).unwrap().len() as usize;
    const MAGIC: usize = 8;
    assert_eq!((len - MAGIC) % 24, 0, "records are fixed-width here");
    let record = (len - MAGIC) / 24;

    for at in 0..len {
        let dir = scratch_dir("wal-fuzz");
        copy_dir(&base, &dir);
        flip_byte(&dir.join(&segment_name), at);

        // A tear in the magic voids the whole segment; a tear in record
        // k keeps exactly the records before it.  Either way open()
        // succeeds — a damaged log *tail* is the expected crash shape.
        let survivors = if at < MAGIC { 0 } else { (at - MAGIC) / record };
        let set = open(&dir, 1, 0);
        assert_eq!(
            set.metrics().counter("durable.torn_tails"),
            Some(1),
            "byte {at}: the flip must read as a tear"
        );
        assert_eq!(
            contents(&set),
            states[survivors],
            "byte {at}: recovery must keep exactly the {survivors} records before the damage"
        );
        drop(set);

        // Recovery healed (truncated or deleted) the damage: the second
        // open replays a clean log and agrees.
        let set = open(&dir, 1, 0);
        assert_eq!(
            set.metrics().counter("durable.torn_tails"),
            Some(0),
            "byte {at}: the tear must not survive healing"
        );
        assert_eq!(
            contents(&set),
            states[survivors],
            "byte {at}: healed state drifted"
        );
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&base).unwrap();
}

/// All `wal-*.log` segments in `dir` as `(file name, byte length)`,
/// sorted by name (= sequence order).
fn wal_segments(dir: &Path) -> Vec<(String, u64)> {
    let mut segments: Vec<(String, u64)> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .map(|e| {
            (
                e.file_name().to_str().unwrap().to_owned(),
                e.metadata().unwrap().len(),
            )
        })
        .collect();
    segments.sort();
    segments
}

/// Regression: a record larger than `segment_bytes` must append *whole*
/// to a single fresh segment — exactly one rotation, never a split
/// across segments, never a rotate-forever loop — and the state must
/// survive a reopen.  The rotation check runs once per record (before
/// the append), so an oversized record is legal in exactly one place:
/// alone at the head of the segment it forced open.
#[test]
fn an_oversized_record_appends_whole_to_one_fresh_segment() {
    let dir = scratch_dir("oversize");
    let open_tiny = |dir: &Path| {
        DurableSet::open(
            dir,
            Pool::new(1).expect("pool"),
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
                segment_bytes: 64,
                ..DurableOptions::default()
            },
            |batch| IstSet::from_batch(&batch),
        )
        .expect("open durable set")
    };

    let set = open_tiny(&dir);
    // Push the active segment past the 64-byte threshold with small
    // records, so the oversized record's own rotation check fires.
    for i in 0..6u64 {
        assert!(set.insert(i).expect("insert"));
    }
    let before = wal_segments(&dir);
    assert!(
        before.len() >= 2,
        "fixture should already have rotated under 64-byte segments: {before:?}"
    );

    // One batch round drains to one WAL record: 200 keys is a single
    // record ~25x the segment threshold.
    let big: Vec<u64> = (1_000..1_200u64).collect();
    assert!(
        set.batch_insert(&Batch::from_unsorted(big.clone()))
            .expect("batch_insert")
            .iter()
            .all(|&fresh| fresh),
        "all 200 keys are new"
    );

    let after = wal_segments(&dir);
    assert_eq!(
        after.len(),
        before.len() + 1,
        "the oversized record must force exactly one rotation: {before:?} -> {after:?}"
    );
    assert_eq!(
        &after[..before.len()],
        &before[..],
        "sealed segments must be untouched — the record must not split across files"
    );
    let (_, fresh_len) = after.last().unwrap();
    assert!(
        *fresh_len >= 200 * 8,
        "the whole record (>= 1600 bytes of keys) must sit in the fresh segment, got {fresh_len}"
    );

    // A follow-up small record rotates once more (the oversized segment
    // is over threshold) instead of re-triggering on the same record.
    assert!(set.insert(9_999).expect("insert after oversize"));
    assert_eq!(
        wal_segments(&dir).len(),
        after.len() + 1,
        "exactly one more rotation for the next record"
    );

    set.close().expect("close");
    let set = open_tiny(&dir);
    let mut expect: Vec<u64> = (0..6u64).chain(big).collect();
    expect.push(9_999);
    expect.sort_unstable();
    assert_eq!(
        contents(&set),
        expect,
        "recovery must replay the oversized record byte-for-byte"
    );
    drop(set);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipping_any_manifest_or_snapshot_byte_refuses_to_open() {
    let base = scratch_dir("snap-fuzz-base");
    {
        let set = open(&base, 1, 0);
        for i in 0..10u64 {
            set.insert(i).expect("insert");
        }
        set.snapshot().expect("snapshot");
        for i in 10..15u64 {
            set.insert(i).expect("insert");
        }
        set.close().expect("close fixture");
    }

    let snap_name = fs::read_dir(&base)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name()))
        .find(|n| {
            n.to_str()
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        })
        .expect("fixture has a snapshot");

    for target in ["MANIFEST", snap_name.to_str().unwrap()] {
        let len = fs::metadata(base.join(target)).unwrap().len() as usize;
        for at in 0..len {
            let dir = scratch_dir("snap-fuzz");
            copy_dir(&base, &dir);
            flip_byte(&dir.join(target), at);

            // The manifest authorised deleting older log segments, so a
            // damaged manifest or snapshot cannot degrade to "no
            // snapshot" — that would present data loss as a clean open.
            let err = DurableSet::<u64, IstSet<u64>>::open(
                &dir,
                Pool::new(1).expect("pool"),
                DurableOptions::default(),
                |batch| IstSet::from_batch(&batch),
            )
            .err()
            .unwrap_or_else(|| panic!("{target} byte {at}: corrupt root opened anyway"));
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "{target} byte {at}: wrong error kind ({err})"
            );
        }
        // The un-flipped copy still opens: the fixture itself is sound.
        let dir = scratch_dir("snap-fuzz-sound");
        copy_dir(&base, &dir);
        let set = open(&dir, 1, 0);
        assert_eq!(contents(&set), (0..15u64).collect::<Vec<_>>());
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&base).unwrap();
}
