//! Latches: one-shot "this job has completed" flags.
//!
//! Two flavours are needed:
//!
//! * [`SpinLatch`] — set by whoever executes a stolen job, probed by the
//!   worker that is waiting for the result inside `join`.  The waiting worker
//!   never sleeps on it (it keeps stealing other work instead), so a plain
//!   atomic flag suffices.
//! * [`LockLatch`] — used by threads *outside* the pool (e.g.
//!   [`Pool::install`](crate::Pool::install)) that have nothing better to do
//!   than sleep until the injected job finishes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A one-shot completion flag.
pub(crate) trait Latch {
    /// Marks the latch as set, waking any sleeping waiter.
    ///
    /// # Safety
    ///
    /// Once `set` is called, the latch (and the job containing it) may be
    /// deallocated by the waiting thread at any moment; the implementation
    /// must not touch `self` after the final store/notify.
    unsafe fn set(&self);
}

/// A latch that is polled by a busy worker thread.
#[derive(Debug, Default)]
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    /// Returns `true` once [`Latch::set`] has been called.
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    unsafe fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch that blocks the waiting thread on a condition variable.
#[derive(Debug, Default)]
pub(crate) struct LockLatch {
    mutex: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            mutex: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Blocks the calling thread until [`Latch::set`] is called.
    pub(crate) fn wait(&self) {
        let mut done = self.mutex.lock().unwrap();
        while !*done {
            done = self.cond.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    unsafe fn set(&self) {
        let mut done = self.mutex.lock().unwrap();
        *done = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_probe_transitions() {
        let latch = SpinLatch::new();
        assert!(!latch.probe());
        unsafe { latch.set() };
        assert!(latch.probe());
    }

    #[test]
    fn lock_latch_wakes_waiter() {
        let latch = Arc::new(LockLatch::new());
        let latch2 = Arc::clone(&latch);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            unsafe { latch2.set() };
        });
        latch.wait();
        handle.join().unwrap();
    }
}
