//! Pool construction ([`PoolBuilder`]), the [`Pool::install`] entry point,
//! and graceful shutdown.
//!
//! A [`Pool`] owns its worker threads: dropping the pool asks every worker to
//! finish the jobs it can still see and exit, then joins the OS threads.  The
//! shared [`Registry`] outlives the `Pool` handle only as long as a worker
//! still holds an `Arc` to it, i.e. until the last worker has unwound.

use std::fmt;
use std::io;
use std::sync::Arc;
use std::thread;

use crate::job::StackJob;
use crate::latch::LockLatch;
use crate::metrics::PoolMetrics;
use crate::registry::{worker_main, Registry, WorkerThread};

/// A fixed-size work-stealing thread pool executing [`join`](crate::join)
/// computations.
///
/// Construct one with [`Pool::new`] (just a thread count) or [`Pool::builder`]
/// (thread naming, stack size).  Enter the pool with [`Pool::install`]; inside
/// the installed closure, every [`join`](crate::join) call forks onto the
/// pool's workers.
pub struct Pool {
    registry: Arc<Registry>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with exactly `num_threads` worker threads.
    ///
    /// Fails with [`PoolBuildError::ZeroThreads`] when `num_threads` is zero
    /// and with [`PoolBuildError::Spawn`] when the OS refuses to start a
    /// worker thread.
    pub fn new(num_threads: usize) -> Result<Pool, PoolBuildError> {
        Pool::builder().num_threads(num_threads).build()
    }

    /// Returns a [`PoolBuilder`] for configuring a pool before starting it.
    pub fn builder() -> PoolBuilder {
        PoolBuilder::new()
    }

    /// Returns the number of worker threads in this pool.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Snapshot of the pool's scheduler telemetry: per-worker
    /// steal/sleep/wake/jobs-executed counters and the join-latency
    /// histogram.
    ///
    /// Collection must be enabled at build time via
    /// [`PoolBuilder::metrics`]; on a default (disabled) pool this returns
    /// all-zero counters with [`PoolMetrics::enabled`] set to `false`.
    /// Counters are exact once the pool is quiescent (no `install` in
    /// flight).
    pub fn metrics(&self) -> PoolMetrics {
        self.registry.metrics_snapshot()
    }

    /// Runs `op` on one of the pool's worker threads and returns its result,
    /// blocking the calling thread until it completes.
    ///
    /// Any [`join`](crate::join) calls made (transitively) by `op` execute on
    /// this pool.  `op` may borrow from the caller's stack: `install` does not
    /// return before `op` has finished, so the borrow cannot outlive its
    /// referent.
    ///
    /// # Panics
    ///
    /// If `op` panics, the panic is captured on the worker and re-thrown on
    /// the calling thread.  The pool itself survives and stays usable.
    pub fn install<F, R>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        // Already on one of our own workers?  Run inline: blocking this
        // worker on a latch while the job sits in the injector would
        // deadlock a one-worker pool (and waste a worker in any pool).
        let worker = WorkerThread::current();
        if !worker.is_null() {
            // SAFETY: non-null worker pointers are valid for the thread's
            // lifetime.
            let same_pool =
                unsafe { std::ptr::eq((*worker).registry(), Arc::as_ptr(&self.registry)) };
            if same_pool {
                return op();
            }
        }
        let job = StackJob::new(op, LockLatch::new());
        // SAFETY: the job lives on this stack frame, and we block on its
        // latch below before returning, so the published reference cannot
        // dangle.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.inject(job_ref);
        job.latch().wait();
        // SAFETY: the latch has fired, so the worker that executed the job
        // has recorded an outcome and will never touch the job again.
        unsafe { job.extract_result() }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside any job has already poisoned
            // nothing we can report from Drop; ignore the join error.
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("num_threads", &self.num_threads())
            .finish()
    }
}

/// Configures and starts a [`Pool`].
///
/// ```
/// use forkjoin::Pool;
///
/// let pool = Pool::builder()
///     .num_threads(2)
///     .thread_name_prefix("my-worker")
///     .build()
///     .expect("failed to build pool");
/// assert_eq!(pool.num_threads(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    num_threads: Option<usize>,
    thread_name_prefix: String,
    stack_size: Option<usize>,
    metrics: bool,
}

impl PoolBuilder {
    /// Creates a builder with default settings: one worker per available CPU,
    /// threads named `forkjoin-worker-<i>`, default stack size, metrics
    /// collection disabled.
    pub fn new() -> PoolBuilder {
        PoolBuilder {
            num_threads: None,
            thread_name_prefix: String::from("forkjoin-worker"),
            stack_size: None,
            metrics: false,
        }
    }

    /// Sets the number of worker threads.  Zero is rejected at
    /// [`build`](PoolBuilder::build) time; when unset, the pool uses
    /// [`std::thread::available_parallelism`].
    pub fn num_threads(mut self, num_threads: usize) -> PoolBuilder {
        self.num_threads = Some(num_threads);
        self
    }

    /// Sets the prefix for worker thread names (`<prefix>-<index>`).
    pub fn thread_name_prefix(mut self, prefix: impl Into<String>) -> PoolBuilder {
        self.thread_name_prefix = prefix.into();
        self
    }

    /// Sets the stack size, in bytes, of each worker thread.
    pub fn stack_size(mut self, bytes: usize) -> PoolBuilder {
        self.stack_size = Some(bytes);
        self
    }

    /// Enables scheduler telemetry ([`Pool::metrics`]).  Off by default:
    /// disabled, every instrumentation site is a single predictable branch
    /// (the workspace's bench harness asserts < 2 ns/op) and `join` never
    /// reads the clock.
    pub fn metrics(mut self, enabled: bool) -> PoolBuilder {
        self.metrics = enabled;
        self
    }

    /// Starts the worker threads and returns the running pool.
    ///
    /// On spawn failure the already-started workers are shut down and joined
    /// before the error is returned, so a failed build leaks nothing.
    pub fn build(self) -> Result<Pool, PoolBuildError> {
        let num_threads = match self.num_threads {
            Some(0) => return Err(PoolBuildError::ZeroThreads),
            Some(n) => n,
            None => thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        let registry = Registry::new(num_threads, obs::Obs::new(self.metrics));
        let mut handles = Vec::with_capacity(num_threads);
        for index in 0..num_threads {
            let mut builder =
                thread::Builder::new().name(format!("{}-{}", self.thread_name_prefix, index));
            if let Some(bytes) = self.stack_size {
                builder = builder.stack_size(bytes);
            }
            let worker_registry = Arc::clone(&registry);
            match builder.spawn(move || worker_main(worker_registry, index)) {
                Ok(handle) => handles.push(handle),
                Err(err) => {
                    registry.terminate();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(PoolBuildError::Spawn(err));
                }
            }
        }
        Ok(Pool { registry, handles })
    }
}

impl Default for PoolBuilder {
    fn default() -> PoolBuilder {
        PoolBuilder::new()
    }
}

/// Errors returned when a [`Pool`] cannot be constructed.
#[derive(Debug)]
#[non_exhaustive]
pub enum PoolBuildError {
    /// A pool must have at least one worker thread.
    ZeroThreads,
    /// The OS failed to spawn a worker thread.
    Spawn(io::Error),
}

impl fmt::Display for PoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolBuildError::ZeroThreads => write!(f, "a pool needs at least one worker thread"),
            PoolBuildError::Spawn(err) => write!(f, "failed to spawn worker thread: {err}"),
        }
    }
}

impl std::error::Error for PoolBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolBuildError::ZeroThreads => None,
            PoolBuildError::Spawn(err) => Some(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::WorkerMetricsSnapshot;

    #[test]
    fn zero_threads_is_rejected() {
        assert!(matches!(Pool::new(0), Err(PoolBuildError::ZeroThreads)));
    }

    #[test]
    fn builder_defaults_to_available_parallelism() {
        let pool = Pool::builder().build().unwrap();
        assert!(pool.num_threads() >= 1);
    }

    #[test]
    fn workers_are_named_with_prefix() {
        let pool = Pool::builder()
            .num_threads(1)
            .thread_name_prefix("custom")
            .build()
            .unwrap();
        let name = pool.install(|| thread::current().name().map(String::from));
        assert_eq!(name.as_deref(), Some("custom-0"));
    }

    #[test]
    fn install_returns_borrowed_computation() {
        let data: Vec<u32> = (0..100).collect();
        let pool = Pool::new(2).unwrap();
        let total = pool.install(|| data.iter().sum::<u32>());
        assert_eq!(total, 4950);
    }

    #[test]
    fn sequential_installs_reuse_the_pool() {
        let pool = Pool::new(2).unwrap();
        for i in 0..64u64 {
            assert_eq!(pool.install(move || i * 2), i * 2);
        }
    }

    #[test]
    fn install_from_many_outside_threads() {
        let pool = std::sync::Arc::new(Pool::new(2).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let pool = std::sync::Arc::clone(&pool);
                thread::spawn(move || pool.install(move || i + 100))
            })
            .collect();
        let mut results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![100, 101, 102, 103]);
    }

    #[test]
    fn nested_install_runs_inline_even_on_one_worker() {
        let pool = Pool::new(1).unwrap();
        let v = pool.install(|| pool.install(|| 6 * 7));
        assert_eq!(v, 42);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Building and dropping many pools must not hang or leak threads to
        // the point of spawn failure.
        for _ in 0..16 {
            let pool = Pool::new(3).unwrap();
            assert_eq!(pool.install(|| 1), 1);
            drop(pool);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = Pool::new(0).unwrap_err();
        assert!(err.to_string().contains("at least one"));
    }

    fn spray_joins(depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = crate::join(|| spray_joins(depth - 1), || spray_joins(depth - 1));
        a + b
    }

    #[test]
    fn metrics_disabled_by_default_and_all_zero() {
        let pool = Pool::new(2).unwrap();
        assert_eq!(pool.install(|| spray_joins(6)), 64);
        let m = pool.metrics();
        assert!(!m.enabled);
        assert_eq!(m.workers.len(), 2);
        let t = m.totals();
        assert_eq!(t, WorkerMetricsSnapshot::default());
        assert_eq!(m.join_latency.count(), 0);
    }

    #[test]
    fn metrics_enabled_pool_counts_work() {
        let pool = Pool::builder()
            .num_threads(2)
            .metrics(true)
            .build()
            .unwrap();
        for _ in 0..4 {
            assert_eq!(pool.install(|| spray_joins(7)), 128);
        }
        let m = pool.metrics();
        assert!(m.enabled);
        assert_eq!(m.workers.len(), 2);
        let t = m.totals();
        // Every install enters through the injector, and popping the
        // injector counts as a successful steal.
        assert!(t.steal_success >= 4, "{t:?}");
        assert!(t.jobs_executed >= 4, "{t:?}");
        // Joins on workers record a fork-to-retire latency sample.
        assert!(m.join_latency.count() > 0, "{m:?}");
        assert!(m.join_latency.sum > 0, "{m:?}");
        // A worker asleep at snapshot time has one unmatched sleep; wakes
        // can exceed sleeps via spurious wait returns.  Only a loose bound
        // holds per worker.
        for w in &m.workers {
            assert!(w.wakes + 1 >= w.sleeps, "{w:?}");
        }
    }

    #[test]
    fn metrics_accumulate_across_installs() {
        let pool = Pool::builder()
            .num_threads(1)
            .metrics(true)
            .build()
            .unwrap();
        pool.install(|| spray_joins(4));
        let before = pool.metrics().totals();
        pool.install(|| spray_joins(4));
        let after = pool.metrics().totals();
        assert!(after.jobs_executed > before.jobs_executed);
        assert!(after.steal_success > before.steal_success);
    }
}
