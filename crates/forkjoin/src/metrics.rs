//! Scheduler telemetry: per-worker counters and the join-latency
//! histogram behind [`Pool::metrics`](crate::Pool::metrics).
//!
//! Collection is off by default and enabled per pool via
//! [`PoolBuilder::metrics`](crate::PoolBuilder::metrics); every
//! instrumentation site routes through an [`obs::Obs`] guard, so a pool
//! built without metrics pays one predictable branch per site — nothing
//! that moves the ~20 ns/join figure the scheduler bench reports.

use obs::{Counter, HistSnapshot, Histogram};

/// Live per-worker counters (one set per worker thread, owned by the
/// registry).  Counter semantics are documented on
/// [`WorkerMetricsSnapshot`]'s fields.
#[derive(Debug, Default)]
pub(crate) struct WorkerMetrics {
    pub(crate) steal_success: Counter,
    pub(crate) steal_empty: Counter,
    pub(crate) sleeps: Counter,
    pub(crate) wakes: Counter,
    pub(crate) jobs_executed: Counter,
}

impl WorkerMetrics {
    pub(crate) fn snapshot(&self) -> WorkerMetricsSnapshot {
        WorkerMetricsSnapshot {
            steal_success: self.steal_success.get(),
            steal_empty: self.steal_empty.get(),
            sleeps: self.sleeps.get(),
            wakes: self.wakes.get(),
            jobs_executed: self.jobs_executed.get(),
        }
    }
}

/// One worker's counters at a point in time.
///
/// Counters are monotone and relaxed: exact once the pool is quiescent
/// (no `install` in flight), momentarily stale while workers run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerMetricsSnapshot {
    /// Steal attempts that found a job — from the shared injector or
    /// another worker's deque (the injector is probed first, so on an
    /// otherwise idle pool this mostly counts injector pops).
    pub steal_success: u64,
    /// Steal attempts that came up empty everywhere.
    pub steal_empty: u64,
    /// Times this worker went to sleep on the idle condvar (counted once
    /// per blocking episode, not per spurious re-check).
    pub sleeps: u64,
    /// Condvar wait returns, spurious ones included.  Not ordered against
    /// `sleeps` in either direction: spurious wakeups within one episode
    /// push `wakes` above `sleeps`, while a worker asleep at snapshot time
    /// has recorded its sleep but not yet its wake.
    pub wakes: u64,
    /// Jobs this worker executed from the queues: its own deque via the
    /// main loop, plus jobs run while helping during a blocked `join`.
    /// Joins retired inline by their forking worker (the pop-own-job fast
    /// path) are *not* jobs executed from a queue and are not counted.
    pub jobs_executed: u64,
}

impl WorkerMetricsSnapshot {
    fn add(&self, other: &WorkerMetricsSnapshot) -> WorkerMetricsSnapshot {
        WorkerMetricsSnapshot {
            steal_success: self.steal_success + other.steal_success,
            steal_empty: self.steal_empty + other.steal_empty,
            sleeps: self.sleeps + other.sleeps,
            wakes: self.wakes + other.wakes,
            jobs_executed: self.jobs_executed + other.jobs_executed,
        }
    }
}

/// A snapshot of one pool's scheduler telemetry
/// ([`Pool::metrics`](crate::Pool::metrics)).
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// Whether the pool was built with metrics collection enabled; when
    /// `false`, every number below is zero by construction.
    pub enabled: bool,
    /// Per-worker counters, indexed by worker thread.
    pub workers: Vec<WorkerMetricsSnapshot>,
    /// Latency of `join` calls made *on* pool workers, in nanoseconds
    /// from fork to both branches retired (pool-wide; single histogram
    /// because recording is a lock-free `fetch_add`).
    pub join_latency: HistSnapshot,
}

impl PoolMetrics {
    /// Sums the per-worker counters into one pool-wide view.
    pub fn totals(&self) -> WorkerMetricsSnapshot {
        self.workers
            .iter()
            .fold(WorkerMetricsSnapshot::default(), |acc, w| acc.add(w))
    }
}

/// Shared scheduler telemetry state, embedded in the pool's registry.
#[derive(Debug)]
pub(crate) struct RegistryMetrics {
    pub(crate) obs: obs::Obs,
    pub(crate) workers: Vec<WorkerMetrics>,
    pub(crate) join_latency: Histogram,
}

impl RegistryMetrics {
    pub(crate) fn new(num_threads: usize, obs: obs::Obs) -> RegistryMetrics {
        RegistryMetrics {
            obs,
            workers: (0..num_threads).map(|_| WorkerMetrics::default()).collect(),
            join_latency: Histogram::new(),
        }
    }

    pub(crate) fn snapshot(&self) -> PoolMetrics {
        PoolMetrics {
            enabled: self.obs.is_enabled(),
            workers: self.workers.iter().map(WorkerMetrics::snapshot).collect(),
            join_latency: self.join_latency.snapshot(),
        }
    }
}
