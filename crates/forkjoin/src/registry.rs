//! The shared state behind a [`Pool`](crate::Pool): per-worker deques, the
//! global injector, the worker main loop, and the `join` protocol.
//!
//! # Queue discipline
//!
//! Each worker owns a deque of [`JobRef`]s.  The owner pushes and pops at the
//! **back** (LIFO — the most recently forked job is the one whose data is
//! hottest in cache), while thieves and the owner-helping-while-blocked steal
//! from the **front** (FIFO — the oldest fork is the biggest remaining chunk
//! of work).  A global injector queue receives jobs submitted from outside
//! the pool via [`Pool::install`](crate::Pool::install) and is drained FIFO.
//!
//! The deques here are `Mutex<VecDeque>`-based rather than lock-free
//! Chase-Lev deques: `JobRef` is two words and the critical sections are a
//! handful of instructions, so contention is modest at the scales this
//! reproduction currently targets.  Swapping in a lock-free deque behind the
//! same `push`/`pop`/`steal` surface is a planned follow-up optimisation.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::job::{JobRef, JobResult, PanicPayload, StackJob};
use crate::latch::SpinLatch;

/// A double-ended job queue: owner end at the back, thief end at the front.
#[derive(Default)]
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<JobRef>>,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue::default()
    }

    fn push(&self, job: JobRef) {
        self.jobs.lock().unwrap().push_back(job);
    }

    fn pop(&self) -> Option<JobRef> {
        self.jobs.lock().unwrap().pop_back()
    }

    fn steal(&self) -> Option<JobRef> {
        self.jobs.lock().unwrap().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.jobs.lock().unwrap().is_empty()
    }
}

/// State shared by all workers of one pool.
pub(crate) struct Registry {
    /// FIFO queue for jobs injected from outside the pool.
    injector: JobQueue,
    /// One deque per worker, indexed by worker index.
    queues: Vec<JobQueue>,
    /// Guards the idle-worker condition variable.
    sleep_mutex: Mutex<()>,
    /// Signalled whenever new work arrives or the pool shuts down.
    work_available: Condvar,
    /// Number of workers currently blocked on `work_available`.
    sleepers: AtomicUsize,
    /// Set once by `terminate`; workers exit their main loop when they see it
    /// and find no remaining work.
    terminating: AtomicBool,
}

impl Registry {
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        Arc::new(Registry {
            injector: JobQueue::new(),
            queues: (0..num_threads).map(|_| JobQueue::new()).collect(),
            sleep_mutex: Mutex::new(()),
            work_available: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminating: AtomicBool::new(false),
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// Submits a job from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify_work();
    }

    /// Asks all workers to exit once they run out of work.
    pub(crate) fn terminate(&self) {
        self.terminating.store(true, Ordering::Release);
        let _guard = self.sleep_mutex.lock().unwrap();
        self.work_available.notify_all();
    }

    /// Wakes sleeping workers because new work was published.
    ///
    /// The sleeper count is checked first so that the common case (all
    /// workers busy) does not touch the mutex at all.  Skipping the notify on
    /// `sleepers == 0` is safe because a would-be sleeper registers itself
    /// *before* its final work check (see [`Registry::sleep_until_work`]): if
    /// this load misses the registration, the sleeper's check — which locks
    /// the queue mutex our push just released — must see the pushed job.
    fn notify_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock().unwrap();
            self.work_available.notify_all();
        }
    }

    /// Finds a job for worker `thief`: the injector first (external requests
    /// get priority so `install` callers are never starved), then the other
    /// workers' deques in round-robin order starting after the thief.
    fn steal_work(&self, thief: usize) -> Option<JobRef> {
        if let Some(job) = self.injector.steal() {
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(job) = self.queues[victim].steal() {
                return Some(job);
            }
        }
        None
    }

    /// Blocks the calling worker until work may be available (or the pool is
    /// shutting down).  No polling: idle workers cost nothing.
    ///
    /// Lost-wakeup protocol: the worker registers itself as a sleeper
    /// *before* re-checking the queues, and only then waits.  A producer
    /// either observes the registration (and takes the mutex to notify) or
    /// published its job before the registration — in which case the re-check
    /// below, which acquires the queue mutex the producer's push released,
    /// must observe the job and skip the wait.  Spurious wakeups that find
    /// the queues already drained by faster workers simply loop back to
    /// waiting.
    fn sleep_until_work(&self) {
        let mut guard = self.sleep_mutex.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while !self.has_visible_work() && !self.terminating.load(Ordering::Acquire) {
            guard = self.work_available.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Returns `true` when any queue currently holds a job.  Only meaningful
    /// as a sleep gate: by the time the caller acts, another worker may have
    /// taken the job (it then loops back to sleep).
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.queues.iter().any(|q| !q.is_empty())
    }
}

/// Per-worker-thread state.  Lives on the worker's stack for the lifetime of
/// the thread; other code reaches it through the thread-local pointer.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    static WORKER_THREAD: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

impl WorkerThread {
    /// Returns the current thread's `WorkerThread`, or null when the current
    /// thread does not belong to any pool.
    pub(crate) fn current() -> *const WorkerThread {
        WORKER_THREAD.with(|cell| cell.get())
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    fn queue(&self) -> &JobQueue {
        &self.registry.queues[self.index]
    }
}

/// The body of each worker thread.
pub(crate) fn worker_main(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread { registry, index };
    WORKER_THREAD.with(|cell| cell.set(&worker));

    loop {
        let job = worker
            .queue()
            .pop()
            .or_else(|| worker.registry.steal_work(worker.index));
        match job {
            // SAFETY: every published JobRef stays valid until executed (the
            // join/install latch protocol), and is queued exactly once.
            Some(job) => unsafe { job.execute() },
            None => {
                if worker.registry.terminating.load(Ordering::Acquire) {
                    break;
                }
                worker.registry.sleep_until_work();
            }
        }
    }

    WORKER_THREAD.with(|cell| cell.set(ptr::null()));
}

/// The outcome of one branch of a `join`, kept inert (no unwinding) until
/// both branches have settled.
enum BranchResult<R> {
    Ok(R),
    Panic(PanicPayload),
}

/// The worker-thread implementation of [`join`](crate::join).
///
/// Pushes `b` onto the local deque (making it stealable), runs `a` inline,
/// then either pops `b` back and runs it inline, or — if a thief took it —
/// helps execute other jobs until the thief sets `b`'s latch.
///
/// Panic protocol: neither branch's panic is allowed to unwind until *both*
/// branches have stopped running, because `b`'s job lives on this stack
/// frame.  If both branches panic, `a`'s payload wins.
///
/// # Safety
///
/// `worker` must be the current thread's `WorkerThread`.
pub(crate) unsafe fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, SpinLatch::new());
    let job_b_ref = job_b.as_job_ref();
    worker.queue().push(job_b_ref);
    worker.registry.notify_work();

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));
    let result_b = wait_for_job(worker, &job_b, job_b_ref);

    match (result_a, result_b) {
        (Ok(ra), BranchResult::Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), BranchResult::Panic(payload)) => panic::resume_unwind(payload),
    }
}

/// Retires the forked branch `job`: runs it inline if nobody stole it,
/// otherwise executes other work until the thief reports completion.
unsafe fn wait_for_job<F, R>(
    worker: &WorkerThread,
    job: &StackJob<SpinLatch, F, R>,
    job_ref: JobRef,
) -> BranchResult<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    loop {
        if job.latch().probe() {
            return match job.take_result() {
                JobResult::Ok(value) => BranchResult::Ok(value),
                JobResult::Panic(payload) => BranchResult::Panic(payload),
                JobResult::None => unreachable!("latch set but no result recorded"),
            };
        }
        match worker.queue().pop() {
            Some(popped) if popped == job_ref => {
                // Fast path: nobody stole it, run it on our own stack.  The
                // panic is contained so the caller can sequence unwinding.
                return match panic::catch_unwind(AssertUnwindSafe(|| job.run_inline())) {
                    Ok(value) => BranchResult::Ok(value),
                    Err(payload) => BranchResult::Panic(payload),
                };
            }
            // A job forked more recently than ours (LIFO order): execute it;
            // `JobRef::execute` contains panics in the job's result slot.
            Some(other) => other.execute(),
            None => {
                // Our job was stolen.  Help with other work rather than
                // spinning; if the whole pool is quiet just yield until the
                // thief finishes.
                match worker.registry.steal_work(worker.index) {
                    Some(stolen) => stolen.execute(),
                    None => thread::yield_now(),
                }
            }
        }
    }
}
