//! The shared state behind a [`Pool`](crate::Pool): per-worker deques, the
//! global injector, the worker main loop, and the `join` protocol.
//!
//! # Queue discipline
//!
//! Each worker owns a lock-free Chase-Lev deque ([`crate::deque`]) of
//! [`JobRef`]s.  The owner pushes and pops at the **bottom** (LIFO — the
//! most recently forked job is the one whose data is hottest in cache),
//! while thieves and the owner-helping-while-blocked steal from the **top**
//! (FIFO — the oldest fork is the biggest remaining chunk of work).  The
//! hot path of `join` — owner `push` in the fork, owner `pop` in the
//! retire — therefore never takes a lock; thieves claim jobs with a single
//! CAS on the deque's `top` index.
//!
//! A global injector queue receives jobs submitted from outside the pool
//! via [`Pool::install`](crate::Pool::install) and is drained FIFO.  The
//! injector stays a `Mutex<VecDeque>` deliberately: *pushes* happen once
//! per `install` (per whole batch of work), never per `join`, and keeping
//! it mutexed preserves strict FIFO fairness for external callers.  Note
//! that workers with nothing to pop do probe it — `steal_work` checks the
//! injector first on every steal attempt, so an idle-heavy pool takes that
//! lock per attempt; what the Chase-Lev swap removes is the lock on the
//! *owner* path, which every single `join` pays.
//!
//! # Sleep/wake protocol
//!
//! Idle workers block on a condvar; they must never sleep through a push
//! ("lost wakeup").  The handshake is a Dekker-style store/load exchange:
//!
//! * A **producer** publishes its job (lock-free deque push or injector
//!   push), executes a `SeqCst` fence, then reads the sleeper count — and
//!   only takes the sleep mutex to notify when it is non-zero.
//! * A **would-be sleeper** increments the sleeper count (a `SeqCst` RMW),
//!   executes a `SeqCst` fence, then re-checks every queue before waiting.
//!
//! With both fences in place, at least one side must see the other: either
//! the producer observes the registered sleeper and notifies (the notify
//! itself is ordered by the sleep mutex, which the sleeper holds except
//! while waiting), or the sleeper's re-check observes the published job and
//! skips the wait.  The previous mutexed-deque implementation got the same
//! guarantee for free from the queue mutex; what a lock-free push pays
//! instead is `notify_work`'s `SeqCst` fence plus one relaxed load per
//! `join` — a full barrier, but uncontended and lock-free, versus the two
//! mutex round-trips (push + pop) each `join` paid before.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::deque::{Deque, Steal};
use crate::job::{JobRef, JobResult, PanicPayload, StackJob};
use crate::latch::SpinLatch;
use crate::metrics::{PoolMetrics, RegistryMetrics};

/// The FIFO queue for jobs injected from outside the pool.  Mutexed on
/// purpose — see the module docs.
#[derive(Default)]
struct Injector {
    jobs: Mutex<VecDeque<JobRef>>,
}

impl Injector {
    fn push(&self, job: JobRef) {
        self.jobs.lock().unwrap().push_back(job);
    }

    fn pop(&self) -> Option<JobRef> {
        self.jobs.lock().unwrap().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.jobs.lock().unwrap().is_empty()
    }
}

/// State shared by all workers of one pool.
pub(crate) struct Registry {
    /// FIFO queue for jobs injected from outside the pool.
    injector: Injector,
    /// One Chase-Lev deque per worker, indexed by worker index.  Owner
    /// operations are reserved to that worker; anyone may steal.
    queues: Vec<Deque>,
    /// Guards the idle-worker condition variable.
    sleep_mutex: Mutex<()>,
    /// Signalled whenever new work arrives or the pool shuts down.
    work_available: Condvar,
    /// Number of workers currently blocked on `work_available`.
    sleepers: AtomicUsize,
    /// Set once by `terminate`; workers exit their main loop when they see it
    /// and find no remaining work.
    terminating: AtomicBool,
    /// Scheduler telemetry (per-worker counters + join-latency histogram),
    /// live only when the pool was built with metrics enabled — every
    /// recording site checks `metrics.obs` first.
    metrics: RegistryMetrics,
}

impl Registry {
    pub(crate) fn new(num_threads: usize, obs: obs::Obs) -> Arc<Registry> {
        Arc::new(Registry {
            injector: Injector::default(),
            queues: (0..num_threads).map(|_| Deque::new()).collect(),
            sleep_mutex: Mutex::new(()),
            work_available: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminating: AtomicBool::new(false),
            metrics: RegistryMetrics::new(num_threads, obs),
        })
    }

    pub(crate) fn metrics_snapshot(&self) -> PoolMetrics {
        self.metrics.snapshot()
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// Submits a job from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify_work();
    }

    /// Asks all workers to exit once they run out of work.
    pub(crate) fn terminate(&self) {
        self.terminating.store(true, Ordering::Release);
        let _guard = self.sleep_mutex.lock().unwrap();
        self.work_available.notify_all();
    }

    /// Wakes sleeping workers because new work was published.
    ///
    /// Producer half of the Dekker handshake described in the module docs:
    /// the `SeqCst` fence orders our job-publishing store before the sleeper
    /// load, pairing with the sleeper's register-then-fence-then-recheck
    /// sequence.  The common case (no sleepers) is one fence and one load —
    /// no mutex.
    pub(crate) fn notify_work(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep_mutex.lock().unwrap();
            self.work_available.notify_all();
        }
    }

    /// Finds a job for worker `thief`: the injector first (external requests
    /// get priority so `install` callers are never starved), then the other
    /// workers' deques in round-robin order starting after the thief.
    ///
    /// A `Retry` from a victim means some other thread won a claim race
    /// (progress happened system-wide), so spinning on that victim until it
    /// settles into `Success` or `Empty` cannot livelock.
    fn steal_work(&self, thief: usize) -> Option<JobRef> {
        let obs = self.metrics.obs;
        if let Some(job) = self.injector.pop() {
            obs.hit(&self.metrics.workers[thief].steal_success);
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            loop {
                match self.queues[victim].steal() {
                    Steal::Success(job) => {
                        obs.hit(&self.metrics.workers[thief].steal_success);
                        return Some(job);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        obs.hit(&self.metrics.workers[thief].steal_empty);
        None
    }

    /// Blocks the calling worker until work may be available (or the pool is
    /// shutting down).  No polling: idle workers cost nothing.
    ///
    /// Sleeper half of the Dekker handshake (module docs): register, fence,
    /// re-check, and only then wait.  A producer either observes the
    /// registration (and takes the mutex to notify — which cannot interleave
    /// with the re-check, since we hold the mutex except while waiting) or
    /// published its job before our fence, in which case the re-check sees
    /// it and we skip the wait.  Spurious wakeups that find the queues
    /// already drained by faster workers simply loop back to waiting.
    fn sleep_until_work(&self, worker: usize) {
        let obs = self.metrics.obs;
        let mut guard = self.sleep_mutex.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let mut slept = false;
        while !self.has_visible_work() && !self.terminating.load(Ordering::Acquire) {
            if !slept {
                // One sleep per blocking episode; each wait return below
                // counts as a wake (spurious included).
                slept = true;
                obs.hit(&self.metrics.workers[worker].sleeps);
            }
            guard = self.work_available.wait(guard).unwrap();
            obs.hit(&self.metrics.workers[worker].wakes);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Returns `true` when any queue currently holds a job.  Only meaningful
    /// as a sleep gate: by the time the caller acts, another worker may have
    /// taken the job (it then loops back to sleep).
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.queues.iter().any(|q| !q.is_empty())
    }
}

/// Per-worker-thread state.  Lives on the worker's stack for the lifetime of
/// the thread; other code reaches it through the thread-local pointer.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    static WORKER_THREAD: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

impl WorkerThread {
    /// Returns the current thread's `WorkerThread`, or null when the current
    /// thread does not belong to any pool.
    pub(crate) fn current() -> *const WorkerThread {
        WORKER_THREAD.with(|cell| cell.get())
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Pushes onto this worker's own deque (the fork half of `join`).
    ///
    /// # Safety
    ///
    /// `self` must be the current thread's `WorkerThread`: deque owner
    /// operations are single-threaded by contract.
    unsafe fn push(&self, job: JobRef) {
        self.registry.queues[self.index].push(job);
    }

    /// Pops from this worker's own deque (newest fork first).
    ///
    /// # Safety
    ///
    /// `self` must be the current thread's `WorkerThread`.
    unsafe fn pop(&self) -> Option<JobRef> {
        self.registry.queues[self.index].pop()
    }
}

/// The body of each worker thread.
pub(crate) fn worker_main(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread { registry, index };
    WORKER_THREAD.with(|cell| cell.set(&worker));

    loop {
        // SAFETY: this thread is the owner of `queues[index]`.
        let job = unsafe { worker.pop() }.or_else(|| worker.registry.steal_work(worker.index));
        match job {
            Some(job) => {
                // Count before executing: `execute` fires the job's latch,
                // releasing a waiter who may snapshot metrics immediately —
                // counting first keeps counters exact at that point.
                let m = &worker.registry.metrics;
                m.obs.hit(&m.workers[worker.index].jobs_executed);
                // SAFETY: every published JobRef stays valid until executed
                // (the join/install latch protocol), and is dequeued exactly
                // once.
                unsafe { job.execute() };
            }
            None => {
                if worker.registry.terminating.load(Ordering::Acquire) {
                    break;
                }
                worker.registry.sleep_until_work(worker.index);
            }
        }
    }

    WORKER_THREAD.with(|cell| cell.set(ptr::null()));
}

/// The outcome of one branch of a `join`, kept inert (no unwinding) until
/// both branches have settled.
enum BranchResult<R> {
    Ok(R),
    Panic(PanicPayload),
}

/// The worker-thread implementation of [`join`](crate::join).
///
/// Pushes `b` onto the local deque (making it stealable), runs `a` inline,
/// then either pops `b` back and runs it inline, or — if a thief took it —
/// helps execute other jobs until the thief sets `b`'s latch.  Both the push
/// and the pop are lock-free deque owner operations.
///
/// Panic protocol: neither branch's panic is allowed to unwind until *both*
/// branches have stopped running, because `b`'s job lives on this stack
/// frame.  If both branches panic, `a`'s payload wins.
///
/// # Safety
///
/// `worker` must be the current thread's `WorkerThread`.
pub(crate) unsafe fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Clock reads only happen on metrics-enabled pools (`now()` returns
    // `None` otherwise), so the default configuration never pays for an
    // `Instant::now()` pair per join.
    let start = worker.registry.metrics.obs.now();
    let job_b = StackJob::new(b, SpinLatch::new());
    let job_b_ref = job_b.as_job_ref();
    worker.push(job_b_ref);
    worker.registry.notify_work();

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));
    let result_b = wait_for_job(worker, &job_b, job_b_ref);
    let metrics = &worker.registry.metrics;
    metrics.obs.record_since(&metrics.join_latency, start);

    match (result_a, result_b) {
        (Ok(ra), BranchResult::Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), BranchResult::Panic(payload)) => panic::resume_unwind(payload),
    }
}

/// Retires the forked branch `job`: runs it inline if nobody stole it,
/// otherwise executes other work until the thief reports completion.
unsafe fn wait_for_job<F, R>(
    worker: &WorkerThread,
    job: &StackJob<SpinLatch, F, R>,
    job_ref: JobRef,
) -> BranchResult<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    loop {
        if job.latch().probe() {
            return match job.take_result() {
                JobResult::Ok(value) => BranchResult::Ok(value),
                JobResult::Panic(payload) => BranchResult::Panic(payload),
                JobResult::None => unreachable!("latch set but no result recorded"),
            };
        }
        match worker.pop() {
            Some(popped) if popped == job_ref => {
                // Fast path: nobody stole it, run it on our own stack.  The
                // panic is contained so the caller can sequence unwinding.
                return match panic::catch_unwind(AssertUnwindSafe(|| job.run_inline())) {
                    Ok(value) => BranchResult::Ok(value),
                    Err(payload) => BranchResult::Panic(payload),
                };
            }
            // A job forked more recently than ours (LIFO order): execute it;
            // `JobRef::execute` contains panics in the job's result slot.
            Some(other) => {
                let m = &worker.registry.metrics;
                m.obs.hit(&m.workers[worker.index].jobs_executed);
                other.execute();
            }
            None => {
                // Our job was stolen.  Help with other work rather than
                // spinning; if the whole pool is quiet just yield until the
                // thief finishes.
                match worker.registry.steal_work(worker.index) {
                    Some(stolen) => {
                        let m = &worker.registry.metrics;
                        m.obs.hit(&m.workers[worker.index].jobs_executed);
                        stolen.execute();
                    }
                    None => thread::yield_now(),
                }
            }
        }
    }
}
