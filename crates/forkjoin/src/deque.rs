//! A lock-free Chase-Lev work-stealing deque of [`JobRef`]s.
//!
//! This is the per-worker queue behind [`join`](crate::join): the owning
//! worker pushes and pops at the **bottom** (LIFO — the most recently forked
//! job has the hottest data), while any other thread steals from the **top**
//! (FIFO — the oldest fork is the biggest remaining chunk of work).  The
//! implementation follows Chase & Lev, *Dynamic Circular Work-Stealing
//! Deque* (SPAA '05), with the C11 memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13) — the same lineage as the deque under Rayon's
//! scheduler.
//!
//! # Structure
//!
//! Two monotonically increasing indices bracket the live region of a
//! power-of-two circular buffer:
//!
//! ```text
//!        top (thieves CAS this forward)          bottom (owner only)
//!          v                                        v
//!   ... [ t ] [t+1] [t+2] ... [b-1] [   ] ...
//!          `--------- live jobs ---------'
//! ```
//!
//! * **`push`** (owner): write the slot at `bottom`, then publish with a
//!   `Release` store of `bottom + 1`.  A thief that observes the new
//!   `bottom` via its `Acquire` load therefore also observes the slot write.
//! * **`pop`** (owner): decrement `bottom`, then a `SeqCst` fence, then read
//!   `top`.  The fence makes the decrement visible to thieves *before* the
//!   owner decides the deque is non-empty; without it the owner and a thief
//!   could both take the last job.  When exactly one job remains, owner and
//!   thieves race on a `SeqCst` CAS of `top` — whoever wins owns the job.
//! * **`steal`** (any thread): read `top` (`Acquire`), `SeqCst` fence, read
//!   `bottom` (`Acquire`), and claim the top job with a `SeqCst` CAS of
//!   `top`.  The slot is read *before* the CAS; on CAS failure the value is
//!   discarded.  That read can race with an owner `push` reusing the slot,
//!   but slots are single `AtomicPtr` words (see
//!   [`JobRef::into_raw`](crate::job::JobRef)), so a lost race yields a
//!   stale-but-whole pointer that the failed CAS throws away — never a torn
//!   value, never UB.
//!
//! # Growth and memory reclamation
//!
//! When the buffer fills, the owner allocates one twice as large, copies the
//! live region, and publishes it with a `Release` store.  A thief can still
//! hold the *old* buffer: that is safe because (a) retired buffers are not
//! freed until the deque itself is dropped at pool shutdown — each new
//! buffer keeps its predecessor alive through a `retired` link, so no
//! epoch/hazard-pointer machinery is needed — and (b) a thief can only pass
//! its bounds check with an index whose slot was live in the buffer it
//! loaded (the ordering argument is spelled out on [`Deque::steal`]).
//!
//! The deque never shrinks: the paper's workloads push at most
//! `O(log batch)` outstanding forks per worker, so peak buffer size is tiny.

use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::job::{JobHeader, JobRef};

/// Initial buffer capacity (slots).  Must be a power of two.
const INITIAL_CAPACITY: usize = 64;

/// The outcome of one [`Deque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque appeared empty.
    Empty,
    /// The top job was claimed; the thief now owns it.
    Success(JobRef),
    /// Lost a race with the owner or another thief; the deque may still
    /// hold work.  Losing the race implies *someone else* made progress, so
    /// retrying preserves lock-freedom.
    Retry,
}

/// One circular slot allocation.  Slots are single machine words so that the
/// benign stale read in `steal` is an ordinary atomic load.
struct Buffer {
    slots: Box<[AtomicPtr<JobHeader>]>,
    /// `slots.len() - 1`; capacities are powers of two so indexing is a mask.
    mask: usize,
    /// The buffer this one replaced, kept alive until the deque drops.
    retired: *mut Buffer,
}

impl Buffer {
    fn alloc(capacity: usize, retired: *mut Buffer) -> *mut Buffer {
        debug_assert!(capacity.is_power_of_two());
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || AtomicPtr::new(ptr::null_mut()));
        Box::into_raw(Box::new(Buffer {
            slots: slots.into_boxed_slice(),
            mask: capacity - 1,
            retired,
        }))
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Reads the slot for logical index `i`.  Relaxed suffices: ordering is
    /// provided by the `top`/`bottom` accesses bracketing every read.
    fn read(&self, i: isize) -> JobRef {
        let raw = self.slots[i as usize & self.mask].load(Ordering::Relaxed);
        // SAFETY: callers only read indices inside the live region (or
        // discard the value when their claim CAS fails).
        unsafe { JobRef::from_raw(raw) }
    }

    /// Writes the slot for logical index `i`.
    fn write(&self, i: isize, job: JobRef) {
        self.slots[i as usize & self.mask].store(job.into_raw(), Ordering::Relaxed);
    }
}

/// A lock-free work-stealing deque.
///
/// The **owner API** ([`push`](Deque::push), [`pop`](Deque::pop)) is
/// `unsafe`: those methods are single-threaded by contract and must only be
/// called from the one thread that owns this deque.  The **thief API**
/// ([`steal`](Deque::steal), [`is_empty`](Deque::is_empty)) is safe from any
/// thread.
pub(crate) struct Deque {
    /// Next slot the owner will push into.  Written by the owner only.
    bottom: AtomicIsize,
    /// Oldest live slot.  Advanced by whoever claims that job (thief CAS, or
    /// owner CAS when taking the last job).
    top: AtomicIsize,
    /// Current slot allocation.  Replaced (never mutated in place) on growth.
    buffer: AtomicPtr<Buffer>,
}

impl Deque {
    pub(crate) fn new() -> Deque {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(INITIAL_CAPACITY, ptr::null_mut())),
        }
    }

    /// Pushes a job at the bottom.  Owner side; never blocks, never locks.
    ///
    /// # Safety
    ///
    /// Must only be called from the thread that owns this deque.
    pub(crate) unsafe fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buffer = self.buffer.load(Ordering::Relaxed);
        if b - t >= (*buffer).capacity() as isize {
            buffer = self.grow(buffer, t, b);
        }
        (*buffer).write(b, job);
        // Publish the slot before the index: a thief that acquires the new
        // `bottom` must also see the job it brackets.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops the most recently pushed job (LIFO).  Owner side; lock-free.
    ///
    /// # Safety
    ///
    /// Must only be called from the thread that owns this deque.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The decrement must be visible to thieves before we sample `top`;
        // otherwise a thief could claim slot `b` while we also take it.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // At least two jobs were present: the bottom one is ours without
            // any race, since thieves only contend for `top`.
            return Some((*buffer).read(b));
        }
        if t == b {
            // Exactly one job left: race the thieves for it by advancing
            // `top` past it ourselves.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // Either way the deque is now empty; restore the canonical
            // empty shape `bottom == top`.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then(|| (*buffer).read(b));
        }
        // Deque was empty; undo the speculative decrement.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Attempts to steal the oldest job (FIFO).  Safe from any thread.
    ///
    /// Ordering argument for the buffer read: the slot at index `t` is read
    /// from a buffer loaded *after* `bottom`.  If our `bottom` load saw
    /// pushes that went into a newer buffer (the only way `t` could index
    /// past the loaded buffer's live region), then the owner's `Release`
    /// store of that `bottom` happened after its `Release` store of the new
    /// buffer pointer — so our `Acquire` load here cannot return the older
    /// buffer.  If instead `t < b` entirely within one buffer generation,
    /// the slot was written before `bottom` was published and is visible via
    /// the same `Acquire`.  A slot being *reused* by a concurrent `push`
    /// implies `top` already moved past `t`, which makes our CAS fail and
    /// the (whole-word, never torn) stale value is discarded.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` read before the `bottom` read: with the mirror
        // fence in `pop`, either we see the owner's decrement (and report
        // Empty) or the owner's CAS sees our claim.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buffer = self.buffer.load(Ordering::Acquire);
        // SAFETY: `t < b` with the ordering argument above guarantees the
        // slot is (or was) live in `buffer`; if we lose the claim race the
        // value is discarded unexecuted.
        let job = unsafe { (*buffer).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(job)
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque currently appears empty.  Only meaningful as a
    /// sleep gate: the answer can be stale by the time the caller acts.
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        b <= t
    }

    /// Current buffer capacity, for tests observing growth.
    #[cfg(test)]
    fn capacity(&self) -> usize {
        unsafe { (*self.buffer.load(Ordering::Acquire)).capacity() }
    }

    /// Replaces the buffer with one twice as large.  Owner side (called from
    /// `push` only).  The old buffer is linked, not freed: thieves may still
    /// be reading it, and it stays valid until the deque drops.
    unsafe fn grow(&self, old: *mut Buffer, t: isize, b: isize) -> *mut Buffer {
        let new = Buffer::alloc((*old).capacity() * 2, old);
        for i in t..b {
            (*new).write(i, (*old).read(i));
        }
        // Release-publish: a thief that acquires this pointer sees every
        // copied slot.
        self.buffer.store(new, Ordering::Release);
        new
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): walk the retired chain from the
        // current buffer and free every generation.
        let mut buffer = *self.buffer.get_mut();
        while !buffer.is_null() {
            // SAFETY: each pointer in the chain came from `Box::into_raw`
            // and is freed exactly once (the chain is a singly linked list).
            let boxed = unsafe { Box::from_raw(buffer) };
            buffer = boxed.retired;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHeader;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    /// A heap-tagged test job: executing it increments its own cell in a
    /// shared tally, so exactly-once execution is observable per job.
    #[repr(C)]
    struct TagJob {
        header: JobHeader,
        tally: Arc<Vec<AtomicUsize>>,
        tag: usize,
    }

    impl TagJob {
        fn new(tally: Arc<Vec<AtomicUsize>>, tag: usize) -> TagJob {
            TagJob {
                header: JobHeader::new(Self::execute_erased),
                tally,
                tag,
            }
        }

        fn job_ref(&self) -> JobRef {
            // Whole-object pointer for provenance; see `StackJob::as_job_ref`.
            unsafe { JobRef::new((self as *const TagJob).cast()) }
        }

        unsafe fn execute_erased(header: *const JobHeader) {
            let this = &*(header as *const TagJob);
            this.tally[this.tag].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Builds `count` jobs plus their tally.  The returned `Vec<TagJob>`
    /// must outlive (and not be resized under) every queued `JobRef`: job
    /// references point into the vector's allocation.
    fn tagged_jobs(count: usize) -> (Arc<Vec<AtomicUsize>>, Vec<TagJob>) {
        let tally: Arc<Vec<AtomicUsize>> =
            Arc::new((0..count).map(|_| AtomicUsize::new(0)).collect());
        let jobs = (0..count)
            .map(|tag| TagJob::new(Arc::clone(&tally), tag))
            .collect();
        (tally, jobs)
    }

    #[test]
    fn owner_pop_is_lifo() {
        let (_tally, jobs) = tagged_jobs(3);
        let deque = Deque::new();
        let refs: Vec<JobRef> = jobs.iter().map(|j| j.job_ref()).collect();
        unsafe {
            for &r in &refs {
                deque.push(r);
            }
            assert_eq!(deque.pop(), Some(refs[2]));
            assert_eq!(deque.pop(), Some(refs[1]));
            assert_eq!(deque.pop(), Some(refs[0]));
            assert_eq!(deque.pop(), None);
            // Empty pops stay empty and do not corrupt the indices.
            assert_eq!(deque.pop(), None);
        }
        assert!(deque.is_empty());
    }

    #[test]
    fn steal_is_fifo_and_interleaves_with_owner() {
        let (_tally, jobs) = tagged_jobs(4);
        let deque = Deque::new();
        let refs: Vec<JobRef> = jobs.iter().map(|j| j.job_ref()).collect();
        unsafe {
            for &r in &refs {
                deque.push(r);
            }
        }
        // Thief takes the oldest; owner takes the newest.
        assert_eq!(deque.steal(), Steal::Success(refs[0]));
        assert_eq!(unsafe { deque.pop() }, Some(refs[3]));
        assert_eq!(deque.steal(), Steal::Success(refs[1]));
        assert_eq!(unsafe { deque.pop() }, Some(refs[2]));
        assert_eq!(deque.steal(), Steal::Empty);
        assert_eq!(unsafe { deque.pop() }, None);
    }

    #[test]
    fn grows_past_initial_capacity_and_keeps_every_job() {
        let count = INITIAL_CAPACITY * 8 + 7;
        let (tally, jobs) = tagged_jobs(count);
        let deque = Deque::new();
        assert_eq!(deque.capacity(), INITIAL_CAPACITY);
        unsafe {
            for job in &jobs {
                deque.push(job.job_ref());
            }
        }
        assert!(deque.capacity() >= count);
        // Drain from both ends; every tag must execute exactly once.
        let mut from_top = true;
        loop {
            let job = if from_top {
                match deque.steal() {
                    Steal::Success(job) => Some(job),
                    Steal::Empty => None,
                    Steal::Retry => continue,
                }
            } else {
                unsafe { deque.pop() }
            };
            match job {
                Some(job) => unsafe { job.execute() },
                None => break,
            }
            from_top = !from_top;
        }
        assert!(tally.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    /// The headline concurrent test: N thieves and the owner drain M tagged
    /// jobs; every job must execute exactly once — no loss, no duplication.
    /// The owner keeps pushing while stealers run, so growth happens under
    /// active stealing.
    #[test]
    fn concurrent_drain_executes_every_job_exactly_once() {
        const STEALERS: usize = 4;
        const JOBS: usize = 20_000;
        for round in 0..4 {
            let (tally, jobs) = tagged_jobs(JOBS);
            let deque = Arc::new(Deque::new());
            let done = Arc::new(AtomicUsize::new(0));

            thread::scope(|scope| {
                for _ in 0..STEALERS {
                    let deque = Arc::clone(&deque);
                    let done = Arc::clone(&done);
                    scope.spawn(move || loop {
                        match deque.steal() {
                            Steal::Success(job) => unsafe { job.execute() },
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) == 1 {
                                    return;
                                }
                                thread::yield_now();
                            }
                        }
                    });
                }
                // Owner: push everything (forcing several grows mid-steal),
                // popping a bit now and then like a real worker, then drain.
                for (i, job) in jobs.iter().enumerate() {
                    unsafe { deque.push(job.job_ref()) };
                    if i % 7 == round {
                        if let Some(job) = unsafe { deque.pop() } {
                            unsafe { job.execute() };
                        }
                    }
                }
                while let Some(job) = unsafe { deque.pop() } {
                    unsafe { job.execute() };
                }
                done.store(1, Ordering::Release);
            });

            for (tag, count) in tally.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    1,
                    "round {round}: tag {tag} executed {} times",
                    count.load(Ordering::Relaxed)
                );
            }
        }
    }

    /// Stealing from a deque the owner keeps (push, pop) cycling on: the
    /// single-job CAS race in `pop` must never double-hand-out a job.
    #[test]
    fn last_job_race_is_exactly_once() {
        const ROUNDS: usize = 30_000;
        let (tally, jobs) = tagged_jobs(ROUNDS);
        let deque = Arc::new(Deque::new());
        let done = Arc::new(AtomicUsize::new(0));

        thread::scope(|scope| {
            let thief = {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                scope.spawn(move || loop {
                    match deque.steal() {
                        Steal::Success(job) => unsafe { job.execute() },
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                return;
                            }
                        }
                    }
                })
            };
            for job in &jobs {
                unsafe {
                    deque.push(job.job_ref());
                    // Immediately contend for the single job just pushed.
                    if let Some(job) = deque.pop() {
                        job.execute();
                    }
                }
            }
            done.store(1, Ordering::Release);
            thief.join().unwrap();
        });

        assert!(
            tally.iter().all(|c| c.load(Ordering::Relaxed) == 1),
            "some job was lost or executed twice"
        );
    }
}
