//! A minimal work-stealing fork-join thread pool.
//!
//! This crate is the parallel substrate of the parallel-batched
//! interpolation-search-tree reproduction.  The original paper implements its
//! algorithms on top of OpenCilk; this crate provides the same computational
//! model in safe-to-use Rust: binary [`join`] (fork two closures, wait for
//! both), executed by a fixed set of worker threads that steal work from each
//! other.
//!
//! # Design
//!
//! * A [`Pool`] owns `n` worker threads.  Each worker owns a **lock-free
//!   Chase-Lev deque** it pushes and pops LIFO while thieves steal FIFO with
//!   a single CAS — `join`'s hot path never takes a lock (see the `deque`
//!   module for the memory-ordering contract).  A mutexed FIFO injector
//!   queue receives jobs submitted from outside the pool (via
//!   [`Pool::install`]); it is touched once per external submission, not
//!   once per `join`.
//! * [`join(a, b)`](join) called **on a worker thread** pushes `b` onto the
//!   local deque, runs `a` inline, and then either pops `b` back (if nobody
//!   stole it) or helps with other work until the thief finishes `b`.
//! * [`join`] called **outside any pool** simply runs `a` then `b`
//!   sequentially, so library code written against this crate works in unit
//!   tests and single-threaded contexts without ceremony.
//! * Idle workers sleep on a condvar; a fenced Dekker handshake between the
//!   lock-free publish and the sleeper's registration guarantees a push is
//!   never slept through (the `registry` module documents the protocol).
//!
//! # Example
//!
//! ```
//! use forkjoin::{Pool, join};
//!
//! fn sum(v: &[u64]) -> u64 {
//!     if v.len() <= 1024 {
//!         return v.iter().sum();
//!     }
//!     let mid = v.len() / 2;
//!     let (lo, hi) = v.split_at(mid);
//!     let (a, b) = join(|| sum(lo), || sum(hi));
//!     a + b
//! }
//!
//! let data: Vec<u64> = (0..100_000).collect();
//! let pool = Pool::new(4).expect("failed to build pool");
//! let total = pool.install(|| sum(&data));
//! assert_eq!(total, 100_000 * 99_999 / 2);
//! ```

#![warn(missing_docs)]

mod deque;
mod job;
mod latch;
mod metrics;
mod pool;
mod registry;

pub use metrics::{PoolMetrics, WorkerMetricsSnapshot};
pub use pool::{Pool, PoolBuildError, PoolBuilder};

use registry::WorkerThread;

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// When called from a thread belonging to a [`Pool`], `b` is made available
/// for other workers to steal while the current worker runs `a`; when called
/// from any other thread the two closures run sequentially (first `a`, then
/// `b`).  Either way both closures have completed when `join` returns.
///
/// # Panics
///
/// If either closure panics, the panic is propagated to the caller once both
/// closures have stopped running.  If both panic, the panic of `a` is
/// propagated.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WorkerThread::current();
    if worker.is_null() {
        // Not on a pool thread: plain sequential execution.
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    // SAFETY: `worker` is non-null and points at the thread-local
    // `WorkerThread` of the current thread, which outlives this call.
    unsafe { registry::join_on_worker(&*worker, a, b) }
}

/// Returns the number of worker threads of the pool the current thread
/// belongs to, or `1` when the current thread is not a pool worker.
///
/// Parallel algorithms use this to pick granularity cutoffs.
pub fn current_num_threads() -> usize {
    let worker = WorkerThread::current();
    if worker.is_null() {
        1
    } else {
        // SAFETY: non-null worker pointers are valid for the thread lifetime.
        unsafe { (*worker).registry().num_threads() }
    }
}

/// Returns `true` when the calling thread is a worker thread of some [`Pool`].
pub fn in_pool() -> bool {
    !WorkerThread::current().is_null()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 1 + 1, || "hello".len());
        assert_eq!(a, 2);
        assert_eq!(b, 5);
        assert!(!in_pool());
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn join_inside_pool() {
        let pool = Pool::new(2).unwrap();
        let (a, b) = pool.install(|| join(|| 21 * 2, || vec![1, 2, 3]));
        assert_eq!(a, 42);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn install_reports_pool_membership() {
        let pool = Pool::new(3).unwrap();
        let (inside, threads) = pool.install(|| (in_pool(), current_num_threads()));
        assert!(inside);
        assert_eq!(threads, 3);
    }

    #[test]
    fn recursive_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = Pool::new(4).unwrap();
        assert_eq!(pool.install(|| fib(20)), 6765);
    }

    #[test]
    fn parallel_side_effects_all_run() {
        fn touch(v: &[AtomicUsize]) {
            if v.len() <= 8 {
                for x in v {
                    x.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            let mid = v.len() / 2;
            let (lo, hi) = v.split_at(mid);
            join(|| touch(lo), || touch(hi));
        }
        let data: Vec<AtomicUsize> = (0..4096).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(4).unwrap();
        pool.install(|| touch(&data));
        assert!(data.iter().all(|x| x.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_in_left_branch_propagates() {
        let pool = Pool::new(2).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| panic!("left boom"), || 1);
            })
        }));
        assert!(result.is_err());
        // Pool must still be usable after a propagated panic.
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn panic_in_right_branch_propagates() {
        let pool = Pool::new(2).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| 1, || panic!("right boom"));
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.install(|| 7), 7);
    }
}
