//! Type-erased jobs.
//!
//! A job is a closure plus a latch plus a slot for its result.  Jobs that
//! originate from [`join`](crate::join) live on the stack of the joining
//! worker ([`StackJob`]); the pointer handed to other workers ([`JobRef`]) is
//! therefore only valid until the owning `join` call returns, which is
//! guaranteed because `join` does not return before the job's latch is set.
//!
//! # Single-word job references
//!
//! A [`JobRef`] is exactly **one pointer**: it points at the [`JobHeader`]
//! embedded as the *first* field of every concrete job type (`#[repr(C)]`
//! guarantees the header and the job share an address).  The header stores
//! the type-erased execute function, so no fat pointer or second word is
//! needed.  This is what lets the Chase-Lev deque in
//! [`deque`](crate::deque) keep each slot a single `AtomicPtr`: slot reads
//! and writes are individual atomic operations, so the benign race in
//! `steal` (reading a slot that a concurrent `push` may be about to reuse)
//! reads a stale *whole* pointer rather than a torn half-and-half value.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// The payload captured when a job panics, re-thrown at the join point.
pub(crate) type PanicPayload = Box<dyn Any + Send>;

/// The type-erasure header embedded at offset 0 of every concrete job.
///
/// Given a `*const JobHeader`, the stored function pointer knows how to cast
/// it back to the concrete job type and run it.
pub(crate) struct JobHeader {
    execute_fn: unsafe fn(*const JobHeader),
}

impl JobHeader {
    /// Builds a header for a job type that embeds it at offset 0.
    pub(crate) fn new(execute_fn: unsafe fn(*const JobHeader)) -> JobHeader {
        JobHeader { execute_fn }
    }
}

/// A type-erased pointer to a job that can be executed exactly once.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobRef {
    pointer: *const JobHeader,
}

// Equality on the job address alone: two live jobs never share an address.
impl PartialEq for JobRef {
    fn eq(&self, other: &JobRef) -> bool {
        self.pointer == other.pointer
    }
}

impl Eq for JobRef {}

// SAFETY: a `JobRef` is only ever created from jobs whose closures are
// `Send`; the pointer itself is just an opaque handle shipped between worker
// threads.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

impl JobRef {
    /// Creates a job reference from a job's embedded header.
    ///
    /// # Safety
    ///
    /// `header` must be the [`JobHeader`] at offset 0 of a live job, and the
    /// job must stay valid until `execute` has completed (enforced by the
    /// latch protocol in `join`).
    pub(crate) unsafe fn new(header: *const JobHeader) -> JobRef {
        JobRef { pointer: header }
    }

    /// Runs the job.  Must be called at most once.
    pub(crate) unsafe fn execute(self) {
        ((*self.pointer).execute_fn)(self.pointer)
    }

    /// Decomposes the reference into its single raw word, for storage in an
    /// atomic deque slot.
    pub(crate) fn into_raw(self) -> *mut JobHeader {
        self.pointer as *mut JobHeader
    }

    /// Rebuilds a reference from [`JobRef::into_raw`].
    ///
    /// # Safety
    ///
    /// `pointer` must have come from `into_raw` on a job that is still live.
    pub(crate) unsafe fn from_raw(pointer: *mut JobHeader) -> JobRef {
        JobRef { pointer }
    }
}

/// A job allocated on the stack of the `join` (or `install`) caller.
///
/// The result (or panic payload) is written back into the job itself so the
/// caller can pick it up after the latch fires.  `#[repr(C)]` with the
/// header first is load-bearing: `execute_erased` casts the header pointer
/// straight back to the job.
#[repr(C)]
pub(crate) struct StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    header: JobHeader,
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

pub(crate) enum JobResult<R> {
    None,
    Ok(R),
    Panic(PanicPayload),
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            header: JobHeader::new(Self::execute_erased),
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Builds the type-erased reference used to publish this job to thieves.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive (and not move it) until the latch is
    /// set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // Cast the *whole-job* pointer rather than borrowing `self.header`:
        // `execute_erased` casts back to the full job, so the pointer must
        // carry provenance for the entire object, not just the header field.
        JobRef::new((self as *const Self).cast::<JobHeader>())
    }

    /// Runs the closure inline (the "nobody stole it" fast path) and returns
    /// its result, propagating panics directly.
    pub(crate) unsafe fn run_inline(&self) -> R {
        let func = (*self.func.get()).take().expect("job already executed");
        func()
    }

    /// Removes the recorded outcome (result or panic payload), leaving
    /// `JobResult::None` behind.  Callers that need to defer unwinding (the
    /// `join` protocol must not unwind while the sibling branch may still be
    /// running) use this raw form.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }

    /// Extracts the result after the latch has been set by a thief,
    /// re-throwing the job's panic (if any) on the calling thread.
    pub(crate) unsafe fn extract_result(&self) -> R {
        match self.take_result() {
            JobResult::None => unreachable!("latch set but no job result recorded"),
            JobResult::Ok(r) => r,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
        }
    }

    /// The type-erased execute function stored in the header.
    ///
    /// # Safety
    ///
    /// `header` must point at the header of a live, not-yet-executed
    /// `StackJob<L, F, R>` of exactly these type parameters.
    unsafe fn execute_erased(header: *const JobHeader) {
        // `#[repr(C)]` puts the header at offset 0, so the header pointer
        // *is* the job pointer.
        let this = &*(header as *const Self);
        let func = (*this.func.get()).take().expect("job already executed");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        *this.result.get() = result;
        // The latch must be the very last thing touched: as soon as it is
        // set, the owner may deallocate the job.
        Latch::set(&this.latch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;

    #[test]
    fn stack_job_roundtrip_through_job_ref() {
        let job = StackJob::new(|| 6 * 7, SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        assert!(!job.latch().probe());
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        assert_eq!(unsafe { job.extract_result() }, 42);
    }

    #[test]
    fn stack_job_records_panic_payload() {
        let job: StackJob<_, _, ()> = StackJob::new(|| panic!("boom"), SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            job.extract_result();
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn run_inline_bypasses_result_slot() {
        let job = StackJob::new(|| String::from("inline"), SpinLatch::new());
        let value = unsafe { job.run_inline() };
        assert_eq!(value, "inline");
        // Latch is intentionally not set by `run_inline`; the joining worker
        // already has the value in hand.
        assert!(!job.latch().probe());
    }

    #[test]
    fn job_ref_raw_roundtrip_preserves_identity() {
        let job = StackJob::new(|| 1, SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        let raw = job_ref.into_raw();
        let back = unsafe { JobRef::from_raw(raw) };
        assert_eq!(job_ref, back);
        unsafe { back.execute() };
        assert_eq!(unsafe { job.extract_result() }, 1);
    }
}
