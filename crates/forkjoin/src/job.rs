//! Type-erased jobs.
//!
//! A job is a closure plus a latch plus a slot for its result.  Jobs that
//! originate from [`join`](crate::join) live on the stack of the joining
//! worker ([`StackJob`]); the pointer handed to other workers ([`JobRef`]) is
//! therefore only valid until the owning `join` call returns, which is
//! guaranteed because `join` does not return before the job's latch is set.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// The payload captured when a job panics, re-thrown at the join point.
pub(crate) type PanicPayload = Box<dyn Any + Send>;

/// A type-erased pointer to a job that can be executed exactly once.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Equality on the job address alone: two live jobs never share an address,
// and fn-pointer comparison is unreliable across codegen units.
impl PartialEq for JobRef {
    fn eq(&self, other: &JobRef) -> bool {
        self.pointer == other.pointer
    }
}

impl Eq for JobRef {}

// SAFETY: a `JobRef` is only ever created from jobs whose closures are
// `Send`; the pointer itself is just an opaque handle shipped between worker
// threads.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

impl JobRef {
    /// Creates a job reference from a raw job pointer.
    ///
    /// # Safety
    ///
    /// `job` must stay valid until `execute` has completed (enforced by the
    /// latch protocol in `join`).
    pub(crate) unsafe fn new<T: Job>(job: *const T) -> JobRef {
        JobRef {
            pointer: job as *const (),
            execute_fn: |ptr| T::execute(ptr as *const T),
        }
    }

    /// Runs the job.  Must be called at most once.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }
}

/// A job that knows how to execute itself through a raw pointer.
pub(crate) trait Job {
    /// Executes the job stored behind `this`.
    ///
    /// # Safety
    ///
    /// `this` must point to a live job that has not been executed yet.
    unsafe fn execute(this: *const Self);
}

/// A job allocated on the stack of the `join` (or `install`) caller.
///
/// The result (or panic payload) is written back into the job itself so the
/// caller can pick it up after the latch fires.
pub(crate) struct StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

pub(crate) enum JobResult<R> {
    None,
    Ok(R),
    Panic(PanicPayload),
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Builds the type-erased reference used to publish this job to thieves.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive (and not move it) until the latch is
    /// set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Runs the closure inline (the "nobody stole it" fast path) and returns
    /// its result, propagating panics directly.
    pub(crate) unsafe fn run_inline(&self) -> R {
        let func = (*self.func.get()).take().expect("job already executed");
        func()
    }

    /// Removes the recorded outcome (result or panic payload), leaving
    /// `JobResult::None` behind.  Callers that need to defer unwinding (the
    /// `join` protocol must not unwind while the sibling branch may still be
    /// running) use this raw form.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }

    /// Extracts the result after the latch has been set by a thief,
    /// re-throwing the job's panic (if any) on the calling thread.
    pub(crate) unsafe fn extract_result(&self) -> R {
        match self.take_result() {
            JobResult::None => unreachable!("latch set but no job result recorded"),
            JobResult::Ok(r) => r,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = (*this.func.get()).take().expect("job already executed");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        *this.result.get() = result;
        // The latch must be the very last thing touched: as soon as it is
        // set, the owner may deallocate the job.
        Latch::set(&this.latch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;

    #[test]
    fn stack_job_roundtrip_through_job_ref() {
        let job = StackJob::new(|| 6 * 7, SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        assert!(!job.latch().probe());
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        assert_eq!(unsafe { job.extract_result() }, 42);
    }

    #[test]
    fn stack_job_records_panic_payload() {
        let job: StackJob<_, _, ()> = StackJob::new(|| panic!("boom"), SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            job.extract_result();
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn run_inline_bypasses_result_slot() {
        let job = StackJob::new(|| String::from("inline"), SpinLatch::new());
        let value = unsafe { job.run_inline() };
        assert_eq!(value, "inline");
        // Latch is intentionally not set by `run_inline`; the joining worker
        // already has the value in hand.
        assert!(!job.latch().probe());
    }
}
