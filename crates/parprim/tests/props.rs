//! Property-style tests: every primitive must agree with a sequential
//! reference implementation, both on an ordinary thread (where the
//! primitives degrade to sequential loops) and inside a multi-worker
//! [`forkjoin::Pool`] (where they actually fork).

use forkjoin::Pool;

/// Deterministic pseudo-random u64s (SplitMix64) so failures replay exactly.
fn pseudo_random(seed: u64, count: usize) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// Runs `check` once on the calling thread and once installed in a 4-worker
/// pool; the inputs are big enough that the pooled run really forks.
fn outside_and_inside_pool(check: impl Fn() + Send + Sync) {
    check();
    let pool = Pool::new(4).unwrap();
    pool.install(&check);
}

const N: usize = 100_000;

#[test]
fn map_matches_sequential_map() {
    let input = pseudo_random(1, N);
    outside_and_inside_pool(|| {
        let expected: Vec<u64> = input.iter().map(|x| x ^ (x >> 7)).collect();
        assert_eq!(parprim::map(&input, |x| x ^ (x >> 7)), expected);
    });
}

#[test]
fn for_each_mut_visits_every_element_once() {
    outside_and_inside_pool(|| {
        let mut values = pseudo_random(2, N);
        let expected: Vec<u64> = values.iter().map(|x| x.wrapping_mul(3)).collect();
        parprim::for_each_mut(&mut values, |x| *x = x.wrapping_mul(3));
        assert_eq!(values, expected);
    });
}

#[test]
fn reduce_matches_sequential_fold() {
    let input = pseudo_random(3, N);
    outside_and_inside_pool(|| {
        let expected = input.iter().fold(0u64, |a, b| a.wrapping_add(*b));
        assert_eq!(
            parprim::reduce(&input, 0, |a, b| a.wrapping_add(b)),
            expected
        );
    });
}

#[test]
fn map_reduce_matches_sequential() {
    let input = pseudo_random(4, N);
    outside_and_inside_pool(|| {
        let expected = input.iter().map(|x| x.count_ones() as u64).sum::<u64>();
        assert_eq!(
            parprim::map_reduce(&input, 0u64, |x| x.count_ones() as u64, |a, b| a + b),
            expected
        );
    });
}

#[test]
fn exclusive_scan_matches_sequential() {
    let input: Vec<u64> = pseudo_random(5, N).iter().map(|x| x % 1000).collect();
    outside_and_inside_pool(|| {
        let mut expected = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for x in &input {
            expected.push(acc);
            acc += x;
        }
        let (scanned, total) = parprim::exclusive_scan(&input, 0, |a, b| a + b);
        assert_eq!(scanned, expected);
        assert_eq!(total, acc);
    });
}

#[test]
fn inclusive_scan_matches_sequential() {
    let input: Vec<u64> = pseudo_random(6, N).iter().map(|x| x % 1000).collect();
    outside_and_inside_pool(|| {
        let mut expected = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for x in &input {
            acc += x;
            expected.push(acc);
        }
        assert_eq!(parprim::inclusive_scan(&input, 0, |a, b| a + b), expected);
    });
}

#[test]
fn scan_of_empty_input_is_empty() {
    let (scanned, total) = parprim::exclusive_scan(&[] as &[u64], 7, |a, b| a + b);
    assert!(scanned.is_empty());
    assert_eq!(total, 7);
    assert!(parprim::inclusive_scan(&[] as &[u64], 0, |a, b| a + b).is_empty());
}

#[test]
fn merge_matches_sequential_merge() {
    let mut a: Vec<u64> = pseudo_random(7, N).iter().map(|x| x % 50_000).collect();
    let mut b: Vec<u64> = pseudo_random(8, N / 2).iter().map(|x| x % 50_000).collect();
    a.sort_unstable();
    b.sort_unstable();
    outside_and_inside_pool(|| {
        let mut expected = [a.as_slice(), b.as_slice()].concat();
        expected.sort(); // stable sort of a-then-b == stable merge
        assert_eq!(parprim::merge(&a, &b), expected);
    });
}

#[test]
fn merge_is_stable_on_ties() {
    // Pair each key with its origin; Ord looks only at the key.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Tagged {
        key: u64,
        from_a: bool,
    }
    impl PartialOrd for Tagged {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Tagged {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key.cmp(&other.key)
        }
    }
    let a: Vec<Tagged> = (0..30_000u64)
        .map(|i| Tagged {
            key: i / 3,
            from_a: true,
        })
        .collect();
    let b: Vec<Tagged> = (0..30_000u64)
        .map(|i| Tagged {
            key: i / 2,
            from_a: false,
        })
        .collect();
    outside_and_inside_pool(|| {
        let merged = parprim::merge(&a, &b);
        assert_eq!(merged.len(), a.len() + b.len());
        // Sorted, and within every run of equal keys all a-elements precede
        // all b-elements.
        for w in merged.windows(2) {
            assert!(w[0].key <= w[1].key);
            if w[0].key == w[1].key {
                assert!(w[0].from_a >= w[1].from_a, "b before a on key {}", w[0].key);
            }
        }
    });
}

#[test]
fn merge_with_empty_side() {
    let a: Vec<u64> = (0..10_000).collect();
    assert_eq!(parprim::merge(&a, &[]), a);
    assert_eq!(parprim::merge(&[], &a), a);
}

#[test]
fn filter_matches_sequential_filter() {
    let input = pseudo_random(9, N);
    outside_and_inside_pool(|| {
        let expected: Vec<u64> = input.iter().filter(|x| *x % 3 == 0).copied().collect();
        assert_eq!(parprim::filter(&input, |x| x % 3 == 0), expected);
    });
}

#[test]
fn filter_edge_cases() {
    assert!(parprim::filter(&[] as &[u64], |_| true).is_empty());
    let input: Vec<u64> = (0..10_000).collect();
    assert_eq!(parprim::filter(&input, |_| true), input);
    assert!(parprim::filter(&input, |_| false).is_empty());
}

#[test]
fn panic_in_map_closure_propagates_and_pool_survives() {
    let input: Vec<u64> = (0..50_000).collect();
    let pool = Pool::new(4).unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            parprim::map(&input, |x| {
                if *x == 40_123 {
                    panic!("poisoned element");
                }
                *x
            })
        })
    }));
    assert!(caught.is_err());
    assert_eq!(
        pool.install(|| parprim::reduce(&input[..10], 0, |a, b| a + b)),
        45
    );
}

#[test]
fn scan_with_non_neutral_identity_matches_sequential() {
    // Regression: phase 1 used to seed every chunk's fold with the identity,
    // double-counting a non-neutral identity at each chunk boundary inside a
    // pool (same call, different answers depending on thread count).
    let input: Vec<u64> = (0..10_000).map(|i| i % 7).collect();
    outside_and_inside_pool(|| {
        let mut expected_ex = Vec::with_capacity(input.len());
        let mut acc = 1_000_000u64; // deliberately non-neutral
        for x in &input {
            expected_ex.push(acc);
            acc += x;
        }
        let (scanned, total) = parprim::exclusive_scan(&input, 1_000_000, |a, b| a + b);
        assert_eq!(scanned, expected_ex);
        assert_eq!(total, acc);

        let mut expected_in = Vec::with_capacity(input.len());
        let mut acc = 1_000_000u64;
        for x in &input {
            acc += x;
            expected_in.push(acc);
        }
        assert_eq!(
            parprim::inclusive_scan(&input, 1_000_000, |a, b| a + b),
            expected_in
        );
    });
}
