//! Parallel prefix sums: [`exclusive_scan`] and [`inclusive_scan`].
//!
//! Both use the classic two-level blocked algorithm: the input is cut into
//! chunks, the per-chunk totals are computed in parallel, the (short) vector
//! of totals is scanned sequentially to get each chunk's starting offset, and
//! finally every chunk writes its portion of the output in parallel starting
//! from its offset.  Total work is ~2n combines; depth is O(n / threads).

use std::mem::MaybeUninit;

use crate::grain_for;
use crate::slice::{for_each_mut_with_grain, map_with_grain};

/// Computes the exclusive prefix fold of `input` under the associative
/// `combine`, returning the output vector and the fold of the whole input.
///
/// `out[i]` is the fold of `input[..i]` starting from `identity`; `out[0]` is
/// `identity` itself.  The returned total equals the fold of the entire
/// slice, which batch-partitioning callers invariably need alongside the
/// offsets.
///
/// ```
/// let (offsets, total) = parprim::exclusive_scan(&[3u64, 1, 4], 0, |a, b| a + b);
/// assert_eq!(offsets, vec![0, 3, 4]);
/// assert_eq!(total, 8);
/// ```
pub fn exclusive_scan<T, C>(input: &[T], identity: T, combine: C) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> T + Sync,
{
    scan_impl(input, identity, &combine, false)
}

/// Computes the inclusive prefix fold of `input` under the associative
/// `combine`: `out[i]` is the fold of `input[..=i]` starting from `identity`.
///
/// ```
/// let running = parprim::inclusive_scan(&[3u64, 1, 4], 0, |a, b| a + b);
/// assert_eq!(running, vec![3, 4, 8]);
/// ```
pub fn inclusive_scan<T, C>(input: &[T], identity: T, combine: C) -> Vec<T>
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> T + Sync,
{
    scan_impl(input, identity, &combine, true).0
}

/// Phase-3 unit of work: a chunk, its output slice, and its starting offset.
type WriteTask<'a, T> = (&'a [T], &'a mut [MaybeUninit<T>], T);

fn scan_impl<T, C>(input: &[T], identity: T, combine: &C, inclusive: bool) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> T + Sync,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), identity);
    }
    let chunk_len = grain_for(n);
    let mut out = Vec::with_capacity(n);

    // Phase 1: fold each chunk down to its total, in parallel.  Each element
    // here is a whole chunk of work, so fork per element (grain 1) — the
    // element-count heuristic would see "a few dozen chunks" and refuse to
    // fork at all.  Totals are folds of the chunk's *elements only*: seeding
    // each chunk with `identity` would count a non-neutral identity once per
    // chunk instead of once overall (it enters exactly once, in phase 2).
    let chunks: Vec<&[T]> = input.chunks(chunk_len).collect();
    let totals: Vec<T> = map_with_grain(&chunks, 1, |c| {
        let (first, rest) = c.split_first().expect("chunks of non-empty input");
        rest.iter().fold(first.clone(), |acc, x| combine(&acc, x))
    });

    // Phase 2: a sequential exclusive scan over the (few) chunk totals gives
    // each chunk the fold of everything before it.
    let mut offsets = Vec::with_capacity(totals.len());
    let mut acc = identity;
    for t in &totals {
        offsets.push(acc.clone());
        acc = combine(&acc, t);
    }
    let total = acc;

    // Phase 3: each chunk writes its slice of the output, starting from its
    // offset, in parallel.
    {
        let spare = out.spare_capacity_mut();
        let mut tasks: Vec<WriteTask<'_, T>> = Vec::with_capacity(chunks.len());
        let mut rest = spare;
        for (chunk, offset) in chunks.iter().zip(offsets) {
            let (dst, tail) = rest.split_at_mut(chunk.len());
            tasks.push((chunk, dst, offset));
            rest = tail;
        }
        for_each_mut_with_grain(&mut tasks, 1, |(chunk, dst, offset)| {
            let mut acc = offset.clone();
            for (x, slot) in chunk.iter().zip(dst.iter_mut()) {
                if inclusive {
                    acc = combine(&acc, x);
                    slot.write(acc.clone());
                } else {
                    slot.write(acc.clone());
                    acc = combine(&acc, x);
                }
            }
        });
    }
    // SAFETY: the tasks cover the first `n` spare slots exactly, and
    // `for_each_mut` returned normally, so all `n` slots are initialised.
    unsafe { out.set_len(n) };
    (out, total)
}
