//! Parallel filter: keep the elements satisfying a predicate, in order.

use std::mem::MaybeUninit;

use crate::grain_for;
use crate::slice::{for_each_mut_with_grain, map_with_grain};

/// Collects the elements of `input` for which `keep` returns `true`,
/// preserving their order, in parallel.
///
/// Equivalent to `input.iter().filter(|x| keep(x)).cloned().collect()`, but
/// split across the current pool's workers: each chunk filters independently,
/// a sequential pass over the (few) per-chunk lengths yields every chunk's
/// output offset — the same exclusive-scan step the batched tree uses to
/// stitch per-subtree results — and the surviving elements are then moved
/// into place in parallel.
///
/// ```
/// let evens = parprim::filter(&[1, 2, 3, 4, 5, 6], |x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4, 6]);
/// ```
pub fn filter<T, F>(input: &[T], keep: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let chunks: Vec<&[T]> = input.chunks(grain_for(input.len()).max(1)).collect();
    // Phase 1: filter each chunk independently (fork per chunk, grain 1 —
    // each element here is a whole chunk of work).
    let parts: Vec<Vec<T>> = map_with_grain(&chunks, 1, |c| {
        c.iter().filter(|x| keep(x)).cloned().collect()
    });
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Phase 2: move each chunk's survivors into its slice of the output.
    // Splitting the spare capacity at the per-part lengths *is* the exclusive
    // scan of those lengths.
    {
        let mut rest = out.spare_capacity_mut();
        let mut tasks: Vec<(Vec<T>, &mut [MaybeUninit<T>])> = Vec::with_capacity(parts.len());
        for part in parts {
            let (dst, tail) = rest.split_at_mut(part.len());
            tasks.push((part, dst));
            rest = tail;
        }
        for_each_mut_with_grain(&mut tasks, 1, |(part, dst)| {
            for (x, slot) in part.drain(..).zip(dst.iter_mut()) {
                slot.write(x);
            }
        });
    }
    // SAFETY: the tasks cover the first `total` spare slots exactly, and
    // `for_each_mut_with_grain` returned normally, so all are initialised.
    unsafe { out.set_len(total) };
    out
}
