//! Batch-parallel primitives on top of the [`forkjoin`] substrate.
//!
//! The parallel-batched interpolation search tree (crate `pbist`) expresses
//! every batched operation — splitting a sorted batch across subtrees,
//! counting per-subtree insertions, compacting result buffers — in terms of a
//! small vocabulary of primitives.  This crate provides that vocabulary:
//!
//! * [`map`] / [`for_each`] / [`for_each_mut`] — element-wise parallelism
//!   over slices,
//! * [`reduce`] / [`map_reduce`] — parallel folds with an associative
//!   combiner,
//! * [`exclusive_scan`] / [`inclusive_scan`] — parallel prefix sums (the
//!   workhorse of batch partitioning),
//! * [`merge`] — stable parallel merge of two sorted batches,
//! * [`filter`] — parallel order-preserving selection by predicate.
//!
//! Everything is built on binary [`forkjoin::join`], so these functions work
//! both inside a [`forkjoin::Pool`] (where recursion forks across workers)
//! and on ordinary threads (where they degrade to clean sequential loops).
//! Granularity cutoffs are derived from
//! [`forkjoin::current_num_threads`]: each primitive aims for a few chunks
//! per worker and never forks below a fixed sequential floor, so the
//! fork-join overhead stays amortised.
//!
//! # Panic behaviour
//!
//! If a user closure panics, the panic propagates out of the primitive once
//! all forked branches have stopped running (see [`forkjoin::join`]).
//! Primitives that build an output `Vec` leak the elements already produced
//! when unwinding (the memory itself is still freed); no garbage values are
//! ever observed.

#![warn(missing_docs)]

mod filter;
mod merge;
mod reduce;
mod scan;
mod slice;

pub use filter::filter;
pub use merge::merge;
pub use reduce::{map_reduce, reduce};
pub use scan::{exclusive_scan, inclusive_scan};
pub use slice::{for_each, for_each_mut, for_each_mut_with_grain, map, map_with_grain};

/// The smallest slice worth forking for.  Below this, per-element work would
/// have to be enormous for the fork overhead (a deque push/pop plus possible
/// steal) to pay off.
const MIN_SEQ_LEN: usize = 1024;

/// How many chunks per worker the primitives aim for.  More than one, so the
/// scheduler can balance uneven per-element costs; not many more, so the
/// per-chunk overhead stays small.
const CHUNKS_PER_THREAD: usize = 8;

/// Picks the sequential cutoff for an input of `len` elements, based on the
/// current pool size.  Outside any pool this returns at least `len`, making
/// every primitive a plain sequential loop.
fn grain_for(len: usize) -> usize {
    let threads = forkjoin::current_num_threads();
    if threads <= 1 {
        return len.max(1);
    }
    (len / (threads * CHUNKS_PER_THREAD)).max(MIN_SEQ_LEN)
}
