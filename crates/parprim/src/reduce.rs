//! Parallel folds: [`reduce`] and [`map_reduce`].

use crate::grain_for;

/// Maps every element of `items` through `map` and folds the mapped values
/// with `combine`, in parallel.
///
/// `combine` must be associative and `identity` must be its neutral element
/// (`combine(identity, x) == x == combine(x, identity)`); the primitive is
/// free to regroup the fold across workers, so a non-associative combiner or
/// a non-neutral identity produces nondeterministic results.
///
/// ```
/// // Longest string length.
/// let words = ["a", "bbb", "cc"];
/// let longest = parprim::map_reduce(&words, 0, |w| w.len(), usize::max);
/// assert_eq!(longest, 3);
/// ```
pub fn map_reduce<T, U, M, C>(items: &[T], identity: U, map: M, combine: C) -> U
where
    T: Sync,
    U: Send + Sync + Clone,
    M: Fn(&T) -> U + Sync,
    C: Fn(U, U) -> U + Sync,
{
    map_reduce_rec(items, grain_for(items.len()), &identity, &map, &combine)
}

fn map_reduce_rec<T, U, M, C>(items: &[T], grain: usize, identity: &U, map: &M, combine: &C) -> U
where
    T: Sync,
    U: Send + Sync + Clone,
    M: Fn(&T) -> U + Sync,
    C: Fn(U, U) -> U + Sync,
{
    if items.len() <= grain {
        return items
            .iter()
            .fold(identity.clone(), |acc, x| combine(acc, map(x)));
    }
    let mid = items.len() / 2;
    let (lo, hi) = items.split_at(mid);
    let (a, b) = forkjoin::join(
        || map_reduce_rec(lo, grain, identity, map, combine),
        || map_reduce_rec(hi, grain, identity, map, combine),
    );
    combine(a, b)
}

/// Folds `items` with the associative `combine`, in parallel.
///
/// A convenience wrapper over [`map_reduce`] with a cloning map step.
///
/// ```
/// let values: Vec<u64> = (1..=100).collect();
/// let sum = parprim::reduce(&values, 0, |a, b| a + b);
/// assert_eq!(sum, 5050);
/// ```
pub fn reduce<T, C>(items: &[T], identity: T, combine: C) -> T
where
    T: Clone + Send + Sync,
    C: Fn(T, T) -> T + Sync,
{
    map_reduce(items, identity, T::clone, combine)
}
