//! Element-wise parallelism over slices: [`map`], [`for_each`],
//! [`for_each_mut`].

use std::mem::MaybeUninit;

use crate::grain_for;

/// Applies `f` to every element of `input` in parallel and collects the
/// results in order.
///
/// Equivalent to `input.iter().map(f).collect()`, but split across the
/// current pool's workers when called inside [`forkjoin::Pool::install`].
///
/// ```
/// let doubled = parprim::map(&[1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn map<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_grain(input, grain_for(input.len()), f)
}

/// [`map`] with an explicit sequential cutoff instead of the element-count
/// heuristic.
///
/// The default cutoff assumes cheap per-element work and refuses to fork
/// below ~1000 elements — the wrong call when each element is itself a large
/// task (a chunk to fold, a subtree to build).  Pass `grain = 1` to fork for
/// every element.
///
/// ```
/// let squares = parprim::map_with_grain(&[1u64, 2, 3], 1, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn map_with_grain<T, U, F>(input: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(input.len());
    map_into(input, out.spare_capacity_mut(), grain.max(1), &f);
    // SAFETY: `map_into` returned normally, so every one of the first
    // `input.len()` slots has been written exactly once.
    unsafe { out.set_len(input.len()) };
    out
}

fn map_into<T, U, F>(input: &[T], out: &mut [MaybeUninit<U>], grain: usize, f: &F)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    debug_assert_eq!(input.len(), out.len());
    if input.len() <= grain {
        for (src, dst) in input.iter().zip(out.iter_mut()) {
            dst.write(f(src));
        }
        return;
    }
    let mid = input.len() / 2;
    let (in_lo, in_hi) = input.split_at(mid);
    let (out_lo, out_hi) = out.split_at_mut(mid);
    forkjoin::join(
        || map_into(in_lo, out_lo, grain, f),
        || map_into(in_hi, out_hi, grain, f),
    );
}

/// Calls `f` on every element of `items` in parallel.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// parprim::for_each(&[1u64, 2, 3, 4], |x| {
///     total.fetch_add(*x, Ordering::Relaxed);
/// });
/// assert_eq!(total.into_inner(), 10);
/// ```
pub fn for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    for_each_rec(items, grain_for(items.len()), &f);
}

fn for_each_rec<T, F>(items: &[T], grain: usize, f: &F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    if items.len() <= grain {
        items.iter().for_each(f);
        return;
    }
    let mid = items.len() / 2;
    let (lo, hi) = items.split_at(mid);
    forkjoin::join(|| for_each_rec(lo, grain, f), || for_each_rec(hi, grain, f));
}

/// Calls `f` on a mutable reference to every element of `items` in parallel.
///
/// The slice is split into disjoint halves before forking, so each element is
/// visited by exactly one worker and no synchronisation is needed inside `f`.
///
/// ```
/// let mut values = vec![1, 2, 3];
/// parprim::for_each_mut(&mut values, |x| *x *= 10);
/// assert_eq!(values, vec![10, 20, 30]);
/// ```
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let grain = grain_for(items.len());
    for_each_mut_rec(items, grain, &f);
}

/// [`for_each_mut`] with an explicit sequential cutoff; see
/// [`map_with_grain`] for when to prefer this over the element-count
/// heuristic.
pub fn for_each_mut_with_grain<T, F>(items: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    for_each_mut_rec(items, grain.max(1), &f);
}

fn for_each_mut_rec<T, F>(items: &mut [T], grain: usize, f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if items.len() <= grain {
        items.iter_mut().for_each(f);
        return;
    }
    let mid = items.len() / 2;
    let (lo, hi) = items.split_at_mut(mid);
    forkjoin::join(
        || for_each_mut_rec(lo, grain, f),
        || for_each_mut_rec(hi, grain, f),
    );
}
