//! Stable parallel merge of two sorted batches.

use std::mem::MaybeUninit;

use crate::grain_for;

/// Merges two sorted slices into one sorted vector, in parallel.
///
/// The merge is **stable**: on equal elements, everything from `a` precedes
/// everything from `b`, and the relative order within each input is
/// preserved.  Both inputs must already be sorted (ascending); this is only
/// checked with a `debug_assert!`.
///
/// Parallelism comes from the classic divide-and-conquer split: the longer
/// input is cut at its midpoint, the matching split position in the other
/// input is found by binary search, and the two sub-merges proceed
/// independently into disjoint halves of the output.
///
/// ```
/// let merged = parprim::merge(&[1, 3, 5], &[2, 3, 4]);
/// assert_eq!(merged, vec![1, 2, 3, 3, 4, 5]);
/// ```
pub fn merge<T>(a: &[T], b: &[T]) -> Vec<T>
where
    T: Ord + Clone + Send + Sync,
{
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "input `a` not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "input `b` not sorted");
    let n = a.len() + b.len();
    let mut out = Vec::with_capacity(n);
    merge_into(a, b, out.spare_capacity_mut(), grain_for(n));
    // SAFETY: `merge_into` writes every slot of `out`'s first `n` positions
    // exactly once before returning.
    unsafe { out.set_len(n) };
    out
}

fn merge_into<T>(a: &[T], b: &[T], out: &mut [MaybeUninit<T>], grain: usize)
where
    T: Ord + Clone + Send + Sync,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    if a.len() + b.len() <= grain || a.is_empty() || b.is_empty() {
        seq_merge_into(a, b, out);
        return;
    }
    if a.len() >= b.len() {
        // Pivot on a's midpoint.  Strictly smaller elements of `b` go left;
        // elements of `b` equal to the pivot go right, where they land after
        // `a[ma..]` — preserving a-before-b on ties.
        let ma = a.len() / 2;
        let mb = b.partition_point(|x| x < &a[ma]);
        let (a_lo, a_hi) = a.split_at(ma);
        let (b_lo, b_hi) = b.split_at(mb);
        let (out_lo, out_hi) = out.split_at_mut(ma + mb);
        forkjoin::join(
            || merge_into(a_lo, b_lo, out_lo, grain),
            || merge_into(a_hi, b_hi, out_hi, grain),
        );
    } else {
        // Pivot on b's midpoint.  Elements of `a` equal to the pivot go
        // left, ahead of `b[mb]` — again a-before-b on ties.
        let mb = b.len() / 2;
        let ma = a.partition_point(|x| x <= &b[mb]);
        let (a_lo, a_hi) = a.split_at(ma);
        let (b_lo, b_hi) = b.split_at(mb);
        let (out_lo, out_hi) = out.split_at_mut(ma + mb);
        forkjoin::join(
            || merge_into(a_lo, b_lo, out_lo, grain),
            || merge_into(a_hi, b_hi, out_hi, grain),
        );
    }
}

fn seq_merge_into<T>(a: &[T], b: &[T], out: &mut [MaybeUninit<T>])
where
    T: Ord + Clone,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j == b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            slot.write(a[i].clone());
            i += 1;
        } else {
            slot.write(b[j].clone());
            j += 1;
        }
    }
}
