//! Reference data structures the paper's tree is compared against.
//!
//! The simplest competitor to an interpolation search tree is a flat sorted
//! array: perfect space locality, `O(log n)` lookups, and — in the batched
//! model — updates by wholesale merge/filter.  [`SortedArraySet`] provides
//! that baseline as a full [`batchapi::BatchedSet`]: membership batches fan
//! out through `parprim::map`, inserts merge the new keys in with
//! `parprim::merge`, and removals compact the survivors with
//! `parprim::filter`.  Benchmark harnesses drive it and `pbist::IstSet`
//! through the same trait.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Bound;
use std::sync::Arc;

use batchapi::{Batch, BatchedMap, BatchedSet, KvBatch, SetView, SortedVecView};

/// Batches at or below this length take the sequential in-place path in the
/// `_report` variants; longer ones reuse the allocating parallel fan-out.
const SEQ_REPORT_LEN: usize = 1024;

/// A set of keys stored as one sorted, deduplicated array.
///
/// Point queries are binary searches; batched operations (through the
/// [`BatchedSet`] impl) run in parallel inside a `forkjoin::Pool`.  Updates
/// rewrite the whole array — O(n + b) per batch, the price a flat layout pays
/// — which is exactly the trade-off the interpolation search tree is built to
/// beat.
#[derive(Debug, Clone, Default)]
pub struct SortedArraySet<K: Ord> {
    // `Arc` so `publish_root` is O(1): a published snapshot shares the whole
    // array, and updates that follow copy it out first (`Arc::make_mut`) or
    // swap in a freshly-built array.
    keys: Arc<Vec<K>>,
}

impl<K: Ord> SortedArraySet<K> {
    /// Builds a set from arbitrary keys; sorts (unstable — keys are plain
    /// `Ord` values with no tie order to preserve) and deduplicates them.
    pub fn from_unsorted(mut keys: Vec<K>) -> SortedArraySet<K> {
        keys.sort_unstable();
        keys.dedup();
        SortedArraySet {
            keys: Arc::new(keys),
        }
    }

    /// Builds a set from keys that are already sorted and deduplicated
    /// (checked with a `debug_assert!`).
    pub fn from_sorted(keys: Vec<K>) -> SortedArraySet<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        SortedArraySet {
            keys: Arc::new(keys),
        }
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns `true` when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    /// Number of keys strictly smaller than `key`.
    pub fn rank(&self, key: &K) -> usize {
        self.keys.partition_point(|k| k < key)
    }

    /// The underlying sorted keys.
    pub fn as_slice(&self) -> &[K] {
        &self.keys
    }
}

impl<K: Ord + Clone + Send + Sync> BatchedSet<K> for SortedArraySet<K> {
    fn len(&self) -> usize {
        SortedArraySet::len(self)
    }

    fn contains(&self, key: &K) -> bool {
        SortedArraySet::contains(self, key)
    }

    fn rank(&self, key: &K) -> usize {
        SortedArraySet::rank(self, key)
    }

    fn min(&self) -> Option<&K> {
        self.keys.first()
    }

    fn max(&self) -> Option<&K> {
        self.keys.last()
    }

    fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        parprim::map(batch.as_slice(), |q| self.contains(q))
    }

    fn batch_insert(&mut self, batch: &Batch<K>) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        let inserted = parprim::map(batch.as_slice(), |q| !self.contains(q));
        // The genuinely new keys, read off the flags just computed: a sorted
        // subsequence of the batch, disjoint from the existing keys, so the
        // merged array stays strictly increasing.
        let fresh: Vec<K> = batch
            .iter()
            .zip(&inserted)
            .filter(|(_, &new)| new)
            .map(|(q, _)| q.clone())
            .collect();
        self.keys = Arc::new(parprim::merge(&self.keys, &fresh));
        inserted
    }

    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        let removed = parprim::map(batch.as_slice(), |q| self.contains(q));
        self.keys = Arc::new(parprim::filter(&self.keys, |k| {
            batch.binary_search(k).is_err()
        }));
        removed
    }

    fn collect_keys(&self) -> Vec<K> {
        self.keys.as_ref().clone()
    }

    fn publish_root(&self) -> Arc<dyn SetView<K>>
    where
        K: 'static,
    {
        // O(1): the view shares the array; later updates unshare it.
        Arc::new(SortedVecView::from_arc(Arc::clone(&self.keys)))
    }

    fn publish_clone_keys(&self) -> usize {
        0 // publish_root shares the array, never copies it
    }

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        let (start, end) = batchapi::bounds_to_rank_interval(
            self.keys.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains(k),
        );
        self.keys[start..end].to_vec()
    }

    fn kth(&self, k: usize) -> Option<K> {
        self.keys.get(k).cloned()
    }

    // Report variants: small batches (where per-batch allocation overhead
    // actually shows — the flat-combining round loop) fill the reused buffer
    // with a sequential scan; large batches keep the parallel fan-out and
    // pay one move into `out`.

    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        if batch.len() <= SEQ_REPORT_LEN {
            out.clear();
            out.extend(batch.iter().map(|q| self.contains(q)));
        } else {
            *out = self.batch_contains(batch);
        }
    }

    fn batch_insert_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        if batch.len() <= SEQ_REPORT_LEN {
            out.clear();
            out.extend(batch.iter().map(|q| !self.contains(q)));
            let fresh: Vec<K> = batch
                .iter()
                .zip(out.iter())
                .filter(|(_, &new)| new)
                .map(|(q, _)| q.clone())
                .collect();
            self.keys = Arc::new(parprim::merge(&self.keys, &fresh));
        } else {
            *out = self.batch_insert(batch);
        }
    }

    fn batch_remove_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        if batch.len() <= SEQ_REPORT_LEN {
            out.clear();
            out.extend(batch.iter().map(|q| self.contains(q)));
            Arc::make_mut(&mut self.keys).retain(|k| batch.binary_search(k).is_err());
        } else {
            *out = self.batch_remove(batch);
        }
    }

    // Point mutators: one binary search plus an in-place shift — the flat
    // array's O(n) per-op cost, without the singleton-batch detour of the
    // trait defaults.

    fn insert_one(&mut self, key: &K) -> bool {
        match self.keys.binary_search(key) {
            Ok(_) => false,
            Err(pos) => {
                Arc::make_mut(&mut self.keys).insert(pos, key.clone());
                true
            }
        }
    }

    fn remove_one(&mut self, key: &K) -> bool {
        match self.keys.binary_search(key) {
            Ok(pos) => {
                Arc::make_mut(&mut self.keys).remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// A key→value map stored as two index-parallel sorted arrays — the flat
/// baseline for [`batchapi::BatchedMap`], mirroring [`SortedArraySet`].
///
/// Point lookups are binary searches; batched upserts and removals rewrite
/// both arrays with one sequential merge/filter pass (`O(n + b)` — the flat
/// layout's price, which `pbist::IstMap` is built to beat).  Both arrays sit
/// behind `Arc`s so clones snapshot in `O(1)` and later updates unshare.
#[derive(Debug, Clone, Default)]
pub struct SortedArrayMap<K: Ord, V> {
    keys: Arc<Vec<K>>,
    vals: Arc<Vec<V>>,
}

impl<K: Ord, V> SortedArrayMap<K, V> {
    /// Builds a map from arbitrary entries; sorts by key and collapses
    /// duplicates last-wins (the [`KvBatch`] policy).
    pub fn from_unsorted_entries(entries: Vec<(K, V)>) -> SortedArrayMap<K, V> {
        let (keys, vals) = KvBatch::from_unsorted(entries).into_parts();
        SortedArrayMap {
            keys: Arc::new(keys),
            vals: Arc::new(vals),
        }
    }

    /// Builds a map from entries whose keys are already strictly increasing
    /// (checked with a `debug_assert!`).
    pub fn from_sorted_entries(entries: Vec<(K, V)>) -> SortedArrayMap<K, V> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "keys must be strictly increasing"
        );
        let (keys, vals): (Vec<K>, Vec<V>) = entries.into_iter().unzip();
        SortedArrayMap {
            keys: Arc::new(keys),
            vals: Arc::new(vals),
        }
    }

    /// The underlying sorted keys.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }
}

impl<K: Ord + Clone + Send + Sync, V: Clone + Send + Sync> BatchedMap<K, V>
    for SortedArrayMap<K, V>
{
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn get(&self, key: &K) -> Option<V> {
        self.keys
            .binary_search(key)
            .ok()
            .map(|pos| self.vals[pos].clone())
    }

    fn contains_key(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    fn rank(&self, key: &K) -> usize {
        self.keys.partition_point(|k| k < key)
    }

    fn batch_get(&self, batch: &Batch<K>) -> Vec<Option<V>> {
        if batch.is_empty() {
            return Vec::new();
        }
        parprim::map(batch.as_slice(), |q| self.get(q))
    }

    fn batch_insert_kv(&mut self, batch: &KvBatch<K, V>) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        // One merge pass rewrites both arrays and computes the flags: a
        // batch key matching an existing one keeps the slot and takes the
        // batch's value (last-wins upsert).
        let old_keys = &self.keys;
        let old_vals = &self.vals;
        let mut keys = Vec::with_capacity(old_keys.len() + batch.len());
        let mut vals = Vec::with_capacity(old_keys.len() + batch.len());
        let mut flags = Vec::with_capacity(batch.len());
        let mut i = 0;
        for (q, v) in batch.iter() {
            while i < old_keys.len() && old_keys[i] < *q {
                keys.push(old_keys[i].clone());
                vals.push(old_vals[i].clone());
                i += 1;
            }
            if i < old_keys.len() && old_keys[i] == *q {
                keys.push(old_keys[i].clone());
                vals.push(v.clone());
                i += 1;
                flags.push(false);
            } else {
                keys.push(q.clone());
                vals.push(v.clone());
                flags.push(true);
            }
        }
        keys.extend_from_slice(&old_keys[i..]);
        vals.extend_from_slice(&old_vals[i..]);
        self.keys = Arc::new(keys);
        self.vals = Arc::new(vals);
        flags
    }

    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool> {
        if batch.is_empty() {
            return Vec::new();
        }
        let removed: Vec<bool> = batch
            .iter()
            .map(|q| self.keys.binary_search(q).is_ok())
            .collect();
        let old_keys = &self.keys;
        let old_vals = &self.vals;
        let mut keys = Vec::with_capacity(old_keys.len());
        let mut vals = Vec::with_capacity(old_keys.len());
        for (k, v) in old_keys.iter().zip(old_vals.iter()) {
            if batch.binary_search(k).is_err() {
                keys.push(k.clone());
                vals.push(v.clone());
            }
        }
        self.keys = Arc::new(keys);
        self.vals = Arc::new(vals);
        removed
    }

    fn collect_entries(&self) -> Vec<(K, V)> {
        self.keys
            .iter()
            .cloned()
            .zip(self.vals.iter().cloned())
            .collect()
    }

    fn range_entries(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        let (start, end) = batchapi::bounds_to_rank_interval(
            self.keys.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains_key(k),
        );
        self.keys[start..end]
            .iter()
            .cloned()
            .zip(self.vals[start..end].iter().cloned())
            .collect()
    }

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        let (start, end) = batchapi::bounds_to_rank_interval(
            self.keys.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains_key(k),
        );
        self.keys[start..end].to_vec()
    }

    fn kth(&self, k: usize) -> Option<(K, V)> {
        Some((self.keys.get(k)?.clone(), self.vals[k].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let set = SortedArraySet::from_unsorted(vec![5, 1, 3, 3, 1]);
        assert_eq!(set.as_slice(), &[1, 3, 5]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }

    #[test]
    fn contains_and_rank_agree_with_linear_scan() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let set = SortedArraySet::from_sorted(keys.clone());
        for probe in 0..1600u64 {
            assert_eq!(set.contains(&probe), keys.contains(&probe));
            assert_eq!(
                set.rank(&probe),
                keys.iter().filter(|&&k| k < probe).count()
            );
        }
    }

    #[test]
    fn batch_contains_matches_pointwise_queries() {
        let set = SortedArraySet::from_unsorted((0..1000u64).map(|i| i * 2).collect());
        let batch = Batch::from_unsorted((0..4096).map(|i| (i * 7) % 2500).collect());
        let batched = set.batch_contains(&batch);
        let pointwise: Vec<bool> = batch.iter().map(|q| set.contains(q)).collect();
        assert_eq!(batched, pointwise);
    }

    #[test]
    fn batch_insert_merges_and_reports_new_keys() {
        let mut set = SortedArraySet::from_unsorted((0..10u64).map(|i| i * 2).collect());
        let batch = Batch::from_unsorted(vec![1u64, 2, 3, 18, 19, 40]);
        let inserted = set.batch_insert(&batch);
        assert_eq!(inserted, vec![true, false, true, false, true, true]);
        assert_eq!(
            set.as_slice(),
            &[0, 1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 19, 40]
        );
    }

    #[test]
    fn batch_remove_compacts_and_reports_hits() {
        let mut set = SortedArraySet::from_unsorted((0..10u64).collect());
        let batch = Batch::from_unsorted(vec![0u64, 3, 4, 11]);
        let removed = set.batch_remove(&batch);
        assert_eq!(removed, vec![true, true, true, false]);
        assert_eq!(set.as_slice(), &[1, 2, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let mut set = SortedArraySet::from_unsorted(vec![1u64, 2, 3]);
        let empty = Batch::empty();
        assert!(set.batch_contains(&empty).is_empty());
        assert!(set.batch_insert(&empty).is_empty());
        assert!(set.batch_remove(&empty).is_empty());
        assert_eq!(set.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn report_variants_match_allocating_ones() {
        // Cover both the sequential small-batch path and the parallel
        // fall-through above SEQ_REPORT_LEN.
        for batch_len in [10usize, SEQ_REPORT_LEN + 500] {
            let keys: Vec<u64> = (0..5_000u64).map(|i| i * 2).collect();
            let mut a = SortedArraySet::from_sorted(keys.clone());
            let mut b = SortedArraySet::from_sorted(keys);
            let batch = Batch::from_unsorted((0..batch_len as u64).map(|i| i * 3).collect());
            let mut out = vec![true; 7]; // stale contents must be cleared

            a.batch_contains_report(&batch, &mut out);
            assert_eq!(out, b.batch_contains(&batch), "len {batch_len}");
            a.batch_insert_report(&batch, &mut out);
            assert_eq!(out, b.batch_insert(&batch), "len {batch_len}");
            a.batch_remove_report(&batch, &mut out);
            assert_eq!(out, b.batch_remove(&batch), "len {batch_len}");
            assert_eq!(a.as_slice(), b.as_slice(), "len {batch_len}");
        }
    }

    #[test]
    fn point_mutators_edit_in_place() {
        let mut set = SortedArraySet::from_sorted(vec![2u64, 4, 6]);
        assert!(set.insert_one(&3));
        assert!(!set.insert_one(&3));
        assert!(set.remove_one(&4));
        assert!(!set.remove_one(&4));
        assert_eq!(set.as_slice(), &[2, 3, 6]);
    }

    #[test]
    fn publish_root_shares_the_array_and_stays_frozen() {
        let mut set = SortedArraySet::from_sorted((0..1_000u64).map(|i| i * 2).collect());
        let view = set.publish_root();
        // O(1) publication: no copy, just a second strong reference.
        assert_eq!(Arc::strong_count(&set.keys), 2);
        assert!(view.contains(&4) && !view.contains(&5));
        assert_eq!(view.len(), 1_000);

        // Every mutation flavour unshares the snapshot rather than editing it.
        assert!(set.insert_one(&5));
        assert!(set.remove_one(&0));
        set.batch_insert(&Batch::from_unsorted(vec![7u64, 9]));
        set.batch_remove(&Batch::from_unsorted(vec![2u64]));
        let mut out = Vec::new();
        set.batch_insert_report(&Batch::from_unsorted(vec![11u64]), &mut out);
        set.batch_remove_report(&Batch::from_unsorted(vec![4u64]), &mut out);
        assert!(!view.contains(&5), "snapshot saw a later insert");
        assert!(view.contains(&0), "snapshot saw a later remove");
        assert_eq!(view.len(), 1_000);
        assert!(set.contains(&11) && !set.contains(&4));
    }

    #[test]
    fn batch_ops_work_inside_a_pool() {
        let mut set = SortedArraySet::from_unsorted((0..10_000u64).map(|i| i * 3).collect());
        let batch = Batch::from_unsorted((0..50_000u64).map(|i| i % 20_000).collect());
        let pool = forkjoin::Pool::new(4).unwrap();
        let (hits, inserted) = pool.install(|| {
            let hits = set.batch_contains(&batch);
            let inserted = set.batch_insert(&batch);
            (hits, inserted)
        });
        for ((q, hit), ins) in batch.iter().zip(&hits).zip(&inserted) {
            assert_eq!(*hit, q % 3 == 0 && *q < 30_000, "query {q}");
            assert_eq!(*ins, !*hit, "query {q}");
            assert!(set.contains(q));
        }
        let removed = pool.install(|| set.batch_remove(&batch));
        assert!(removed.iter().all(|&r| r));
        // Exactly the multiples of 3 outside the batch's range remain.
        assert!(set.as_slice().iter().all(|k| *k >= 20_000));
        assert_eq!(set.len(), 10_000 - 6_667);
    }

    #[test]
    fn set_range_overrides_match_defaults() {
        let set = SortedArraySet::from_sorted((0..1_000u64).map(|i| i * 2).collect());
        assert_eq!(BatchedSet::publish_clone_keys(&set), 0);
        assert_eq!(
            set.range_keys(Bound::Included(&10), Bound::Excluded(&20)),
            vec![10, 12, 14, 16, 18]
        );
        assert_eq!(
            set.range_count(Bound::Excluded(&10), Bound::Included(&20)),
            5
        );
        assert_eq!(set.kth(0), Some(0));
        assert_eq!(set.kth(999), Some(1_998));
        assert_eq!(set.kth(1_000), None);
        assert_eq!(set.predecessor(&0), None);
        assert_eq!(set.successor(&1_998), None);
        assert_eq!(set.predecessor(&11), Some(10));
        assert_eq!(set.successor(&11), Some(12));
    }

    #[test]
    fn map_upserts_last_wins_and_answers_lookups() {
        let mut map =
            SortedArrayMap::from_unsorted_entries(vec![(3u64, "c"), (1, "a"), (3, "C"), (2, "b")]);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&3), Some("C"), "construction is last-wins");
        let flags = map.batch_insert_kv(&KvBatch::from_unsorted(vec![(2, "B"), (4, "d")]));
        assert_eq!(flags, vec![false, true]);
        assert_eq!(map.get(&2), Some("B"), "upsert overwrote");
        assert_eq!(map.get(&4), Some("d"));
        let gone = map.batch_remove(&Batch::from_unsorted(vec![1u64, 9]));
        assert_eq!(gone, vec![true, false]);
        assert_eq!(map.collect_entries(), vec![(2, "B"), (3, "C"), (4, "d")]);
        assert_eq!(
            map.batch_get(&Batch::from_unsorted(vec![2u64, 5])),
            vec![Some("B"), None]
        );
        assert_eq!(map.rank(&3), 1);
        assert!(map.contains_key(&3) && !map.contains_key(&5));
    }

    #[test]
    fn map_range_and_selection_match_btreemap() {
        use std::collections::BTreeMap;
        let entries: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i * 3, i)).collect();
        let oracle: BTreeMap<u64, u64> = entries.iter().copied().collect();
        let map = SortedArrayMap::from_sorted_entries(entries);
        for (lo, hi) in [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(&300), Bound::Excluded(&600)),
            (Bound::Excluded(&299), Bound::Included(&601)),
            (Bound::Included(&301), Bound::Excluded(&302)), // off-key, empty
        ] {
            let expected: Vec<(u64, u64)> = oracle
                .range((lo.cloned(), hi.cloned()))
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(map.range_entries(lo, hi), expected, "{lo:?}..{hi:?}");
            assert_eq!(map.range_count(lo, hi), expected.len());
        }
        assert_eq!(map.kth(0), Some((0, 0)));
        assert_eq!(map.kth(1_999), Some((5_997, 1_999)));
        assert_eq!(map.kth(2_000), None);
        assert_eq!(map.predecessor(&1), Some(0));
        assert_eq!(map.successor(&5_997), None);
    }

    #[test]
    fn map_clone_is_a_snapshot() {
        let mut map = SortedArrayMap::from_sorted_entries((0..100u64).map(|i| (i, i)).collect());
        let frozen = map.clone();
        map.batch_insert_kv(&KvBatch::from_unsorted(vec![(7u64, 700u64)]));
        assert_eq!(map.get(&7), Some(700));
        assert_eq!(frozen.get(&7), Some(7), "clone saw a later upsert");
    }
}
