//! Reference data structures the paper's tree is compared against.
//!
//! The simplest competitor to an interpolation search tree is a flat sorted
//! array: perfect space locality, `O(log n)` lookups, but no cheap updates.
//! [`SortedArraySet`] provides that baseline, including a batched lookup path
//! ([`SortedArraySet::batch_contains`]) that answers a whole query batch in
//! parallel through `parprim` — the same batch interface the `pbist` tree
//! exposes, so benchmark harnesses can treat both uniformly.

use std::fmt::Debug;

/// An immutable set of keys stored as one sorted, deduplicated array.
#[derive(Debug, Clone, Default)]
pub struct SortedArraySet<K: Ord> {
    keys: Vec<K>,
}

impl<K: Ord> SortedArraySet<K> {
    /// Builds a set from arbitrary keys; sorts and deduplicates them.
    pub fn from_unsorted(mut keys: Vec<K>) -> SortedArraySet<K> {
        keys.sort();
        keys.dedup();
        SortedArraySet { keys }
    }

    /// Builds a set from keys that are already sorted and deduplicated
    /// (checked with a `debug_assert!`).
    pub fn from_sorted(keys: Vec<K>) -> SortedArraySet<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        SortedArraySet { keys }
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns `true` when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    /// Number of keys strictly smaller than `key`.
    pub fn rank(&self, key: &K) -> usize {
        self.keys.partition_point(|k| k < key)
    }

    /// Answers one membership query per element of `queries`, in order.
    ///
    /// Runs the queries in parallel when called inside a
    /// [`forkjoin::Pool`](https://docs.rs/forkjoin) via `parprim::map`; on an
    /// ordinary thread it degrades to a sequential loop.
    pub fn batch_contains(&self, queries: &[K]) -> Vec<bool>
    where
        K: Sync,
    {
        parprim::map(queries, |q| self.contains(q))
    }

    /// The underlying sorted keys.
    pub fn as_slice(&self) -> &[K] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let set = SortedArraySet::from_unsorted(vec![5, 1, 3, 3, 1]);
        assert_eq!(set.as_slice(), &[1, 3, 5]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }

    #[test]
    fn contains_and_rank_agree_with_linear_scan() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let set = SortedArraySet::from_sorted(keys.clone());
        for probe in 0..1600u64 {
            assert_eq!(set.contains(&probe), keys.contains(&probe));
            assert_eq!(
                set.rank(&probe),
                keys.iter().filter(|&&k| k < probe).count()
            );
        }
    }

    #[test]
    fn batch_contains_matches_pointwise_queries() {
        let set = SortedArraySet::from_unsorted((0..1000u64).map(|i| i * 2).collect());
        let queries: Vec<u64> = (0..4096).map(|i| (i * 7) % 2500).collect();
        let batched = set.batch_contains(&queries);
        let pointwise: Vec<bool> = queries.iter().map(|q| set.contains(q)).collect();
        assert_eq!(batched, pointwise);
    }

    #[test]
    fn batch_contains_works_inside_a_pool() {
        let set = SortedArraySet::from_unsorted((0..10_000u64).collect());
        let queries: Vec<u64> = (0..50_000).map(|i| i % 20_000).collect();
        let pool = forkjoin::Pool::new(4).unwrap();
        let batched = pool.install(|| set.batch_contains(&queries));
        let pointwise: Vec<bool> = queries.iter().map(|q| set.contains(q)).collect();
        assert_eq!(batched, pointwise);
    }
}
