//! The last-value gauge.

use std::sync::atomic::{AtomicU64, Ordering};

/// A last-value metric: one `AtomicU64` holding the most recently stored
/// value, not a running total.
///
/// Counters answer "how many events so far"; a gauge answers "where does
/// some monotone (or wandering) quantity currently stand" — a durable
/// log's fsynced high-water sequence number, a queue depth, a segment's
/// byte position.  [`Gauge::set`] stores with `Release` and [`Gauge::get`]
/// loads with `Acquire`, so an observer that reads a gauge value also sees
/// every write the setter made before publishing it — the natural contract
/// for "everything up to seq *s* is on disk"-style marks.
///
/// [`Gauge::set_max`] is the lock-free monotone variant for racing
/// publishers: the gauge only ever moves forward.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Publishes a new value (`Release`: pairs with [`Gauge::get`]'s
    /// `Acquire`, ordering the setter's earlier writes before the read).
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Release);
    }

    /// Raises the gauge to `value` if that moves it forward; concurrent
    /// racing setters never move it backward.
    #[inline]
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::AcqRel);
    }

    /// Current value (`Acquire`; see [`Gauge::set`]).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn set_overwrites_and_get_reads_back() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3, "a gauge is last-value, not a sum");
        assert_eq!(Gauge::default().get(), 0);
    }

    #[test]
    fn set_max_is_monotone_under_races() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let g = Arc::clone(&g);
                thread::spawn(move || {
                    for i in 0..10_000u64 {
                        g.set_max(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 3 * 10_000 + 9_999);
        g.set_max(5);
        assert_eq!(g.get(), 39_999, "set_max never regresses");
    }
}
