//! The named-metric registry and its snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::hist::{HistSnapshot, Histogram};

/// A handle to one registered metric.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// Lookup is get-or-create and returns an `Arc` handle; callers clone
/// handles out **once** (at construction time) and hit the atomics
/// directly afterwards, so the registry mutex is never on a hot path — it
/// only serialises registration and [`Registry::snapshot`].
///
/// Names follow the workspace convention `<subsystem>.<metric>`
/// (lower-case, dot-separated); registering the same name as two different
/// metric kinds is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Counter(c) => f.debug_tuple("Counter").field(&c.get()).finish(),
            Metric::Gauge(g) => f.debug_tuple("Gauge").field(&g.get()).finish(),
            Metric::Histogram(h) => f
                .debug_tuple("Histogram")
                .field(&h.snapshot().count())
                .finish(),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a histogram.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a counter.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            Metric::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
        }
    }

    /// Captures every registered metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap();
        Snapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's last published value.
    Gauge(u64),
    /// A histogram's current state (boxed: a [`HistSnapshot`] is 65
    /// buckets wide, far larger than the counter variant).
    Histogram(Box<HistSnapshot>),
}

/// A point-in-time capture of a whole [`Registry`].
///
/// Ordered by name (`BTreeMap`), so [`Snapshot::to_json`] renders
/// deterministically — byte-identical across runs with identical counts,
/// which the bench JSON diffs rely on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// What changed since `earlier` was taken: counters subtract
    /// (saturating), histograms subtract per bucket.  Gauges are
    /// last-value, not accumulations — a delta carries the *current*
    /// value unchanged.  Metrics registered only after `earlier` appear
    /// unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, value)| {
                    let value = match (value, earlier.entries.get(name)) {
                        (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                            MetricValue::Counter(now.saturating_sub(*then))
                        }
                        (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                            MetricValue::Histogram(Box::new(now.delta(then)))
                        }
                        _ => value.clone(),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Renders the snapshot as one JSON object, metrics keyed by name in
    /// deterministic (sorted) order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            // Names come from in-tree call sites and follow the
            // `<subsystem>.<metric>` convention — no JSON escaping needed
            // beyond refusing the two structural characters outright.
            debug_assert!(
                !name.contains('"') && !name.contains('\\'),
                "metric name {name:?} needs escaping"
            );
            out.push_str(&format!("\"{name}\": "));
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => out.push_str(&h.to_json()),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x.count");
        let b = reg.counter("x.count");
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = reg.histogram("x.sizes");
        let h2 = reg.histogram("x.sizes");
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x.count");
        reg.histogram("x.count");
    }

    #[test]
    #[should_panic(expected = "registered as a gauge")]
    fn gauge_kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x.mark");
        reg.counter("x.mark");
    }

    #[test]
    fn gauges_snapshot_as_last_values() {
        let reg = Registry::new();
        let g1 = reg.gauge("d.mark");
        let g2 = reg.gauge("d.mark");
        assert!(Arc::ptr_eq(&g1, &g2), "get-or-create returns one handle");
        g1.set(17);
        let before = reg.snapshot();
        g1.set(12);
        let after = reg.snapshot();
        assert_eq!(before.gauge("d.mark"), Some(17));
        assert_eq!(after.gauge("d.mark"), Some(12));
        assert_eq!(after.counter("d.mark"), None, "kind-checked accessors");
        // Deltas carry the current value, not a difference: a gauge is a
        // position, and "position minus position" means nothing here.
        assert_eq!(after.delta(&before).gauge("d.mark"), Some(12));
        let json = after.to_json();
        assert!(json.contains("\"d.mark\": 12"), "{json}");
    }

    #[test]
    fn snapshot_delta_and_json() {
        let reg = Registry::new();
        let c = reg.counter("a.count");
        let h = reg.histogram("a.sizes");
        c.add(5);
        h.record(100);
        let before = reg.snapshot();
        c.add(2);
        h.record(200);
        let after = reg.snapshot();

        assert_eq!(after.counter("a.count"), Some(7));
        assert_eq!(after.histogram("a.sizes").unwrap().count(), 2);
        assert_eq!(after.counter("missing"), None);
        assert_eq!(after.histogram("a.count"), None);

        let delta = after.delta(&before);
        assert_eq!(delta.counter("a.count"), Some(2));
        let sizes = delta.histogram("a.sizes").unwrap();
        assert_eq!(sizes.count(), 1);
        assert_eq!(sizes.sum, 200);

        let json = after.to_json();
        assert!(json.contains("\"a.count\": 7"), "{json}");
        assert!(json.contains("\"a.sizes\": {"), "{json}");
        // Deterministic: same registry state renders identically.
        assert_eq!(json, reg.snapshot().to_json());
        assert_eq!(after.iter().count(), 2);
    }
}
