//! The monotone event counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter: one relaxed `AtomicU64`.
///
/// Two write disciplines, chosen per call site:
///
/// * [`Counter::inc`]/[`Counter::add`] — a relaxed `fetch_add`, safe for
///   any number of concurrent writers.  No increments are ever lost.
/// * [`Counter::add_single_writer`] — plain load + store, for counters
///   owned by exactly one writer at a time (a combiner holding its flag, a
///   deque's owning worker).  Cheaper than an RMW on contended cache lines,
///   and the `Release` store lets a reader's `Acquire` load
///   ([`Counter::get_acquire`]) order this counter against the writer's
///   earlier stores — the mechanism behind `combine`'s `ops >= rounds`
///   snapshot invariant.
///
/// Reads ([`Counter::get`]) are relaxed: exact once the writers are
/// quiescent, momentarily stale while they run.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one (relaxed RMW; any number of concurrent writers).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed RMW; any number of concurrent writers).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` with a plain load + `Release` store.
    ///
    /// # Contract
    ///
    /// At most one thread may call this (or any other write) at a time —
    /// increments race and get lost otherwise.  The typical owner is a
    /// thread holding an exclusive flag; the flag's release/acquire edge
    /// hands the write position to the next owner.
    #[inline]
    pub fn add_single_writer(&self, n: u64) {
        let v = self.value.load(Ordering::Relaxed);
        self.value.store(v + n, Ordering::Release);
    }

    /// Current value (relaxed; exact when writers are quiescent).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Current value with `Acquire`, ordering everything the writer stored
    /// before its `Release` write of this counter.
    #[inline]
    pub fn get_acquire(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_counting() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add_single_writer(5);
        assert_eq!(c.get(), 10);
        assert_eq!(c.get_acquire(), 10);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn concurrent_rmw_adds_lose_nothing() {
        let c = Arc::new(Counter::new());
        let threads = 4;
        let per = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads * per);
    }
}
