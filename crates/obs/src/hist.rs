//! The fixed-bucket power-of-two histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero, one per power of two of the
/// `u64` range.
pub const BUCKETS: usize = 65;

/// Maps a value to its bucket: bucket 0 holds exactly `0`, bucket `i >= 1`
/// holds `2^(i-1) <= v < 2^i` (the last bucket's upper bound saturates at
/// `u64::MAX`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
///
/// # Panics
///
/// Panics when `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index == 0 {
        return (0, 0);
    }
    let lo = 1u64 << (index - 1);
    let hi = if index == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    };
    (lo, hi)
}

/// A lock-free histogram over power-of-two buckets.
///
/// [`Histogram::record`] is two relaxed `fetch_add`s (bucket + running
/// sum); any number of threads may record concurrently and no sample is
/// ever lost.  [`Histogram::snapshot`] reads the buckets relaxed, so a
/// snapshot taken while writers run may be mid-sample (bucket counted, sum
/// not yet) — exact once writers are quiescent, like every counter in this
/// crate.
///
/// Power-of-two buckets trade resolution for a fixed 65-slot footprint
/// with branch-free indexing (`leading_zeros`); for the quantities this
/// workspace tracks — nanosecond latencies spanning 6 orders of magnitude,
/// round/batch sizes — within-2× resolution is the right trade.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (lock-free, concurrent-writer safe).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Captures the current bucket counts and sum.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable, subtractable,
/// renderable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`] for ranges).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Per-bucket sum of two snapshots.  Saturating, which keeps merging
    /// associative and commutative even at the (never realistic) `u64`
    /// boundary — per-worker histograms can be folded in any order.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// What was recorded since `earlier` was taken (per-bucket saturating
    /// subtraction; both snapshots must come from the same histogram for
    /// the result to mean anything).
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`); `0` when empty.  An upper bound — the
    /// true quantile lies within a factor of 2 below it.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Renders the snapshot as a JSON object: `count`, `sum`, `mean`,
    /// `p50`/`p99` upper bounds, and the non-empty buckets as
    /// `[lo, hi, count]` triples.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            if !buckets.is_empty() {
                buckets.push_str(", ");
            }
            buckets.push_str(&format!("[{lo}, {hi}, {c}]"));
        }
        format!(
            "{{\"count\": {}, \"sum\": {}, \"mean\": {:.2}, \"p50\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
            self.count(),
            self.sum,
            self.mean(),
            self.quantile_upper_bound(0.5),
            self.quantile_upper_bound(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Every bucket's bounds round-trip through `bucket_index`, and the
    /// values one past each boundary land in the neighbouring bucket.
    #[test]
    fn bucket_boundaries_are_exact() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_index(hi + 1), i + 1, "hi+1 of bucket {i}");
                assert_eq!(bucket_bounds(i + 1).0, hi + 1, "buckets {i},{} abut", i + 1);
            }
            if i > 0 {
                assert_eq!(bucket_index(lo - 1), i - 1, "lo-1 of bucket {i}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    fn snap_of(values: &[u64]) -> HistSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = snap_of(&[0, 1, 1, 7, 900, u64::MAX]);
        let b = snap_of(&[2, 3, 64, 64, 64]);
        let c = snap_of(&[5, 1 << 40, 1 << 41]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // Identity and counts add up.
        let empty = HistSnapshot::default();
        assert_eq!(a.merge(&empty), a);
        assert_eq!(a.merge(&b).count(), a.count() + b.count());
        assert_eq!(a.merge(&b).sum, a.sum + b.sum);
    }

    /// Four threads hammer one histogram; the result must equal the same
    /// samples recorded sequentially — no sample lost, none misfiled.
    #[test]
    fn concurrent_record_matches_sequential_count() {
        let hammer_threads = 4u64;
        let per_thread = 100_000u64;
        let sample = |t: u64, i: u64| {
            // SplitMix64 so the samples spray across buckets deterministically.
            let mut z = (t << 32 | i).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 1_000_000
        };

        let shared = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..hammer_threads)
            .map(|t| {
                let h = Arc::clone(&shared);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(sample(t, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let sequential = Histogram::new();
        for t in 0..hammer_threads {
            for i in 0..per_thread {
                sequential.record(sample(t, i));
            }
        }
        assert_eq!(shared.snapshot(), sequential.snapshot());
        assert_eq!(shared.snapshot().count(), hammer_threads * per_thread);
    }

    #[test]
    fn snapshot_delta_isolates_the_new_samples() {
        let h = Histogram::new();
        for v in [1u64, 5, 5, 300] {
            h.record(v);
        }
        let before = h.snapshot();
        for v in [2u64, 5, 1 << 20] {
            h.record(v);
        }
        let after = h.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta, snap_of(&[2, 5, 1 << 20]));
        // delta(x, x) is empty; before + delta reassembles after.
        assert_eq!(after.delta(&after), HistSnapshot::default());
        assert_eq!(before.merge(&delta), after);
    }

    #[test]
    fn quantiles_and_json_render() {
        let s = snap_of(&[0, 1, 2, 4, 8, 1000]);
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1015);
        // p0 is the smallest non-empty bucket's upper bound; p100 the largest.
        assert_eq!(s.quantile_upper_bound(0.0), 0);
        assert_eq!(s.quantile_upper_bound(1.0), 1023);
        assert!(s.quantile_upper_bound(0.5) <= 7);
        assert_eq!(HistSnapshot::default().quantile_upper_bound(0.5), 0);

        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"count\": 6"), "{json}");
        assert!(json.contains("[512, 1023, 1]"), "{json}");
        assert_eq!(HistSnapshot::default().to_json().matches("[[").count(), 0);
    }
}
