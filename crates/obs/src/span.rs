//! Span-style tracing into a bounded ring buffer.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span: a labelled begin/end pair with an op count,
/// timestamped in nanoseconds relative to its ring's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone sequence number (counts every span ever recorded, including
    /// ones the ring has since dropped).
    pub seq: u64,
    /// What the span covers (e.g. `"round"`).
    pub label: &'static str,
    /// How many operations the span covered.
    pub ops: u64,
    /// Span start, nanoseconds since the ring was created.
    pub start_ns: u64,
    /// Span end, nanoseconds since the ring was created.
    pub end_ns: u64,
}

struct RingInner {
    spans: VecDeque<SpanRecord>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`SpanRecord`]s.
///
/// Begin a span with [`TraceRing::span`] (or the [`trace_round`]
/// convenience wrapper); the returned guard records one entry when
/// dropped.  When the ring is full the oldest record is evicted and
/// counted in [`TraceRing::dropped`] — tracing is a bounded-memory
/// diagnostic, never an unbounded log.
///
/// Recording takes a mutex, so this is for *round*-grained events
/// (hundreds of ns of work or more), not per-operation hot paths — the
/// per-op story is [`Counter`](crate::Counter) and
/// [`Histogram`](crate::Histogram).
#[derive(Debug)]
pub struct TraceRing {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInner")
            .field("len", &self.spans.len())
            .field("next_seq", &self.next_seq)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                spans: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Begins a span; the returned guard records it when dropped.
    pub fn span(&self, label: &'static str, ops: u64) -> Span<'_> {
        Span {
            ring: self,
            label,
            ops,
            start: Instant::now(),
        }
    }

    /// Number of spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Whether no spans are currently held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Drains and returns the held spans, oldest first.  Sequence numbers
    /// and the dropped count are *not* reset: `seq` stays a global order
    /// across drains.
    pub fn take(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.drain(..).collect()
    }

    /// Renders the held spans (without draining) as a JSON object with the
    /// dropped count.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut spans = String::new();
        for (i, s) in inner.spans.iter().enumerate() {
            if i > 0 {
                spans.push_str(", ");
            }
            spans.push_str(&format!(
                "{{\"seq\": {}, \"label\": \"{}\", \"ops\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
                s.seq, s.label, s.ops, s.start_ns, s.end_ns
            ));
        }
        format!("{{\"dropped\": {}, \"spans\": [{spans}]}}", inner.dropped)
    }

    fn push(&self, label: &'static str, ops: u64, start: Instant, end: Instant) {
        let since = |t: Instant| {
            t.saturating_duration_since(self.epoch)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.spans.push_back(SpanRecord {
            seq,
            label,
            ops,
            start_ns: since(start),
            end_ns: since(end),
        });
    }
}

/// An in-flight span; records into its ring when dropped.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span<'a> {
    ring: &'a TraceRing,
    label: &'static str,
    ops: u64,
    start: Instant,
}

impl Span<'_> {
    /// Updates the span's op count (e.g. once the round has been drained
    /// and counted).
    pub fn set_ops(&mut self, ops: u64) {
        self.ops = ops;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.ring
            .push(self.label, self.ops, self.start, Instant::now());
    }
}

/// Begins a combiner-round span covering `ops` operations: round begin is
/// now, round end is when the returned guard drops.
pub fn trace_round(ring: &TraceRing, ops: u64) -> Span<'_> {
    ring.span("round", ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_label_ops_and_order() {
        let ring = TraceRing::new(8);
        {
            let _a = trace_round(&ring, 3);
        }
        {
            let _b = ring.span("flush", 1);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        let spans = ring.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "round");
        assert_eq!(spans[0].ops, 3);
        assert_eq!(spans[0].seq, 0);
        assert_eq!(spans[1].label, "flush");
        assert_eq!(spans[1].seq, 1);
        assert!(spans[0].end_ns >= spans[0].start_ns);
        // Drained.
        assert!(ring.is_empty());
        assert!(ring.take().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = TraceRing::new(2);
        for i in 0..5u64 {
            let mut s = trace_round(&ring, 0);
            s.set_ops(i);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let spans = ring.take();
        // The two newest survive, with global sequence numbers.
        assert_eq!(spans[0].ops, 3);
        assert_eq!(spans[0].seq, 3);
        assert_eq!(spans[1].ops, 4);
        assert_eq!(spans[1].seq, 4);
    }

    #[test]
    fn json_renders_spans_and_drop_count() {
        let ring = TraceRing::new(1);
        drop(trace_round(&ring, 7));
        drop(trace_round(&ring, 9));
        let json = ring.to_json();
        assert!(json.contains("\"dropped\": 1"), "{json}");
        assert!(json.contains("\"ops\": 9"), "{json}");
        assert!(!json.contains("\"ops\": 7"), "{json}");
        // Rendering does not drain.
        assert_eq!(ring.len(), 1);
        // Zero capacity clamps to one.
        assert_eq!(
            TraceRing::new(0).to_json(),
            "{\"dropped\": 0, \"spans\": []}"
        );
    }
}
