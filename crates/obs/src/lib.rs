//! Std-only metrics and tracing substrate for the workspace.
//!
//! The ROADMAP's measurement problem is that the bench box has one core:
//! flat-combining rounds collapse to size ≈ 1 and contention never
//! materialises, so wall-clock scaling says little.  Credible performance
//! claims must instead lean on *algorithmic* counters — round sizes, steal
//! counts, nodes touched, rebuild work — which is exactly what this crate
//! provides, with a hot-path cost low enough to thread through a 20 ns
//! `join`.
//!
//! # Pieces
//!
//! * [`Counter`] — a relaxed `AtomicU64`.  Concurrent writers use
//!   [`Counter::inc`]/[`Counter::add`] (one relaxed RMW); a single-writer
//!   discipline (e.g. the flat-combining combiner) can use
//!   [`Counter::add_single_writer`] (plain load + store, no RMW).
//! * [`Gauge`] — a last-value metric (`Release` set / `Acquire` get, plus
//!   a monotone [`Gauge::set_max`]), for quantities that *stand* somewhere
//!   rather than accumulate: a durable log's fsynced high-water sequence
//!   number, a segment's byte position.
//! * [`Histogram`] — fixed power-of-two buckets, lock-free record, and
//!   mergeable/subtractable [`HistSnapshot`]s.  Works for nanosecond
//!   latencies and size distributions alike.
//! * [`Registry`] — named metrics with get-or-create handle lookup
//!   ([`Registry::counter`]/[`Registry::histogram`]); handles are `Arc`s
//!   cloned out once, so hot paths never touch the registry lock.  A
//!   [`Snapshot`] captures every metric at once and supports
//!   [`Snapshot::delta`] and deterministic JSON rendering.
//! * [`Obs`] — the zero-cost-when-disabled guard: a `#[cfg]`-free runtime
//!   flag.  Every instrumentation site routes through an `#[inline]` method
//!   that tests the flag first, so a disabled guard is a single
//!   loop-invariant branch the optimiser hoists; the benches assert the
//!   disabled-mode overhead stays under 2 ns/op
//!   ([`measure_disabled_overhead`]).
//! * [`TraceRing`] / [`trace_round`] — span-style tracing: bounded ring of
//!   begin/end records with op counts, dumpable as JSON.  The seed of the
//!   service-tier observability directory the ROADMAP's sharding item
//!   calls for.
//!
//! # Naming convention
//!
//! Registry names are dot-separated, lower-case, `<subsystem>.<metric>`:
//! `combine.rounds`, `combine.round_size`.  Per-instance metrics that never
//! go through a registry (the scheduler's per-worker counters, the tree's
//! node-touch counters) are plain struct fields snapshotted by their owner.
//!
//! # Example
//!
//! ```
//! let reg = obs::Registry::new();
//! let rounds = reg.counter("combine.rounds");
//! let sizes = reg.histogram("combine.round_size");
//!
//! let obs = obs::Obs::enabled();
//! obs.hit(&rounds);
//! obs.record(&sizes, 17);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("combine.rounds"), Some(1));
//! assert_eq!(snap.histogram("combine.round_size").unwrap().count(), 1);
//! ```

#![warn(missing_docs)]

mod counter;
mod gauge;
mod hist;
mod registry;
mod span;

pub use counter::Counter;
pub use gauge::Gauge;
pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot};
pub use span::{trace_round, Span, SpanRecord, TraceRing};

use std::time::Instant;

/// The zero-cost-when-disabled instrumentation guard.
///
/// A runtime flag, not a `#[cfg]`: the same binary can run instrumented and
/// uninstrumented, which is what lets the benches time an uninstrumented
/// pass and collect telemetry from an instrumented one without rebuilding.
/// Every helper is `#[inline]` and tests the flag first; inside a hot loop
/// the branch is loop-invariant, so the disabled path optimises to nothing
/// measurable (asserted to < 2 ns/op by the bench harness via
/// [`measure_disabled_overhead`]).
///
/// `Copy`, one byte: embed it by value wherever instrumentation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obs {
    enabled: bool,
}

impl Obs {
    /// A guard whose instrumentation sites are live.
    pub const fn enabled() -> Obs {
        Obs { enabled: true }
    }

    /// A guard whose instrumentation sites compile to a skipped branch.
    pub const fn disabled() -> Obs {
        Obs { enabled: false }
    }

    /// Guard from a runtime flag.
    pub const fn new(enabled: bool) -> Obs {
        Obs { enabled }
    }

    /// Whether instrumentation sites are live.
    #[inline(always)]
    pub fn is_enabled(self) -> bool {
        self.enabled
    }

    /// Increments `counter` by one when enabled.
    #[inline(always)]
    pub fn hit(self, counter: &Counter) {
        if self.enabled {
            counter.inc();
        }
    }

    /// Adds `n` to `counter` when enabled.
    #[inline(always)]
    pub fn add(self, counter: &Counter, n: u64) {
        if self.enabled {
            counter.add(n);
        }
    }

    /// Records `value` into `hist` when enabled.
    #[inline(always)]
    pub fn record(self, hist: &Histogram, value: u64) {
        if self.enabled {
            hist.record(value);
        }
    }

    /// Reads the clock when enabled; `None` otherwise.  Pairs with
    /// [`Obs::record_since`], so a disabled guard never pays for an
    /// `Instant::now()` — on some systems a vDSO call dwarfing the guarded
    /// work itself.
    #[inline(always)]
    pub fn now(self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the nanoseconds elapsed since `start` (obtained from
    /// [`Obs::now`]) into `hist`; no-op when `start` is `None`.
    #[inline(always)]
    pub fn record_since(self, hist: &Histogram, start: Option<Instant>) {
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            hist.record(ns);
        }
    }
}

/// Measures the per-operation overhead, in nanoseconds, that a *disabled*
/// [`Obs`] guard adds to a tight loop — the number the benches assert stays
/// under 2 ns/op.
///
/// Two loops of `iters` iterations run `reps` times each: a baseline
/// (wrapping add of a black-boxed index) and the same loop with one
/// [`Obs::hit`] through a disabled guard.  The minimum time of each variant
/// is compared; the result can be slightly negative on a noisy machine,
/// which callers should treat as zero overhead.
pub fn measure_disabled_overhead(iters: u64, reps: usize) -> f64 {
    use std::hint::black_box;

    // Black-boxed so the compiler cannot constant-fold the flag away — this
    // must measure the runtime branch, not a `#[cfg]`.
    let obs = black_box(Obs::disabled());
    let counter = Counter::new();
    let mut best_base = f64::INFINITY;
    let mut best_guarded = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_add(black_box(i));
        }
        black_box(acc);
        best_base = best_base.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_add(black_box(i));
            obs.hit(&counter);
        }
        black_box(acc);
        black_box(counter.get());
        best_guarded = best_guarded.min(start.elapsed().as_secs_f64());
    }
    (best_guarded - best_base) * 1e9 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_touches_nothing() {
        let obs = Obs::disabled();
        let c = Counter::new();
        let h = Histogram::new();
        obs.hit(&c);
        obs.add(&c, 10);
        obs.record(&h, 5);
        assert!(obs.now().is_none());
        obs.record_since(&h, obs.now());
        assert!(!obs.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn enabled_guard_counts_and_times() {
        let obs = Obs::new(true);
        let c = Counter::new();
        let h = Histogram::new();
        obs.hit(&c);
        obs.add(&c, 9);
        obs.record(&h, 3);
        let t = obs.now();
        assert!(t.is_some());
        obs.record_since(&h, t);
        assert_eq!(c.get(), 10);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn overhead_measurement_returns_finite_small_number() {
        // Smoke only (debug builds are slow and unoptimised); the < 2 ns
        // release-mode assertion lives in the bench harness.
        let ns = measure_disabled_overhead(10_000, 3);
        assert!(ns.is_finite());
        assert!(ns.abs() < 1_000.0, "implausible overhead: {ns} ns/op");
    }
}
