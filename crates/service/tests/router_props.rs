//! Router property tests: splitting a batch across shards and stitching
//! the per-shard results must be observationally equivalent to running the
//! whole batch against a single unsharded backend.
//!
//! The reference is a plain [`baselines::SortedArraySet`] driven through
//! the [`batchapi::BatchedSet`] surface — sequential, so any divergence is
//! the router's fault, not a concurrency artefact.

use batchapi::{Batch, BatchedSet};
use combine::ConcurrentSet;
use forkjoin::Pool;
use service::{HashRouter, RangeRouter, ShardRouter, ShardedOptions, ShardedSet};
use workloads::{mixed_op_batches, OpKind};

/// Builds a tier whose shards are `SortedArraySet`s, so the sharded and
/// unsharded sides run the very same backend code.
fn tier<R: ShardRouter<u64> + Sync>(
    router: R,
    parallel_cutoff: usize,
) -> ShardedSet<u64, baselines::SortedArraySet<u64>, R> {
    let shards = (0..router.num_shards())
        .map(|_| {
            ConcurrentSet::new(
                baselines::SortedArraySet::from_unsorted(Vec::new()),
                Pool::new(1).expect("shard pool"),
            )
        })
        .collect();
    ShardedSet::with_options(
        router,
        shards,
        Pool::new(2).expect("tier pool"),
        ShardedOptions { parallel_cutoff },
    )
}

/// Runs the same batched op script against the sharded tier and the
/// unsharded reference; every per-op result vector must match, and so must
/// the final contents.
fn assert_split_then_stitch_equivalence<R: ShardRouter<u64> + Sync>(
    router: R,
    ops: &[(OpKind, Batch<u64>)],
    parallel_cutoff: usize,
    ctx: &str,
) {
    let sharded = tier(router, parallel_cutoff);
    let mut reference = baselines::SortedArraySet::from_unsorted(Vec::new());

    for (step, (kind, batch)) in ops.iter().enumerate() {
        let (got, want) = match kind {
            OpKind::Contains => (
                sharded.batch_contains(batch),
                reference.batch_contains(batch),
            ),
            OpKind::Insert => (sharded.batch_insert(batch), reference.batch_insert(batch)),
            OpKind::Remove => (sharded.batch_remove(batch), reference.batch_remove(batch)),
        };
        assert_eq!(
            got,
            want,
            "{ctx}: step {step} ({kind:?}, {} keys) diverged from the unsharded reference",
            batch.len()
        );
    }

    assert_eq!(
        sharded.len(),
        reference.len(),
        "{ctx}: final sizes diverged"
    );
    let mut union: Vec<u64> = sharded
        .into_shards()
        .into_iter()
        .flat_map(|shard| shard.into_inner().as_slice().to_vec())
        .collect();
    union.sort_unstable();
    assert_eq!(
        union,
        reference.as_slice().to_vec(),
        "{ctx}: union of shard contents != reference contents"
    );
}

fn mixed_script(
    seed: u64,
    batches: usize,
    batch_len: usize,
    range: u64,
) -> Vec<(OpKind, Batch<u64>)> {
    mixed_op_batches(seed, batches, batch_len, 0..range, (2, 2, 1))
        .into_iter()
        .map(|op| (op.kind, Batch::from_unsorted(op.keys)))
        .collect()
}

#[test]
fn range_router_matches_unsharded_reference() {
    for shards in [1usize, 2, 3, 4, 8] {
        for cutoff in [0usize, usize::MAX] {
            assert_split_then_stitch_equivalence(
                RangeRouter::new(shards, 0, 10_000),
                &mixed_script(0xA11CE ^ shards as u64, 40, 64, 10_000),
                cutoff,
                &format!("range router, {shards} shards, cutoff {cutoff}"),
            );
        }
    }
}

#[test]
fn hash_router_matches_unsharded_reference() {
    for shards in [1usize, 3, 4, 8] {
        assert_split_then_stitch_equivalence(
            HashRouter::new(shards),
            &mixed_script(0xB0B ^ shards as u64, 40, 64, 10_000),
            0,
            &format!("hash router, {shards} shards"),
        );
    }
}

#[test]
fn batches_with_empty_sub_batches_round_trip() {
    // All keys land in shard 0's slice of [0, 10_000), so shards 1..4 get
    // empty sub-batches on every op.
    let narrow: Vec<Batch<u64>> = (0..8)
        .map(|i| Batch::from_unsorted((0..32).map(|j| i * 37 + j * 3).collect()))
        .collect();
    let mut ops = Vec::new();
    for (i, batch) in narrow.iter().enumerate() {
        let kind = match i % 3 {
            0 => OpKind::Insert,
            1 => OpKind::Contains,
            _ => OpKind::Remove,
        };
        ops.push((kind, batch.clone()));
    }
    assert_split_then_stitch_equivalence(
        RangeRouter::new(4, 0, 10_000),
        &ops,
        0,
        "range router, all keys in shard 0",
    );

    // And confirm the split itself really produced empty sub-batches.
    let router = RangeRouter::new(4, 0u64, 10_000);
    let split = router.split(&narrow[0]);
    assert!(split.sub_batches()[1..].iter().all(Batch::is_empty));
    assert_eq!(split.sub_batches()[0].len(), narrow[0].len());
}

#[test]
fn boundary_keys_on_shard_edges_route_consistently() {
    // Keys sitting exactly on the shard-boundary ordinals of a 4-way
    // split of [0, 100]: 25, 50, 75 — plus both range endpoints and their
    // neighbours.  Consistency (same shard for point and batched paths)
    // is what matters, not which side of the edge each key falls on.
    let router = RangeRouter::new(4, 0u64, 100);
    let edges = Batch::from_unsorted(vec![0u64, 24, 25, 26, 49, 50, 51, 74, 75, 76, 99, 100]);

    let split = router.split(&edges);
    assert_eq!(split.total_len(), edges.len());
    for (shard, sub) in split.sub_batches().iter().enumerate() {
        for key in sub.as_slice() {
            assert_eq!(
                router.shard_of(key),
                shard,
                "key {key} carved into sub-batch {shard} but routed elsewhere"
            );
        }
    }

    let ops = vec![
        (OpKind::Insert, edges.clone()),
        (OpKind::Contains, edges.clone()),
        (OpKind::Remove, edges.clone()),
        (OpKind::Insert, edges),
    ];
    assert_split_then_stitch_equivalence(
        RangeRouter::new(4, 0u64, 100),
        &ops,
        0,
        "range router, boundary keys",
    );
}

#[test]
fn out_of_range_keys_still_route_and_match() {
    // RangeRouter clamps keys outside [min, max] into the edge shards;
    // results must still match the unsharded reference.
    let wild = Batch::from_unsorted(vec![0u64, 5, 9_999, 50_000, u64::MAX]);
    let ops = vec![
        (OpKind::Insert, wild.clone()),
        (OpKind::Contains, wild.clone()),
        (OpKind::Remove, wild),
    ];
    assert_split_then_stitch_equivalence(
        RangeRouter::new(4, 100u64, 9_000),
        &ops,
        0,
        "range router, out-of-range keys",
    );
}
