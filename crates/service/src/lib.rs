//! Sharded service tier: a batch-splitting router over N flat-combining
//! front-ends.
//!
//! One [`combine::ConcurrentSet`] is one combiner — one serialisation
//! point, no matter how many clients publish into it.  This crate is the
//! production answer the ROADMAP calls for: partition the key space across
//! `N` shards, each its own `ConcurrentSet` over its own backend, and route
//! traffic at two granularities:
//!
//! * **Point ops** ([`ShardedSet::insert`] / [`ShardedSet::remove`] /
//!   [`ShardedSet::contains`]) go straight to the owning shard — one
//!   [`ShardRouter::shard_of`] call of routing overhead on top of the
//!   shard's own fast path.
//! * **Batched ops** ([`ShardedSet::batch_insert`] and friends) split one
//!   incoming sorted [`Batch`] into per-shard sub-batches
//!   ([`ShardRouter::split`] — for the range router a handful of narrowing
//!   binary searches whose offsets are the exclusive scan of per-shard
//!   counts, exactly the carve `pbist`'s joint traversal performs at every
//!   inner node), execute the sub-batches (in parallel on the tier's
//!   fork-join pool once the batch is large enough), and stitch per-op
//!   results back into batch order by carving the output at the same
//!   offsets.
//!
//! # Routing contract
//!
//! The router's assignment is total and stable, so **every operation on a
//! key — point or batched — executes on the same shard**, and each shard
//! serialises its operations through its combiner.  The tier therefore
//! guarantees **per-shard linearizability**: restricted to any one shard's
//! key range, the concurrent history is linearizable (each shard's commit
//! log is a witness, replayable against a sequential oracle — the
//! `service_stress` suite does exactly that).
//!
//! There is **no cross-shard ordering guarantee**.  Two operations on keys
//! of different shards commit independently; a client that observes op A
//! on shard 1 and then issues op B on shard 2 gets no promise that another
//! client sees them in that order.  Aggregates over several shards
//! ([`ShardedSet::len`], and the ordered queries [`ShardedSet::range_keys`]
//! / [`ShardedSet::range_count`] / [`ShardedSet::predecessor`] /
//! [`ShardedSet::successor`] / [`ShardedSet::kth`]) are sums or stitches
//! of per-shard linearisation points taken at different instants, not a
//! consistent cut.  This is the standard
//! sharded-store contract; callers needing cross-shard atomicity must add
//! a coordination layer on top.
//!
//! # Durability
//!
//! [`DurableTier`] is the persistent variant: the same router contract
//! over one [`durable::DurableSet`] per shard, each persisting its key
//! range in its own subdirectory (WAL + snapshots), with tier-wide
//! recovery on open.  See [`durable_tier`](DurableTier)'s docs.
//!
//! # Poisoning
//!
//! A backend panic mid-round poisons its shard (see
//! [`combine`'s poisoning contract](combine::ConcurrentSet#poisoning)) and
//! — as soon as the tier observes it — the whole tier: the panic
//! propagates to the issuing client, every later tier operation panics
//! fast, and clients blocked on *other* shards either complete normally or
//! observe the tier-level poison.  Nothing hangs.
//!
//! # Example
//!
//! ```
//! use service::{RangeRouter, ShardedSet};
//!
//! let router = RangeRouter::new(4, 0u64, 10_000);
//! let set = ShardedSet::new(
//!     router,
//!     (0..4)
//!         .map(|_| {
//!             combine::ConcurrentSet::new(
//!                 pbist::IstSet::from_unsorted(Vec::new()),
//!                 forkjoin::Pool::new(1).expect("shard pool"),
//!             )
//!         })
//!         .collect(),
//!     forkjoin::Pool::new(2).expect("tier pool"),
//! );
//!
//! assert!(set.insert(7));
//! let batch = batchapi::Batch::from_unsorted(vec![7u64, 2_500, 9_999]);
//! assert_eq!(set.batch_insert(&batch), vec![false, true, true]);
//! assert_eq!(set.batch_contains(&batch), vec![true, true, true]);
//! assert_eq!(set.len(), 3);
//! ```

#![warn(missing_docs)]

mod durable_tier;
mod router;

pub use durable_tier::DurableTier;
pub use router::{HashRouter, RangeRouter, ShardRouter, SplitBatch};

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use batchapi::{Batch, BatchedSet};
use combine::{ConcurrentSet, OpKind, Round};
use forkjoin::Pool;
use obs::{Counter, Histogram, Registry, Snapshot};

/// Construction-time knobs for [`ShardedSet`].
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Batches with at least this many keys execute their per-shard
    /// sub-batches in parallel on the tier's fork-join pool; smaller ones
    /// run the shards sequentially on the issuing thread (a pool
    /// round-trip costs more than a couple of small sub-batches).  `0`
    /// forces every split batch through the pool; `usize::MAX` keeps
    /// everything sequential.
    pub parallel_cutoff: usize,
}

impl Default for ShardedOptions {
    fn default() -> ShardedOptions {
        ShardedOptions {
            parallel_cutoff: 256,
        }
    }
}

/// Handles cloned out of the tier registry once at construction, so the
/// routing paths hit the atomics directly.
struct ServiceMetrics {
    /// `service.batches_split` — incoming batches split across shards.
    batches_split: Arc<Counter>,
    /// `service.point_ops` — point operations routed to a shard.
    point_ops: Arc<Counter>,
    /// `service.range_ops` — ordered queries fanned out to every shard
    /// (`range_keys` / `range_count` / `predecessor` / `successor` /
    /// `kth`).
    range_ops: Arc<Counter>,
    /// `service.empty_subbatches` — sub-batches that received no keys
    /// (their shard was skipped for that batch).
    empty_subbatches: Arc<Counter>,
    /// `service.poisoned` — shard panics observed (and promoted) by the
    /// tier.
    poisoned: Arc<Counter>,
    /// `service.subbatch_size` — keys per non-empty per-shard sub-batch.
    subbatch_size: Arc<Histogram>,
}

impl ServiceMetrics {
    fn new(registry: &Registry) -> ServiceMetrics {
        ServiceMetrics {
            batches_split: registry.counter("service.batches_split"),
            point_ops: registry.counter("service.point_ops"),
            range_ops: registry.counter("service.range_ops"),
            empty_subbatches: registry.counter("service.empty_subbatches"),
            poisoned: registry.counter("service.poisoned"),
            subbatch_size: registry.histogram("service.subbatch_size"),
        }
    }
}

/// Promotes a shard panic to tier-level poison on unwind.  Scoped tightly
/// around each delegation into a shard, so only a panic *escaping a shard
/// operation* (the shard's own poison panic, or the backend panic that
/// caused it) trips the tier flag.
struct PoisonOnUnwind<'a> {
    poisoned: &'a AtomicBool,
    counter: &'a Counter,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // SeqCst mirrors the shard-level poison store: the flag must be
            // visible to every fenced re-check before the unwind finishes
            // releasing whatever the panicking client held.
            if !self.poisoned.swap(true, Ordering::SeqCst) {
                self.counter.inc();
            }
        }
    }
}

/// A concurrent ordered set partitioned across `N`
/// [`combine::ConcurrentSet`] shards by a [`ShardRouter`].
///
/// See the [module docs](self) for the routing contract (per-shard
/// linearizability, no cross-shard ordering) and the poisoning semantics.
/// Shared by reference (typically `Arc`); all operations take `&self`.
pub struct ShardedSet<K, S, R> {
    router: R,
    shards: Vec<ConcurrentSet<K, S>>,
    /// Tier pool executing per-shard sub-batches in parallel.  Distinct
    /// from every shard's own pool, so a tier worker blocking on a shard
    /// combiner can never form a wait cycle.
    pool: Pool,
    parallel_cutoff: usize,
    /// Tier-level poison flag; set when any delegation into a shard
    /// unwinds.  Checked first by every tier operation.
    poisoned: AtomicBool,
    registry: Registry,
    metrics: ServiceMetrics,
}

impl<K, S, R> ShardedSet<K, S, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    S: BatchedSet<K> + Send,
    R: ShardRouter<K> + Sync,
{
    /// Builds a tier from a router, its shards (one `ConcurrentSet` per
    /// router shard, index-aligned), and the tier pool, with default
    /// [`ShardedOptions`].
    ///
    /// # Panics
    ///
    /// Panics when `shards.len() != router.num_shards()` or no shards are
    /// given.
    pub fn new(router: R, shards: Vec<ConcurrentSet<K, S>>, pool: Pool) -> ShardedSet<K, S, R> {
        ShardedSet::with_options(router, shards, pool, ShardedOptions::default())
    }

    /// [`ShardedSet::new`] with explicit [`ShardedOptions`].
    pub fn with_options(
        router: R,
        shards: Vec<ConcurrentSet<K, S>>,
        pool: Pool,
        options: ShardedOptions,
    ) -> ShardedSet<K, S, R> {
        assert!(!shards.is_empty(), "a tier needs at least one shard");
        assert_eq!(
            shards.len(),
            router.num_shards(),
            "router partitions {} ways but {} shards were given",
            router.num_shards(),
            shards.len()
        );
        let registry = Registry::new();
        let metrics = ServiceMetrics::new(&registry);
        ShardedSet {
            router,
            shards,
            pool,
            parallel_cutoff: options.parallel_cutoff,
            poisoned: AtomicBool::new(false),
            registry,
            metrics,
        }
    }

    /// Number of shards in the tier.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The tier's router.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Inserts `key` on its owning shard, returning `true` iff it was
    /// newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the tier is [poisoned](self#poisoning) (same for every
    /// other operation).
    pub fn insert(&self, key: K) -> bool {
        self.check_poisoned();
        self.metrics.point_ops.inc();
        let shard = self.router.shard_of(&key);
        let _promote = self.poison_guard();
        self.shards[shard].insert(key)
    }

    /// Removes `key` from its owning shard, returning `true` iff it was
    /// present.
    pub fn remove(&self, key: &K) -> bool {
        self.check_poisoned();
        self.metrics.point_ops.inc();
        let _promote = self.poison_guard();
        self.shards[self.router.shard_of(key)].remove(key)
    }

    /// Returns `true` iff `key` is present on its owning shard — a
    /// wait-free read against the shard's published snapshot when the
    /// shards were built with [`combine::Options::snapshot_reads`] (the
    /// default).
    pub fn contains(&self, key: &K) -> bool {
        self.check_read_poisoned();
        self.metrics.point_ops.inc();
        let _promote = self.poison_guard();
        self.shards[self.router.shard_of(key)].contains(key)
    }

    /// Answers one membership query per batch key, split across shards.
    /// `result[i]` answers `batch[i]`; per-shard results are per-shard
    /// linearisation points (no cross-shard snapshot — see the
    /// [module docs](self)).
    pub fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_contains_report(batch, &mut out);
        out
    }

    /// Inserts every batch key on its owning shard; `result[i]` is `true`
    /// iff `batch[i]` was newly inserted.
    pub fn batch_insert(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_insert_report(batch, &mut out);
        out
    }

    /// Removes every batch key from its owning shard; `result[i]` is
    /// `true` iff `batch[i]` was present.
    pub fn batch_remove(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::with_capacity(batch.len());
        self.batch_remove_report(batch, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ShardedSet::batch_contains`] (flags
    /// land in `out`, cleared first).
    pub fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        self.run_batch(OpKind::Contains, batch, out);
    }

    /// Buffer-reusing variant of [`ShardedSet::batch_insert`].
    pub fn batch_insert_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        self.run_batch(OpKind::Insert, batch, out);
    }

    /// Buffer-reusing variant of [`ShardedSet::batch_remove`].
    pub fn batch_remove_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        self.run_batch(OpKind::Remove, batch, out);
    }

    /// Total keys across all shards.
    ///
    /// # Consistency contract
    ///
    /// Each shard's count is read at that shard's own linearisation
    /// point; shards are visited in index order with no tier-wide lock
    /// freezing them in between, so the sum is **not a consistent
    /// cross-shard cut** (see the [module docs](self)).  What *is*
    /// pinned:
    ///
    /// * every per-shard count is exact at the instant that shard is
    ///   read, so the sum lies between the sum of per-shard minimum and
    ///   per-shard maximum cardinalities over the call's duration;
    /// * under a *monotone* concurrent workload (only inserts, or only
    ///   removes, in flight) that bracket collapses to the total
    ///   cardinality just before and just after the call — in
    ///   particular, every operation **acknowledged before the call
    ///   began** is counted, and no operation **issued after the call
    ///   returned** is;
    /// * a quiescent tier (no concurrent writers) gets the exact count.
    ///
    /// Non-monotone concurrent histories can yield a sum no single
    /// instant exhibited (shard 0 counted before its insert, shard 1
    /// after its remove).  The `service_stress` suite pins the monotone
    /// bracket against acknowledged-operation counters.
    pub fn len(&self) -> usize {
        self.check_read_poisoned();
        let _promote = self.poison_guard();
        self.shards.iter().map(ConcurrentSet::len).sum()
    }

    /// Returns `true` when no shard holds any key (same
    /// [consistency contract](ShardedSet::len) as `len`: per-shard
    /// counts at independent instants, exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys in `(lo, hi)` across all shards, ascending.
    ///
    /// Every shard answers the full bounds from its own published
    /// snapshot (a wait-free read under the default
    /// [`combine::Options::snapshot_reads`]); the tier then concatenates
    /// the runs in shard order when the router is
    /// [monotone](ShardRouter::monotone) and k-way merges them
    /// otherwise.  Per-shard runs are per-shard linearisation points —
    /// the stitched result is **not** a consistent cross-shard cut (same
    /// contract as [`ShardedSet::len`]), but each shard's contribution
    /// is exactly that shard's range at its own instant, so a quiescent
    /// tier gets the exact range.
    pub fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        self.check_read_poisoned();
        self.metrics.range_ops.inc();
        let _promote = self.poison_guard();
        let runs: Vec<Vec<K>> = self
            .shards
            .iter()
            .map(|shard| shard.range_keys(lo, hi))
            .collect();
        if self.router.monotone() {
            runs.into_iter().flatten().collect()
        } else {
            merge_sorted_runs(runs)
        }
    }

    /// Number of keys in `(lo, hi)` across all shards — the sum of
    /// per-shard counts, with [`ShardedSet::len`]'s consistency
    /// contract.
    pub fn range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        self.check_read_poisoned();
        self.metrics.range_ops.inc();
        let _promote = self.poison_guard();
        self.shards
            .iter()
            .map(|shard| shard.range_count(lo, hi))
            .sum()
    }

    /// Greatest key strictly less than `key` anywhere in the tier — the
    /// maximum of the per-shard predecessors (each a per-shard
    /// linearisation point).  Works for any router: a non-monotone
    /// router scatters the candidates but `max` is order-insensitive.
    pub fn predecessor(&self, key: &K) -> Option<K> {
        self.check_read_poisoned();
        self.metrics.range_ops.inc();
        let _promote = self.poison_guard();
        self.shards
            .iter()
            .filter_map(|shard| shard.predecessor(key))
            .max()
    }

    /// Least key strictly greater than `key` anywhere in the tier — the
    /// minimum of the per-shard successors.
    pub fn successor(&self, key: &K) -> Option<K> {
        self.check_read_poisoned();
        self.metrics.range_ops.inc();
        let _promote = self.poison_guard();
        self.shards
            .iter()
            .filter_map(|shard| shard.successor(key))
            .min()
    }

    /// The `k`-th smallest key (0-based) across all shards, or `None`
    /// when fewer than `k + 1` keys are held.
    ///
    /// A [monotone](ShardRouter::monotone) router walks shards in index
    /// order subtracting cardinalities (two reads per skipped shard);
    /// otherwise the tier merges every shard's full key run and indexes
    /// it.  Like every cross-shard aggregate this is not a consistent
    /// cut: a shard that shrinks between the walk's `len` and `kth`
    /// reads can make a concurrent call return `None` for a rank that
    /// was momentarily occupied.
    pub fn kth(&self, k: usize) -> Option<K> {
        self.check_read_poisoned();
        self.metrics.range_ops.inc();
        let _promote = self.poison_guard();
        if self.router.monotone() {
            let mut k = k;
            for shard in &self.shards {
                let n = shard.len();
                if k < n {
                    return shard.kth(k);
                }
                k -= n;
            }
            None
        } else {
            merge_sorted_runs(
                self.shards
                    .iter()
                    .map(|shard| shard.range_keys(Bound::Unbounded, Bound::Unbounded))
                    .collect(),
            )
            .into_iter()
            .nth(k)
        }
    }

    /// Returns `true` when the tier — or any of its shards — is poisoned.
    /// Never panics; this is the health probe.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) || self.shards.iter().any(ConcurrentSet::is_poisoned)
    }

    /// Snapshot of the tier's own metrics (`service.*` — batch splits,
    /// sub-batch sizes, routed point ops, observed poisonings).
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Per-shard metric snapshots (each shard's `combine.*` registry:
    /// rounds, round sizes, fast/slow path splits), index-aligned with the
    /// router's shard numbering.
    pub fn shard_metrics(&self) -> Vec<Snapshot> {
        self.shards.iter().map(ConcurrentSet::metrics).collect()
    }

    /// Drains every shard's committed-round log (empty unless the shards
    /// were built with [`combine::Options::log_rounds`]), index-aligned
    /// with the router's shard numbering.  Each shard's log is that
    /// shard's linearisation witness.
    pub fn take_shard_rounds(&self) -> Vec<Vec<Round<K>>> {
        self.shards.iter().map(ConcurrentSet::take_rounds).collect()
    }

    /// Consumes the tier, returning its shards (dropping the tier pool).
    /// Owning `self` proves no operation is in flight.
    pub fn into_shards(self) -> Vec<ConcurrentSet<K, S>> {
        self.shards
    }

    /// Splits `batch` across shards, executes every non-empty sub-batch on
    /// its shard (in parallel on the tier pool once the batch reaches
    /// `parallel_cutoff` keys), and stitches the per-shard flags back into
    /// batch order.
    fn run_batch(&self, kind: OpKind, batch: &Batch<K>, out: &mut Vec<bool>) {
        if matches!(kind, OpKind::Contains) {
            self.check_read_poisoned();
        } else {
            self.check_poisoned();
        }
        out.clear();
        if batch.is_empty() {
            return;
        }
        let split = self.router.split(batch);
        self.metrics.batches_split.inc();
        for sub in split.sub_batches() {
            if sub.is_empty() {
                self.metrics.empty_subbatches.inc();
            } else {
                self.metrics.subbatch_size.record(sub.len() as u64);
            }
        }

        // One result run per shard (empty sub-batches report zero flags);
        // tasks carry only the non-empty shards.
        let mut results: Vec<Vec<bool>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut tasks: Vec<(usize, &Batch<K>, &mut Vec<bool>)> = split
            .sub_batches()
            .iter()
            .zip(results.iter_mut())
            .enumerate()
            .filter(|(_, (sub, _))| !sub.is_empty())
            .map(|(shard, (sub, run))| (shard, sub, run))
            .collect();

        // All-read batches skip the tier pool: each sub-batch is answered
        // from its shard's published snapshot (a few binary searches), so
        // a pool round-trip would cost more than the reads themselves.
        let pooled = !matches!(kind, OpKind::Contains)
            && batch.len() >= self.parallel_cutoff
            && tasks.len() > 1;
        if pooled {
            // Each task is a whole shard round, so fork with grain 1 (the
            // element-count heuristic would be wrong — see pbist::traverse).
            self.pool.install(|| {
                parprim::for_each_mut_with_grain(&mut tasks, 1, |(shard, sub, run)| {
                    self.exec_shard(kind, *shard, sub, run);
                });
            });
        } else {
            for (shard, sub, run) in &mut tasks {
                self.exec_shard(kind, *shard, sub, run);
            }
        }
        split.stitch(&results, out);
    }

    /// Delegates one sub-batch to its shard, promoting any panic that
    /// escapes the shard to tier-level poison.
    fn exec_shard(&self, kind: OpKind, shard: usize, sub: &Batch<K>, run: &mut Vec<bool>) {
        let _promote = self.poison_guard();
        let shard = &self.shards[shard];
        match kind {
            OpKind::Contains => shard.batch_contains_report(sub, run),
            OpKind::Insert => shard.batch_insert_report(sub, run),
            OpKind::Remove => shard.batch_remove_report(sub, run),
        }
    }

    fn poison_guard(&self) -> PoisonOnUnwind<'_> {
        PoisonOnUnwind {
            poisoned: &self.poisoned,
            counter: &self.metrics.poisoned,
        }
    }

    /// Panics if the tier observed a shard poisoning (see the
    /// [module docs](self)).
    fn check_poisoned(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("{}", TIER_POISON_MSG);
        }
    }

    /// Read-path poison check: polls the shards as well as the tier flag
    /// (exactly what [`ShardedSet::is_poisoned`] reports), so a read never
    /// reaches a poisoned shard and dies with that shard's own message —
    /// or worse, after the tier looked healthy.  A shard poisoned behind
    /// the tier's back (its client panicked without unwinding through a
    /// tier guard) is promoted to tier-level poison here, and the read
    /// fails fast with the tier-level error.
    fn check_read_poisoned(&self) {
        if self.poisoned.load(Ordering::Acquire)
            || self.shards.iter().any(ConcurrentSet::is_poisoned)
        {
            if !self.poisoned.swap(true, Ordering::SeqCst) {
                self.metrics.poisoned.inc();
            }
            panic!("{}", TIER_POISON_MSG);
        }
    }
}

/// The tier-level poison error every tier entry point fails with.
const TIER_POISON_MSG: &str = "ShardedSet is poisoned: a shard's backend panicked mid-round, \
     so that shard's state is indeterminate";

/// K-way merge of sorted runs (one per shard) into one ascending vector.
/// A binary heap of run heads costs `O(n log k)`; shard ranges are
/// disjoint (the router's assignment is total), so no dedup is needed.
fn merge_sorted_runs<K: Ord>(runs: Vec<Vec<K>>) -> Vec<K> {
    let total = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<K>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (run, iter) in iters.iter_mut().enumerate() {
        if let Some(key) = iter.next() {
            heap.push(Reverse((key, run)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((key, run))) = heap.pop() {
        out.push(key);
        if let Some(next) = iters[run].next() {
            heap.push(Reverse((next, run)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbist::IstSet;

    fn tier(
        num_shards: usize,
        parallel_cutoff: usize,
    ) -> ShardedSet<u64, IstSet<u64>, RangeRouter<u64>> {
        ShardedSet::with_options(
            RangeRouter::new(num_shards, 0, 10_000),
            (0..num_shards)
                .map(|_| {
                    ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), Pool::new(1).unwrap())
                })
                .collect(),
            Pool::new(2).unwrap(),
            ShardedOptions { parallel_cutoff },
        )
    }

    #[test]
    fn point_ops_route_and_have_set_semantics() {
        let set = tier(4, 256);
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.insert(9_999));
        assert!(set.contains(&5));
        assert!(!set.contains(&6));
        assert_eq!(set.len(), 2);
        assert!(set.remove(&5));
        assert!(!set.remove(&5));
        assert!(!set.is_empty());
        assert!(!set.is_poisoned());
        let m = set.metrics();
        assert_eq!(m.counter("service.point_ops"), Some(7));
        assert_eq!(m.counter("service.batches_split"), Some(0));
    }

    #[test]
    fn batched_ops_split_execute_and_stitch() {
        for cutoff in [0usize, usize::MAX] {
            let set = tier(4, cutoff);
            let batch = Batch::from_unsorted(vec![1u64, 2_600, 5_100, 7_600, 9_999]);
            assert_eq!(set.batch_insert(&batch), vec![true; 5]);
            assert_eq!(set.batch_insert(&batch), vec![false; 5]);
            assert_eq!(set.batch_contains(&batch), vec![true; 5]);
            let partial = Batch::from_unsorted(vec![1u64, 3, 5_100]);
            assert_eq!(set.batch_remove(&partial), vec![true, false, true]);
            assert_eq!(set.len(), 3);

            let m = set.metrics();
            assert_eq!(
                m.counter("service.batches_split"),
                Some(4),
                "cutoff {cutoff}"
            );
            let sizes = m.histogram("service.subbatch_size").unwrap();
            assert!(sizes.count() > 0);
            // Each shard saw traffic: the 5-key batch covers all 4 ranges.
            for (shard, snap) in set.shard_metrics().iter().enumerate() {
                assert!(
                    snap.counter("combine.rounds").unwrap_or(0) > 0,
                    "shard {shard} committed no rounds (cutoff {cutoff})"
                );
            }
        }
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let set = tier(2, 256);
        assert!(set.batch_insert(&Batch::empty()).is_empty());
        let mut out = vec![true; 3];
        set.batch_contains_report(&Batch::empty(), &mut out);
        assert!(out.is_empty());
        assert_eq!(set.metrics().counter("service.batches_split"), Some(0));
    }

    #[test]
    fn ordered_queries_stitch_across_shards() {
        let set = tier(4, 0);
        let keys: Vec<u64> = (0..100).map(|i| i * 97 % 9_973).collect();
        set.batch_insert(&Batch::from_unsorted(keys.clone()));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();

        use std::ops::Bound::{Excluded, Included, Unbounded};
        assert_eq!(set.range_keys(Unbounded, Unbounded), sorted);
        let lo = sorted[10];
        let hi = sorted[90];
        let want: Vec<u64> = sorted
            .iter()
            .copied()
            .filter(|k| *k >= lo && *k < hi)
            .collect();
        assert_eq!(set.range_keys(Included(&lo), Excluded(&hi)), want);
        assert_eq!(set.range_count(Included(&lo), Excluded(&hi)), want.len());
        assert_eq!(set.predecessor(&sorted[50]), Some(sorted[49]));
        assert_eq!(set.predecessor(&sorted[0]), None);
        assert_eq!(set.successor(&sorted[50]), Some(sorted[51]));
        assert_eq!(set.successor(sorted.last().unwrap()), None);
        for k in [0usize, 1, 50, sorted.len() - 1] {
            assert_eq!(set.kth(k), Some(sorted[k]), "rank {k}");
        }
        assert_eq!(set.kth(sorted.len()), None);
        assert!(set.metrics().counter("service.range_ops").unwrap() >= 9);
    }

    #[test]
    fn non_monotone_router_merges_ordered_results() {
        let router = HashRouter::new(3);
        assert!(!ShardRouter::<u64>::monotone(&router));
        let set = ShardedSet::with_options(
            router,
            (0..3)
                .map(|_| {
                    ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), Pool::new(1).unwrap())
                })
                .collect(),
            Pool::new(2).unwrap(),
            ShardedOptions { parallel_cutoff: 0 },
        );
        let keys: Vec<u64> = (0..200).map(|i| i * 13 % 1_009).collect();
        set.batch_insert(&Batch::from_unsorted(keys.clone()));
        let mut sorted = keys;
        sorted.sort_unstable();
        sorted.dedup();

        use std::ops::Bound::{Included, Unbounded};
        let got = set.range_keys(Unbounded, Unbounded);
        assert_eq!(got, sorted, "hash-router runs must k-way merge sorted");
        let lo = sorted[5];
        assert_eq!(
            set.range_keys(Included(&lo), Unbounded),
            sorted[5..].to_vec()
        );
        assert_eq!(set.kth(7), Some(sorted[7]));
        assert_eq!(set.predecessor(&sorted[9]), Some(sorted[8]));
        assert_eq!(set.successor(&sorted[9]), Some(sorted[10]));
    }

    #[test]
    #[should_panic(expected = "router partitions 3 ways but 2 shards")]
    fn shard_count_mismatch_is_rejected() {
        ShardedSet::new(
            RangeRouter::new(3, 0u64, 100),
            (0..2)
                .map(|_| {
                    ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), Pool::new(1).unwrap())
                })
                .collect(),
            Pool::new(1).unwrap(),
        );
    }
}
