//! The durable sharded tier: one [`durable::DurableSet`] per shard, one
//! directory per shard, tier-wide recovery on open.
//!
//! Composition, not new machinery: routing is the same [`ShardRouter`]
//! contract as [`ShardedSet`](crate::ShardedSet), and durability is each
//! shard's own WAL + snapshot protocol (see the [`durable`] crate docs).
//! Because every key maps to exactly one shard, each shard's log is a
//! complete, self-contained history of its key range — shards recover
//! independently and in any order, and there is no cross-shard
//! coordination to get wrong.  The price is the same contract as the
//! in-memory tier: per-shard linearizability (and now per-shard
//! durability), with no cross-shard ordering or atomicity.  A
//! [`DurableTier::sync_all`] is N independent per-shard durability
//! points, not a consistent cut.
//!
//! On disk a tier is a directory of shard directories plus a small `TIER`
//! file recording the shard count.  Reopening with a router that
//! partitions a different number of ways is refused: records would route
//! to different shards than the ones whose logs hold them, silently
//! splitting the history.  (Resharding would need an explicit migration —
//! out of scope here.)
//!
//! ```text
//! tier-dir/
//!   TIER            shard-count manifest
//!   shard-0000/     a durable::DurableSet directory (WAL + snapshots)
//!   shard-0001/
//!   ...
//! ```

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use batchapi::{Batch, BatchedSet, KeyCodec};
use durable::{DurableOptions, DurableSet};
use forkjoin::Pool;
use obs::Snapshot;

use crate::router::ShardRouter;

/// First line of the `TIER` manifest file.
const TIER_MAGIC: &str = "pbtier-v1";

/// A durable, sharded concurrent set: a [`ShardRouter`] over N
/// [`durable::DurableSet`] shards, each persisting its own key range in
/// its own subdirectory.  See the crate docs' Durability section for the
/// on-disk layout and the (per-shard) consistency contract.
pub struct DurableTier<K, S, R>
where
    K: Ord + Clone + Send + Sync + KeyCodec + 'static,
    S: BatchedSet<K> + Send,
{
    router: R,
    shards: Vec<DurableSet<K, S>>,
    dir: PathBuf,
}

/// Reads or creates the `TIER` manifest, enforcing a stable shard count.
fn check_tier_manifest(dir: &Path, num_shards: usize) -> io::Result<()> {
    let path = dir.join("TIER");
    match std::fs::File::open(&path) {
        Ok(mut file) => {
            let mut text = String::new();
            file.read_to_string(&mut text)?;
            let mut lines = text.lines();
            let (magic, count) = (lines.next(), lines.next());
            if magic != Some(TIER_MAGIC) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a tier manifest", path.display()),
                ));
            }
            let recorded: usize = count.and_then(|c| c.trim().parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} has no shard count", path.display()),
                )
            })?;
            if recorded != num_shards {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "tier at {} was created with {recorded} shards but the router \
                         partitions {num_shards} ways; resharding needs an explicit migration",
                        dir.display()
                    ),
                ));
            }
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let mut file = std::fs::File::create(&path)?;
            write!(file, "{TIER_MAGIC}\n{num_shards}\n")?;
            file.sync_all()
        }
        Err(e) => Err(e),
    }
}

impl<K, S, R> DurableTier<K, S, R>
where
    K: Ord + Clone + Send + Sync + KeyCodec + 'static,
    S: BatchedSet<K> + Send,
    R: ShardRouter<K>,
{
    /// Opens (creating if absent) the tier rooted at `dir`, recovering
    /// every shard: `shard-<i>/` is opened as a [`DurableSet`] with
    /// `options`, a pool built by `make_pool(i)` (pools are per shard —
    /// a shard's combiner must never block on another shard's workers),
    /// and a backend built by `make_backend` (called once per shard with
    /// that shard's recovered contents).
    ///
    /// # Errors
    ///
    /// Any shard's recovery error propagates; additionally `InvalidData`
    /// when `dir` holds a tier created with a different shard count.
    pub fn open<P, MP, F>(
        dir: P,
        router: R,
        options: DurableOptions,
        mut make_pool: MP,
        mut make_backend: F,
    ) -> io::Result<DurableTier<K, S, R>>
    where
        P: AsRef<Path>,
        MP: FnMut(usize) -> Pool,
        F: FnMut(Batch<K>) -> S,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        check_tier_manifest(&dir, router.num_shards())?;
        let shards = (0..router.num_shards())
            .map(|i| {
                DurableSet::open(
                    dir.join(format!("shard-{i:04}")),
                    make_pool(i),
                    options.clone(),
                    &mut make_backend,
                )
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(DurableTier {
            router,
            shards,
            dir,
        })
    }

    /// Number of shards in the tier.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The tier's router.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// The tier's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Inserts `key` on its owning shard; `Ok(true)` iff newly inserted.
    /// Durability timing is the shard's group-commit contract
    /// ([`durable::DurableSet::insert`]).
    pub fn insert(&self, key: K) -> io::Result<bool> {
        self.shards[self.router.shard_of(&key)].insert(key)
    }

    /// Removes `key` from its owning shard; `Ok(true)` iff it was present.
    pub fn remove(&self, key: &K) -> io::Result<bool> {
        self.shards[self.router.shard_of(key)].remove(key)
    }

    /// Membership test on the owning shard.
    pub fn contains(&self, key: &K) -> io::Result<bool> {
        self.shards[self.router.shard_of(key)].contains(key)
    }

    /// Splits `batch` across shards, runs one durable batch insert per
    /// non-empty sub-batch, and stitches results back into batch order.
    /// Sub-batches run sequentially: each is a durability point, and a
    /// mid-batch error reports exactly which prefix of shards committed.
    pub fn batch_insert(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        self.run_batch(batch, |shard, sub| self.shards[shard].batch_insert(sub))
    }

    /// Batched remove; see [`DurableTier::batch_insert`].
    pub fn batch_remove(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        self.run_batch(batch, |shard, sub| self.shards[shard].batch_remove(sub))
    }

    /// Batched membership; see [`DurableTier::batch_insert`].
    pub fn batch_contains(&self, batch: &Batch<K>) -> io::Result<Vec<bool>> {
        self.run_batch(batch, |shard, sub| self.shards[shard].batch_contains(sub))
    }

    /// Total keys across all shards (per-shard counts at independent
    /// instants; not a consistent cut).
    pub fn len(&self) -> usize {
        self.shards.iter().map(DurableSet::len).sum()
    }

    /// Whether every shard is empty (same caveat as [`DurableTier::len`]).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(DurableSet::is_empty)
    }

    /// Forces every shard's log onto disk; returns the per-shard durable
    /// high-water marks, index-aligned with the router's numbering.
    pub fn sync_all(&self) -> io::Result<Vec<u64>> {
        self.shards.iter().map(DurableSet::sync).collect()
    }

    /// Snapshots every shard (truncating its log); returns the per-shard
    /// snapshot seqs.  N independent per-shard checkpoints, not an
    /// atomic tier-wide one.
    pub fn snapshot_all(&self) -> io::Result<Vec<u64>> {
        self.shards.iter().map(DurableSet::snapshot).collect()
    }

    /// Per-shard durable high-water marks (see
    /// [`durable::DurableSet::durable_seq`]).
    pub fn durable_seqs(&self) -> Vec<u64> {
        self.shards.iter().map(DurableSet::durable_seq).collect()
    }

    /// Per-shard `durable.*` metric snapshots, index-aligned with the
    /// router's shard numbering.
    pub fn shard_metrics(&self) -> Vec<Snapshot> {
        self.shards.iter().map(DurableSet::metrics).collect()
    }

    /// Direct access to one shard (for its combiner stats/metrics).
    ///
    /// # Panics
    ///
    /// Panics when `shard >= num_shards()`.
    pub fn shard(&self, shard: usize) -> &DurableSet<K, S> {
        &self.shards[shard]
    }

    /// Drains and fsyncs every shard, then closes; first error wins (the
    /// remaining shards still run their best-effort `Drop` sync).
    pub fn close(self) -> io::Result<()> {
        self.shards.into_iter().try_for_each(DurableSet::close)
    }

    fn run_batch<F>(&self, batch: &Batch<K>, mut exec: F) -> io::Result<Vec<bool>>
    where
        F: FnMut(usize, &Batch<K>) -> io::Result<Vec<bool>>,
    {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let split = self.router.split(batch);
        let mut results: Vec<Vec<bool>> = Vec::with_capacity(self.shards.len());
        for (shard, sub) in split.sub_batches().iter().enumerate() {
            results.push(if sub.is_empty() {
                Vec::new()
            } else {
                exec(shard, sub)?
            });
        }
        let mut out = Vec::with_capacity(batch.len());
        split.stitch(&results, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RangeRouter;
    use pbist::IstSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "durable-tier-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn open(
        dir: &Path,
        num_shards: usize,
        options: DurableOptions,
    ) -> DurableTier<u64, IstSet<u64>, RangeRouter<u64>> {
        DurableTier::open(
            dir,
            RangeRouter::new(num_shards, 0, 10_000),
            options,
            |_| Pool::new(1).unwrap(),
            |batch| IstSet::from_batch(&batch),
        )
        .unwrap()
    }

    #[test]
    fn tier_routes_persists_and_recovers() {
        let dir = scratch_dir("basic");
        let tier = open(&dir, 4, DurableOptions::default());
        assert!(tier.is_empty());
        let batch = Batch::from_unsorted(vec![1u64, 2_600, 5_100, 7_600, 9_999]);
        assert_eq!(tier.batch_insert(&batch).unwrap(), vec![true; 5]);
        assert!(tier.insert(42).unwrap());
        assert!(tier.remove(&2_600).unwrap());
        assert_eq!(tier.len(), 5);
        // Every shard directory exists and is a durable set root.
        for i in 0..4 {
            assert!(dir.join(format!("shard-{i:04}")).is_dir());
        }
        tier.close().unwrap();

        let tier = open(&dir, 4, DurableOptions::default());
        assert_eq!(tier.len(), 5);
        assert_eq!(
            tier.batch_contains(&batch).unwrap(),
            vec![true, false, true, true, true]
        );
        assert!(tier.contains(&42).unwrap());
        tier.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_change_is_refused() {
        let dir = scratch_dir("reshard");
        let tier = open(&dir, 2, DurableOptions::default());
        tier.insert(5).unwrap();
        tier.close().unwrap();

        let err = DurableTier::<u64, IstSet<u64>, _>::open(
            &dir,
            RangeRouter::new(3, 0u64, 10_000),
            DurableOptions::default(),
            |_| Pool::new(1).unwrap(),
            |batch| IstSet::from_batch(&batch),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("2 shards"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_all_and_snapshot_all_cover_every_shard() {
        let dir = scratch_dir("syncall");
        let tier = open(
            &dir,
            3,
            DurableOptions {
                group_commit: 1_000, // nothing durable until sync_all
                ..DurableOptions::default()
            },
        );
        for k in (0..9_000u64).step_by(100) {
            tier.insert(k).unwrap();
        }
        let durable = tier.sync_all().unwrap();
        assert_eq!(durable.len(), 3);
        assert_eq!(tier.durable_seqs(), durable);
        assert!(durable.iter().all(|&d| d > 0), "{durable:?}");

        let snaps = tier.snapshot_all().unwrap();
        assert_eq!(snaps.len(), 3);
        for (i, snap) in tier.shard_metrics().iter().enumerate() {
            assert_eq!(
                snap.counter("durable.snapshots"),
                Some(1),
                "shard {i} must have snapshotted"
            );
        }
        tier.close().unwrap();

        // Snapshot-only recovery (logs were truncated).
        let tier = open(&dir, 3, DurableOptions::default());
        assert_eq!(tier.len(), 90);
        tier.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
