//! Shard routers: deciding which shard owns a key, and splitting a sorted
//! [`Batch`] into per-shard sub-batches with a stitch plan for the results.
//!
//! Two routing disciplines ship here:
//!
//! * [`RangeRouter`] — partitions the key space into contiguous ranges by
//!   interpolating each key's [`InterpolateKey::to_ordinal`] position
//!   between the configured bounds, so shard `i` owns the `i`-th equal
//!   slice of the ordinal range.  Because the mapping is monotone, a sorted
//!   batch splits into **contiguous** sub-batches: the split is a handful
//!   of narrowing binary searches (the exclusive scan of per-shard counts,
//!   exactly the carve-at-offsets idiom `pbist`'s joint traversal uses at
//!   every inner node), and results stitch back by carving the output
//!   buffer at the same offsets.
//! * [`HashRouter`] — spreads keys by a fixed (deterministic) hash, which
//!   resists skew: a contiguous hot range lands on every shard instead of
//!   one.  The price is that a sorted batch interleaves arbitrarily across
//!   shards, so splitting walks the batch once and stitching scatters
//!   results back through a recorded per-key assignment.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use batchapi::Batch;
use pbist::node::interpolate_slot;
use pbist::InterpolateKey;

/// Assigns every key to one of a fixed number of shards.
///
/// The assignment must be **total and stable**: the same key always routes
/// to the same shard, for the router's whole lifetime.  That is what makes
/// the tier's per-key history live entirely inside one shard — the ground
/// for the per-shard linearizability contract (see the crate docs).
pub trait ShardRouter<K: Ord> {
    /// Number of shards this router partitions the key space across.
    fn num_shards(&self) -> usize;

    /// The shard owning `key`; always `< num_shards()`.
    fn shard_of(&self, key: &K) -> usize;

    /// Whether the assignment is *monotone* in the key: `a <= b` implies
    /// `shard_of(a) <= shard_of(b)`, i.e. shard `i` owns a contiguous key
    /// range below shard `i + 1`'s.  Monotone routers let the tier answer
    /// ordered queries by visiting shards in index order and concatenating
    /// their (already sorted) runs; non-monotone routers force a k-way
    /// merge.  Defaults to `false` — only claim monotonicity when it truly
    /// holds, or [`ShardedSet::range_keys`](crate::ShardedSet::range_keys)
    /// returns misordered results.
    fn monotone(&self) -> bool {
        false
    }

    /// Splits a sorted `batch` into one (possibly empty) sub-batch per
    /// shard, plus the plan for stitching per-shard results back into
    /// batch order.
    ///
    /// The default implementation walks the batch once, appending each key
    /// to its shard's run (a subsequence of a strictly-increasing run is
    /// strictly increasing, so every sub-batch is a valid [`Batch`]) and
    /// recording the per-key assignment for the scatter stitch.  Routers
    /// whose assignment is *monotone* in the key should override this with
    /// the contiguous carve — see [`RangeRouter`].
    fn split(&self, batch: &Batch<K>) -> SplitBatch<K>
    where
        K: Clone,
    {
        let shards = self.num_shards();
        let mut keys: Vec<Vec<K>> = (0..shards).map(|_| Vec::new()).collect();
        let mut shard_of_index = Vec::with_capacity(batch.len());
        for key in batch.iter() {
            let shard = self.shard_of(key);
            assert!(shard < shards, "shard_of returned {shard} >= {shards}");
            keys[shard].push(key.clone());
            shard_of_index.push(shard);
        }
        SplitBatch {
            sub_batches: keys
                .into_iter()
                .map(|run| {
                    Batch::from_sorted(run).expect("a subsequence of a sorted batch stays sorted")
                })
                .collect(),
            plan: StitchPlan::Scatter { shard_of_index },
        }
    }
}

/// How a [`SplitBatch`] maps per-shard result runs back to batch order.
enum StitchPlan {
    /// Batch order coincides with shard order (monotone router): shard
    /// `s`'s results occupy `out[offsets[s]..offsets[s + 1]]`, `offsets`
    /// being the exclusive scan of per-shard key counts.
    Contiguous { offsets: Vec<usize> },
    /// Arbitrary interleave: `shard_of_index[i]` names the shard that
    /// received `batch[i]`, and results are scattered back through one
    /// cursor per shard.
    Scatter { shard_of_index: Vec<usize> },
}

/// One sorted batch carved into per-shard sub-batches, with the plan to
/// stitch per-shard results back into batch order.  Produced by
/// [`ShardRouter::split`]; consumed by the tier's batched operations (and
/// directly testable — see this crate's router property tests).
pub struct SplitBatch<K> {
    sub_batches: Vec<Batch<K>>,
    plan: StitchPlan,
}

impl<K: Ord> SplitBatch<K> {
    /// The per-shard sub-batches, indexed by shard; empty shards hold
    /// empty batches.
    pub fn sub_batches(&self) -> &[Batch<K>] {
        &self.sub_batches
    }

    /// Total keys across all sub-batches (= the split batch's length).
    pub fn total_len(&self) -> usize {
        self.sub_batches.iter().map(Batch::len).sum()
    }

    /// Stitches per-shard result runs back into batch order: `out[i]`
    /// becomes the flag that `batch[i]`'s shard reported for it.
    /// `per_shard[s]` must hold exactly one flag per key of sub-batch `s`,
    /// in sub-batch order — which is what the shards' batched operations
    /// report.
    ///
    /// # Panics
    ///
    /// Panics when `per_shard` disagrees with the split's shape (wrong
    /// shard count or a result run whose length differs from its
    /// sub-batch).
    pub fn stitch(&self, per_shard: &[Vec<bool>], out: &mut Vec<bool>) {
        assert_eq!(
            per_shard.len(),
            self.sub_batches.len(),
            "one result run per shard"
        );
        for (shard, (run, sub)) in per_shard.iter().zip(&self.sub_batches).enumerate() {
            assert_eq!(
                run.len(),
                sub.len(),
                "shard {shard} reported {} flags for {} keys",
                run.len(),
                sub.len()
            );
        }
        out.clear();
        match &self.plan {
            StitchPlan::Contiguous { offsets } => {
                // Shard order is batch order: concatenating the runs carves
                // the output at exactly the split offsets.
                for (shard, run) in per_shard.iter().enumerate() {
                    debug_assert_eq!(
                        out.len(),
                        offsets[shard],
                        "shard {shard}'s results must start at its carve offset"
                    );
                    out.extend_from_slice(run);
                }
            }
            StitchPlan::Scatter { shard_of_index } => {
                let mut cursors = vec![0usize; per_shard.len()];
                out.extend(shard_of_index.iter().map(|&shard| {
                    let flag = per_shard[shard][cursors[shard]];
                    cursors[shard] += 1;
                    flag
                }));
            }
        }
    }
}

/// Range-partitioning router: shard `i` owns the keys whose
/// [`InterpolateKey::to_ordinal`] position falls into the `i`-th equal
/// slice of `[min, max]`.  Keys outside the bounds clamp to the edge
/// shards, so the assignment is total.
///
/// Monotone by construction (`to_ordinal` is monotone), which buys the
/// contiguous split: a sorted batch carves into per-shard sub-slices with
/// `num_shards - 1` narrowing binary searches instead of a per-key walk.
#[derive(Debug, Clone)]
pub struct RangeRouter<K> {
    min: K,
    max: K,
    num_shards: usize,
}

impl<K: InterpolateKey> RangeRouter<K> {
    /// A router over `num_shards` equal ordinal slices of `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero or `min > max`.
    pub fn new(num_shards: usize, min: K, max: K) -> RangeRouter<K> {
        assert!(num_shards > 0, "a router needs at least one shard");
        assert!(min <= max, "inverted key range");
        RangeRouter {
            min,
            max,
            num_shards,
        }
    }
}

impl<K: InterpolateKey> ShardRouter<K> for RangeRouter<K> {
    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_of(&self, key: &K) -> usize {
        interpolate_slot(key, &self.min, &self.max, self.num_shards)
    }

    /// `to_ordinal` is monotone and the slot interpolation preserves it, so
    /// shard ranges are contiguous and ordered by shard index.
    fn monotone(&self) -> bool {
        true
    }

    fn split(&self, batch: &Batch<K>) -> SplitBatch<K>
    where
        K: Clone,
    {
        // The monotone carve: locate each shard boundary with a binary
        // search in the still-unassigned tail, so the offsets come out as
        // the exclusive scan of per-shard key counts — the same idiom
        // `pbist::traverse::partition_batch` uses at every inner node.
        let mut offsets = Vec::with_capacity(self.num_shards + 1);
        offsets.push(0);
        let mut assigned = 0;
        for shard in 0..self.num_shards - 1 {
            assigned += batch[assigned..].partition_point(|key| self.shard_of(key) <= shard);
            offsets.push(assigned);
        }
        offsets.push(batch.len());
        SplitBatch {
            sub_batches: batch.split_at_offsets(&offsets),
            plan: StitchPlan::Contiguous { offsets },
        }
    }
}

/// Hash-partitioning router: shard = `hash(key) % num_shards`, with a
/// fixed-key (deterministic across runs and processes) hasher, so traces
/// and benchmarks replay exactly.
///
/// Use it when traffic is skewed: a contiguous hot key range that would
/// swamp one [`RangeRouter`] shard spreads across all hash shards.  Not
/// monotone, so batch splitting pays a per-key walk ([`ShardRouter`]'s
/// default) instead of the contiguous carve.
#[derive(Debug, Clone)]
pub struct HashRouter {
    num_shards: usize,
}

impl HashRouter {
    /// A router spreading keys across `num_shards` by fixed hash.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero.
    pub fn new(num_shards: usize) -> HashRouter {
        assert!(num_shards > 0, "a router needs at least one shard");
        HashRouter { num_shards }
    }
}

impl<K: Ord + Hash> ShardRouter<K> for HashRouter {
    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_of(&self, key: &K) -> usize {
        // `DefaultHasher::new()` is the fixed-key SipHash construction —
        // deterministic, unlike `RandomState`-seeded map hashers.
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.num_shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_router_is_monotone_and_total() {
        let router = RangeRouter::new(4, 0u64, 100);
        let mut prev = 0;
        for key in 0..=100u64 {
            let shard = router.shard_of(&key);
            assert!(shard < 4);
            assert!(shard >= prev, "shard_of not monotone at {key}");
            prev = shard;
        }
        // Out-of-bounds keys clamp to the edge shards.
        assert_eq!(router.shard_of(&0), 0);
        assert_eq!(ShardRouter::<u64>::shard_of(&router, &10_000), 3);
    }

    #[test]
    fn range_split_offsets_agree_with_shard_of() {
        let router = RangeRouter::new(3, 0u64, 90);
        let batch = Batch::from_unsorted(vec![0u64, 10, 29, 30, 31, 60, 89, 90]);
        let split = router.split(&batch);
        assert_eq!(split.sub_batches().len(), 3);
        assert_eq!(split.total_len(), batch.len());
        for (shard, sub) in split.sub_batches().iter().enumerate() {
            for key in sub.iter() {
                assert_eq!(router.shard_of(key), shard, "key {key}");
            }
        }
    }

    #[test]
    fn hash_router_is_stable_and_covers_all_shards() {
        let router = HashRouter::new(4);
        for key in 0..200u64 {
            assert_eq!(router.shard_of(&key), router.shard_of(&key));
            assert!(router.shard_of(&key) < 4);
        }
        let mut hit = [false; 4];
        for key in 0..200u64 {
            hit[router.shard_of(&key)] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "200 keys left a shard empty: {hit:?}"
        );
    }

    #[test]
    fn scatter_stitch_restores_batch_order() {
        let router = HashRouter::new(3);
        let batch = Batch::from_unsorted((0..40u64).collect());
        let split = router.split(&batch);
        // Echo each key's low bit as its "result" per shard.
        let per_shard: Vec<Vec<bool>> = split
            .sub_batches()
            .iter()
            .map(|sub| sub.iter().map(|k| k % 2 == 0).collect())
            .collect();
        let mut out = Vec::new();
        split.stitch(&per_shard, &mut out);
        let expect: Vec<bool> = batch.iter().map(|k| k % 2 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "reported 1 flags for 2 keys")]
    fn stitch_rejects_mismatched_result_runs() {
        let router = RangeRouter::new(1, 0u64, 10);
        let split = router.split(&Batch::from_unsorted(vec![1u64, 2]));
        split.stitch(&[vec![true]], &mut Vec::new());
    }

    #[test]
    fn single_shard_routers_degenerate_cleanly() {
        let range = RangeRouter::new(1, 0u64, 10);
        let hash = HashRouter::new(1);
        let batch = Batch::from_unsorted(vec![3u64, 7, 99]);
        for split in [
            range.split(&batch),
            ShardRouter::<u64>::split(&hash, &batch),
        ] {
            assert_eq!(split.sub_batches().len(), 1);
            assert_eq!(split.sub_batches()[0], batch);
        }
    }
}
