//! The batched-operations API shared by every set implementation in this
//! workspace.
//!
//! The paper's computational model is *batched*: operations arrive as sorted,
//! deduplicated batches, and a data structure processes one whole batch in
//! parallel before the next one starts.  This crate pins that model down as a
//! pair of types every backend agrees on:
//!
//! * [`Batch`] — a sorted, deduplicated batch of keys.  Validation and
//!   normalisation happen **once**, at the boundary; implementations of the
//!   trait may assume (and exploit) strict ascending order.
//! * [`BatchedSet`] — the trait tying `batch_contains` / `batch_insert` /
//!   `batch_remove` together with the shared point accessors (`len`, `rank`,
//!   `min`/`max`, …), so benchmark harnesses and tests drive any backend
//!   through one interface.
//! * [`KeyCodec`] — a fixed-width, order-preserving byte encoding for keys,
//!   the serialisation contract the durability tier writes its log records
//!   and snapshots in.
//! * [`SetView`] — an immutable, shareable (`Send + Sync`) read-only view
//!   of a set's contents at one linearisation point, published cheaply via
//!   [`BatchedSet::publish_root`].  A concurrent front-end swaps views
//!   atomically so lookups can run wait-free against the last published
//!   root instead of serialising behind a combiner.
//!
//! The crate is deliberately dependency-free (std only): it defines the
//! contract, while `pbist`, `baselines`, … provide the parallel
//! implementations on top of `parprim`/`forkjoin`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Bound, Deref};
use std::sync::Arc;

/// A sorted, strictly-increasing (hence deduplicated) batch of keys.
///
/// All [`BatchedSet`] operations consume batches, never raw slices: the
/// sortedness invariant is established here, exactly once, so every
/// implementation can partition a batch with binary searches and merge it
/// into sorted storage without re-checking.
///
/// ```
/// use batchapi::Batch;
///
/// let batch = Batch::from_unsorted(vec![5u64, 1, 9, 1]);
/// assert_eq!(batch.as_slice(), &[1, 5, 9]);
/// assert!(Batch::from_sorted(vec![1u64, 2, 3]).is_ok());
/// assert!(Batch::from_sorted(vec![2u64, 1]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch<K> {
    keys: Vec<K>,
}

/// Why a key vector was rejected by [`Batch::from_sorted`].
///
/// Both variants name the offending position, and the rendered message
/// spells out *which* of the two ways the strict-increase invariant broke —
/// a duplicated key versus an out-of-order pair — so a failed ingest can be
/// traced to the exact input element without reproducing the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// `keys[index] == keys[index + 1]`: the key at `index` appears again
    /// immediately after itself.
    Duplicate {
        /// Position of the first of the two equal keys.
        index: usize,
    },
    /// `keys[index] > keys[index + 1]`: the input is out of order at
    /// `index`.
    OutOfOrder {
        /// Position of the first key that exceeds its successor.
        index: usize,
    },
}

impl BatchError {
    /// Position of the first adjacent pair violating the strict-increase
    /// invariant, whichever way it violated it.
    pub fn index(&self) -> usize {
        match self {
            BatchError::Duplicate { index } | BatchError::OutOfOrder { index } => *index,
        }
    }
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Duplicate { index } => write!(
                f,
                "batch keys must be strictly increasing: keys[{index}] and \
                 keys[{}] are equal (duplicate key at index {index})",
                index + 1
            ),
            BatchError::OutOfOrder { index } => write!(
                f,
                "batch keys must be strictly increasing: keys[{index}] > \
                 keys[{}] (out of order at index {index})",
                index + 1
            ),
        }
    }
}

impl std::error::Error for BatchError {}

impl<K: Ord> Batch<K> {
    /// Builds a batch from arbitrary keys: sorts (unstable — keys are plain
    /// `Ord` values, there is no tie order to preserve) and deduplicates.
    pub fn from_unsorted(mut keys: Vec<K>) -> Batch<K> {
        keys.sort_unstable();
        keys.dedup();
        Batch { keys }
    }

    /// Wraps keys that are claimed to be sorted and deduplicated, after
    /// verifying the claim with one linear scan.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Duplicate`] at the first adjacent pair that is
    /// equal, or [`BatchError::OutOfOrder`] at the first that decreases.
    pub fn from_sorted(keys: Vec<K>) -> Result<Batch<K>, BatchError> {
        if let Some(index) = keys.windows(2).position(|w| w[0] >= w[1]) {
            return Err(if keys[index] == keys[index + 1] {
                BatchError::Duplicate { index }
            } else {
                BatchError::OutOfOrder { index }
            });
        }
        Ok(Batch { keys })
    }

    /// The empty batch.
    pub fn empty() -> Batch<K> {
        Batch { keys: Vec::new() }
    }

    /// The keys, strictly increasing.
    pub fn as_slice(&self) -> &[K] {
        &self.keys
    }

    /// Number of (distinct) keys in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the batch holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Consumes the batch, returning the sorted key vector.
    pub fn into_vec(self) -> Vec<K> {
        self.keys
    }

    /// Splits the batch into `offsets.len() - 1` contiguous sub-batches:
    /// sub-batch `i` is `self[offsets[i]..offsets[i + 1]]` (possibly
    /// empty).  `offsets` is the exclusive scan of the per-segment key
    /// counts — exactly the shape `pbist`'s joint traversal produces when
    /// it partitions a batch at a node's routers, and what a sharded
    /// service tier produces when it carves a batch at shard boundaries.
    ///
    /// Every sub-batch is a contiguous slice of a strictly-increasing run,
    /// so it is itself a valid batch; no re-validation happens.
    ///
    /// # Panics
    ///
    /// Panics when `offsets` is not a valid exclusive scan over this batch:
    /// fewer than two entries, not non-decreasing, first entry not `0`, or
    /// last entry not `self.len()`.
    pub fn split_at_offsets(&self, offsets: &[usize]) -> Vec<Batch<K>>
    where
        K: Clone,
    {
        assert!(offsets.len() >= 2, "offsets needs at least [0, len]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("len checked above"),
            self.keys.len(),
            "offsets must end at the batch length"
        );
        offsets
            .windows(2)
            .map(|w| {
                assert!(w[0] <= w[1], "offsets must be non-decreasing");
                Batch {
                    keys: self.keys[w[0]..w[1]].to_vec(),
                }
            })
            .collect()
    }

    /// Merges two batches into one sorted, deduplicated batch in
    /// `O(self.len() + other.len())` — the inverse of splitting, used to
    /// recombine per-shard key sets into one view.  Keys present in both
    /// inputs appear once.
    pub fn merge(&self, other: &Batch<K>) -> Batch<K>
    where
        K: Clone,
    {
        let mut keys = Vec::with_capacity(self.keys.len() + other.keys.len());
        let (mut a, mut b) = (self.keys.iter().peekable(), other.keys.iter().peekable());
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            match x.cmp(y) {
                std::cmp::Ordering::Less => keys.push(a.next().expect("peeked").clone()),
                std::cmp::Ordering::Greater => keys.push(b.next().expect("peeked").clone()),
                std::cmp::Ordering::Equal => {
                    keys.push(a.next().expect("peeked").clone());
                    b.next();
                }
            }
        }
        keys.extend(a.cloned());
        keys.extend(b.cloned());
        Batch { keys }
    }
}

impl<K> Deref for Batch<K> {
    type Target = [K];

    fn deref(&self) -> &[K] {
        &self.keys
    }
}

/// A sorted batch of key/value pairs with strictly-increasing keys — the
/// map-flavoured counterpart of [`Batch`].
///
/// Keys and values live in two parallel arrays so the key run can be
/// partitioned with the exact same binary searches a [`Batch`] is (the
/// offsets carve both arrays).
///
/// # Duplicate policy: last wins
///
/// [`KvBatch::from_unsorted`] resolves duplicate keys by keeping the **last**
/// occurrence's value, mirroring the sequential semantics of applying the
/// pairs one `insert(k, v)` at a time in input order.  The sort is stable,
/// so "last occurrence" means last in the input vector.
///
/// ```
/// use batchapi::KvBatch;
///
/// let batch = KvBatch::from_unsorted(vec![(5u64, 'a'), (1, 'b'), (5, 'c')]);
/// assert_eq!(batch.keys(), &[1, 5]);
/// assert_eq!(batch.vals(), &['b', 'c'], "last write to key 5 wins");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvBatch<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K: Ord, V> KvBatch<K, V> {
    /// Builds a batch from arbitrary pairs: stable-sorts by key and
    /// deduplicates with the documented last-wins policy.
    pub fn from_unsorted(pairs: Vec<(K, V)>) -> KvBatch<K, V> {
        let mut pairs = pairs;
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        // `dedup_by` visits (later, earlier-kept) pairs; moving the later
        // value into the kept slot before discarding implements last-wins.
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(&mut later.1, &mut kept.1);
                true
            } else {
                false
            }
        });
        let mut keys = Vec::with_capacity(pairs.len());
        let mut vals = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            keys.push(k);
            vals.push(v);
        }
        KvBatch { keys, vals }
    }

    /// Wraps pairs claimed to be sorted with strictly-increasing keys, after
    /// verifying the claim with one linear scan.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Duplicate`] / [`BatchError::OutOfOrder`] at the
    /// first offending adjacent key pair (same contract as
    /// [`Batch::from_sorted`]).
    pub fn from_sorted(pairs: Vec<(K, V)>) -> Result<KvBatch<K, V>, BatchError> {
        if let Some(index) = pairs.windows(2).position(|w| w[0].0 >= w[1].0) {
            return Err(if pairs[index].0 == pairs[index + 1].0 {
                BatchError::Duplicate { index }
            } else {
                BatchError::OutOfOrder { index }
            });
        }
        let mut keys = Vec::with_capacity(pairs.len());
        let mut vals = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            keys.push(k);
            vals.push(v);
        }
        Ok(KvBatch { keys, vals })
    }

    /// The empty batch.
    pub fn empty() -> KvBatch<K, V> {
        KvBatch {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The keys, strictly increasing.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The values, parallel to [`KvBatch::keys`].
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Number of (distinct) keys in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates the pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.vals.iter())
    }

    /// Consumes the batch, returning the parallel key and value vectors.
    pub fn into_parts(self) -> (Vec<K>, Vec<V>) {
        (self.keys, self.vals)
    }

    /// A [`Batch`] borrowing view of just the keys is not possible without
    /// a copy; this clones the key run into one (still sorted, so no
    /// re-validation happens).
    pub fn key_batch(&self) -> Batch<K>
    where
        K: Clone,
    {
        Batch {
            keys: self.keys.clone(),
        }
    }
}

/// Converts an ordered-query bound pair into the half-open rank interval
/// `[start, end)` it selects: `start` is the rank of the first key inside
/// the range, `end` the rank one past the last.  `end` is clamped to
/// `start`, so inverted bounds (`lo > hi`) select the empty interval rather
/// than panicking.
///
/// Because a set's `rank` is exactly a key's index in the sorted contents,
/// the interval doubles as the index range into any sorted materialisation
/// of the set — which is how the default `range_keys` implementations slice.
pub fn bounds_to_rank_interval<K>(
    len: usize,
    lo: Bound<&K>,
    hi: Bound<&K>,
    rank: impl Fn(&K) -> usize,
    contains: impl Fn(&K) -> bool,
) -> (usize, usize) {
    let start = match lo {
        Bound::Unbounded => 0,
        Bound::Included(k) => rank(k),
        Bound::Excluded(k) => rank(k) + contains(k) as usize,
    };
    let end = match hi {
        Bound::Unbounded => len,
        Bound::Included(k) => rank(k) + contains(k) as usize,
        Bound::Excluded(k) => rank(k),
    };
    (start, end.max(start))
}

/// A key type with a fixed-width, order-preserving byte encoding.
///
/// The durability tier serialises keys into write-ahead-log records and
/// snapshot files; a *fixed* width keeps records self-describing from their
/// length prefix alone (no per-key length bytes), and an *order-preserving*
/// encoding (`a < b` iff `encode(a) < encode(b)` bytewise) means on-disk
/// key runs stay sorted exactly when the in-memory batch was, so a snapshot
/// can be validated — and bulk-loaded — without re-sorting.
///
/// Unsigned integers encode big-endian; signed integers flip the sign bit
/// first (offset-binary), which maps the `i64` number line monotonically
/// onto the `u64` byte order.
///
/// ```
/// use batchapi::KeyCodec;
///
/// let mut buf = [0u8; 8];
/// 0x0102_0304_0506_0708u64.encode(&mut buf);
/// assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(u64::decode(&buf), 0x0102_0304_0506_0708);
///
/// let mut neg = [0u8; 8];
/// let mut pos = [0u8; 8];
/// (-5i64).encode(&mut neg);
/// 5i64.encode(&mut pos);
/// assert!(neg < pos, "byte order follows key order");
/// ```
pub trait KeyCodec: Sized {
    /// Exact number of bytes [`KeyCodec::encode`] writes and
    /// [`KeyCodec::decode`] reads.
    const WIDTH: usize;

    /// Writes the key into `buf`, which is exactly [`KeyCodec::WIDTH`]
    /// bytes long.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `buf.len() != Self::WIDTH`.
    fn encode(&self, buf: &mut [u8]);

    /// Reads a key back out of a [`KeyCodec::WIDTH`]-byte buffer written by
    /// [`KeyCodec::encode`].
    ///
    /// # Panics
    ///
    /// Implementations may panic when `buf.len() != Self::WIDTH`.
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! unsigned_key_codec {
    ($($ty:ty),*) => {$(
        impl KeyCodec for $ty {
            const WIDTH: usize = std::mem::size_of::<$ty>();

            fn encode(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_be_bytes());
            }

            fn decode(buf: &[u8]) -> $ty {
                <$ty>::from_be_bytes(buf.try_into().expect("WIDTH bytes"))
            }
        }
    )*};
}

unsigned_key_codec!(u8, u16, u32, u64, u128);

macro_rules! signed_key_codec {
    ($($ty:ty => $uty:ty),*) => {$(
        impl KeyCodec for $ty {
            const WIDTH: usize = std::mem::size_of::<$ty>();

            fn encode(&self, buf: &mut [u8]) {
                // Offset-binary: flipping the sign bit maps the signed
                // number line monotonically onto unsigned byte order.
                ((*self as $uty) ^ (1 << (<$ty>::BITS - 1))).encode(buf);
            }

            fn decode(buf: &[u8]) -> $ty {
                (<$uty>::decode(buf) ^ (1 << (<$ty>::BITS - 1))) as $ty
            }
        }
    )*};
}

signed_key_codec!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128);

/// An ordered set of keys driven by sorted operation batches.
///
/// This is the workspace's unified set interface: the interpolation search
/// tree (`pbist::IstSet`), the flat sorted array (`baselines::SortedArraySet`)
/// and any future backend implement it, so harnesses compare them through one
/// API.  Batched methods answer **per batch element, in batch (sorted)
/// order**, and are expected to exploit a surrounding `forkjoin::Pool` when
/// one is installed; outside a pool they degrade to sequential loops.
pub trait BatchedSet<K: Ord> {
    /// Number of keys in the set.
    fn len(&self) -> usize;

    /// Returns `true` when the set holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Number of keys strictly smaller than `key`.
    fn rank(&self, key: &K) -> usize;

    /// The smallest key, or `None` for an empty set.
    fn min(&self) -> Option<&K>;

    /// The largest key, or `None` for an empty set.
    fn max(&self) -> Option<&K>;

    /// Answers one membership query per batch element: `result[i]` is `true`
    /// iff `batch[i]` is in the set.
    fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool>;

    /// Inserts every batch element: `result[i]` is `true` iff `batch[i]` was
    /// **newly** inserted (`false` means it was already present).
    fn batch_insert(&mut self, batch: &Batch<K>) -> Vec<bool>;

    /// Removes every batch element: `result[i]` is `true` iff `batch[i]` was
    /// present (and has now been removed).
    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool>;

    /// Like [`BatchedSet::batch_contains`], but reports the flags through
    /// `out` (cleared first, then filled to exactly `batch.len()` entries),
    /// so a caller issuing many batches can reuse one buffer instead of
    /// allocating a fresh `Vec` per batch.  The flat-combining front-end's
    /// round loop is the motivating consumer.
    ///
    /// The default implementation delegates to the allocating variant;
    /// implementations that can write flags in place should override it.
    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        out.append(&mut self.batch_contains(batch));
    }

    /// Result-reporting variant of [`BatchedSet::batch_insert`]: per-key
    /// "newly inserted?" flags land in `out` (cleared first), reusing its
    /// capacity across calls.
    fn batch_insert_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        out.append(&mut self.batch_insert(batch));
    }

    /// Result-reporting variant of [`BatchedSet::batch_remove`]: per-key
    /// "was present?" flags land in `out` (cleared first), reusing its
    /// capacity across calls.
    fn batch_remove_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        out.append(&mut self.batch_remove(batch));
    }

    /// Inserts a single key, returning `true` iff it was newly inserted —
    /// the degenerate batch.  The default wraps the key in a singleton
    /// [`Batch`]; backends with a cheaper point path should override (a
    /// combining front-end's rounds degenerate to single operations
    /// whenever clients outnumber actual concurrency).
    fn insert_one(&mut self, key: &K) -> bool
    where
        K: Clone,
    {
        self.batch_insert(&Batch::from_unsorted(vec![key.clone()]))[0]
    }

    /// Removes a single key, returning `true` iff it was present.  See
    /// [`BatchedSet::insert_one`].
    fn remove_one(&mut self, key: &K) -> bool
    where
        K: Clone,
    {
        self.batch_remove(&Batch::from_unsorted(vec![key.clone()]))[0]
    }

    /// Clones every key out of the set, in ascending order — the full
    /// contents as one sorted run, ready to become a [`Batch`] without
    /// re-validation.  The durability tier's snapshots are the motivating
    /// consumer: snapshot = `collect_keys`, recovery = rebuild from the
    /// collected batch and replay the log tail.  Implementations should
    /// flatten in parallel where their structure allows (`pbist` forks per
    /// subtree).
    fn collect_keys(&self) -> Vec<K>
    where
        K: Clone;

    /// Publishes an immutable [`SetView`] of the current contents, for a
    /// concurrent front-end to serve wait-free reads from.
    ///
    /// The view must answer every read-only query exactly as the set would
    /// at the moment of the call, and must stay valid (and unchanged) while
    /// later mutations run — i.e. mutations must be copy-on-write with
    /// respect to any outstanding view.  Backends whose update paths
    /// already produce fresh nodes (`pbist` path-copies on update and
    /// rebuilds drifted subtrees wholesale) publish in `O(1)` by handing
    /// out their current root; the default clones the full contents into a
    /// [`SortedVecView`], which is correct for any backend but `O(n)` per
    /// publication.
    ///
    /// **Override requirement**: a combining front-end calls this after
    /// *every mutating round*, so the default turns each round into a full
    /// scan — fine for toy backends and tests, a performance bug in
    /// production.  Any backend meant to sit behind `combine` should
    /// override `publish_root` with a structural share **and** override
    /// [`BatchedSet::publish_clone_keys`] to return `0` so the front-end's
    /// `combine.publish_clone_keys` counter stays silent.
    fn publish_root(&self) -> Arc<dyn SetView<K>>
    where
        K: Clone + Send + Sync + 'static,
    {
        Arc::new(SortedVecView::new(self.collect_keys()))
    }

    /// Number of keys [`BatchedSet::publish_root`] copies to build its view
    /// — the per-publication cost a combining front-end pays after every
    /// mutating round.  The default (`len()`) matches the default
    /// `publish_root`, which clones the full contents; backends that
    /// publish by structural sharing must override this to return `0`.
    /// The flat-combining front-end feeds this into its
    /// `combine.publish_clone_keys` counter, so an accidental O(n)-per-round
    /// publication is visible in telemetry rather than silently tanking
    /// write throughput.
    fn publish_clone_keys(&self) -> usize {
        self.len()
    }

    /// Keys inside the `(lo, hi)` bound pair, in ascending order.
    ///
    /// The default materialises the full contents and slices it — `O(n)`
    /// but correct for any backend; ordered backends override with a
    /// structure-aware carve (`pbist` descends once and concatenates whole
    /// subtrees between the two boundary leaves).
    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Clone,
    {
        let (start, end) =
            bounds_to_rank_interval(self.len(), lo, hi, |k| self.rank(k), |k| self.contains(k));
        let mut keys = self.collect_keys();
        keys.truncate(end);
        keys.drain(..start);
        keys
    }

    /// Number of keys inside the `(lo, hi)` bound pair — two rank queries,
    /// no materialisation.
    fn range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        let (start, end) =
            bounds_to_rank_interval(self.len(), lo, hi, |k| self.rank(k), |k| self.contains(k));
        end - start
    }

    /// The `k`-th smallest key (0-indexed), or `None` when `k >= len()`.
    /// Also known as `select` — the inverse of [`BatchedSet::rank`].
    ///
    /// The default materialises the contents (`O(n)`); ordered backends
    /// override with an indexed descent.
    fn kth(&self, k: usize) -> Option<K>
    where
        K: Clone,
    {
        if k >= self.len() {
            return None;
        }
        self.collect_keys().into_iter().nth(k)
    }

    /// The largest key strictly smaller than `key`, or `None` when no key
    /// precedes it.  Derived from [`BatchedSet::rank`] + [`BatchedSet::kth`].
    fn predecessor(&self, key: &K) -> Option<K>
    where
        K: Clone,
    {
        match self.rank(key) {
            0 => None,
            r => self.kth(r - 1),
        }
    }

    /// The smallest key strictly greater than `key`, or `None` when no key
    /// follows it.  Derived from [`BatchedSet::rank`] + [`BatchedSet::kth`].
    fn successor(&self, key: &K) -> Option<K>
    where
        K: Clone,
    {
        self.kth(self.rank(key) + self.contains(key) as usize)
    }
}

/// An ordered key→value map driven by sorted operation batches — the
/// store-flavoured sibling of [`BatchedSet`].
///
/// Same computational model: mutations arrive as sorted, deduplicated
/// batches ([`KvBatch`] for inserts, [`Batch`] for removals) and answer
/// **per batch element, in batch order**.  Backends are expected to share
/// machinery with their set implementation (`pbist`'s leaves carry a value
/// array parallel to the key run; the sorted-array baseline keeps a second
/// parallel vector).
///
/// # Duplicate / upsert policy
///
/// [`BatchedMap::batch_insert_kv`] is an **upsert with last-wins
/// semantics**: a key already present keeps its slot but takes the batch's
/// value (the flag reports `false` = not newly inserted), and duplicate
/// keys *within* one input are resolved at [`KvBatch`] construction by
/// keeping the last occurrence.  The net effect equals applying the raw
/// input pairs one `insert(k, v)` at a time in input order.
pub trait BatchedMap<K: Ord, V> {
    /// Number of keys in the map.
    fn len(&self) -> usize;

    /// Returns `true` when the map holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored under `key`, or `None` when absent.
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone;

    /// Number of keys strictly smaller than `key`.
    fn rank(&self, key: &K) -> usize;

    /// One lookup per batch element: `result[i]` is `batch[i]`'s value, or
    /// `None` when absent.
    fn batch_get(&self, batch: &Batch<K>) -> Vec<Option<V>>
    where
        V: Clone;

    /// Upserts every pair (see the trait-level duplicate policy):
    /// `result[i]` is `true` iff key `i` was **newly** inserted; `false`
    /// means it was present and its value has been overwritten.
    fn batch_insert_kv(&mut self, batch: &KvBatch<K, V>) -> Vec<bool>;

    /// Removes every batch key: `result[i]` is `true` iff `batch[i]` was
    /// present (and its pair has now been removed).
    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool>;

    /// Clones every pair out of the map in ascending key order — the
    /// durability tier's snapshot source, mirroring
    /// [`BatchedSet::collect_keys`].
    fn collect_entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone;

    /// Pairs whose keys fall inside the `(lo, hi)` bound pair, ascending.
    /// Default materialises and slices (`O(n)`); ordered backends override.
    fn range_entries(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let (start, end) = bounds_to_rank_interval(
            self.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains_key(k),
        );
        let mut entries = self.collect_entries();
        entries.truncate(end);
        entries.drain(..start);
        entries
    }

    /// Keys inside the `(lo, hi)` bound pair, ascending (the key half of
    /// [`BatchedMap::range_entries`]).
    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Clone,
        V: Clone,
    {
        self.range_entries(lo, hi)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Number of keys inside the `(lo, hi)` bound pair — two rank queries.
    fn range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        let (start, end) = bounds_to_rank_interval(
            self.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains_key(k),
        );
        end - start
    }

    /// The `k`-th smallest pair (0-indexed), or `None` when `k >= len()`.
    fn kth(&self, k: usize) -> Option<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        if k >= self.len() {
            return None;
        }
        self.collect_entries().into_iter().nth(k)
    }

    /// The largest key strictly smaller than `key`, or `None`.
    fn predecessor(&self, key: &K) -> Option<K>
    where
        K: Clone,
        V: Clone,
    {
        match self.rank(key) {
            0 => None,
            r => self.kth(r - 1).map(|(k, _)| k),
        }
    }

    /// The smallest key strictly greater than `key`, or `None`.
    fn successor(&self, key: &K) -> Option<K>
    where
        K: Clone,
        V: Clone,
    {
        self.kth(self.rank(key) + self.contains_key(key) as usize)
            .map(|(k, _)| k)
    }

    /// Membership without cloning the value — the `contains` the rank
    /// arithmetic above needs.
    fn contains_key(&self, key: &K) -> bool;
}
///
/// Produced by [`BatchedSet::publish_root`] and consumed by the
/// flat-combining front-end's wait-free read path: the combiner publishes a
/// fresh view at the end of every mutating round, readers clone the `Arc`
/// and query it with no further coordination.  Implementations must be
/// cheap to query from many threads at once (`Send + Sync`, interior
/// immutability).
pub trait SetView<K>: Send + Sync {
    /// Number of keys in the viewed set.
    fn len(&self) -> usize;

    /// Returns `true` when the viewed set holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Number of keys strictly smaller than `key`.
    fn rank(&self, key: &K) -> usize;

    /// The smallest key, or `None` for an empty view.
    fn min(&self) -> Option<&K>;

    /// The largest key, or `None` for an empty view.
    fn max(&self) -> Option<&K>;

    /// Answers one membership query per batch element into `out` (cleared
    /// first, then filled to exactly `batch.len()` entries) — the buffer
    /// reuse mirrors [`BatchedSet::batch_contains_report`].
    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>);

    /// Allocating variant of [`SetView::batch_contains_report`].
    fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::new();
        self.batch_contains_report(batch, &mut out);
        out
    }

    /// Clones every key out of the view in ascending order (the same
    /// contract as [`BatchedSet::collect_keys`], frozen at the view's
    /// linearisation point).
    fn collect_keys(&self) -> Vec<K>;

    /// Keys inside the `(lo, hi)` bound pair, ascending — the view-side
    /// twin of [`BatchedSet::range_keys`], frozen at the view's
    /// linearisation point.  The default materialises and slices (`O(n)`);
    /// real views override with a structure-aware carve.
    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Ord + Clone,
    {
        let (start, end) =
            bounds_to_rank_interval(self.len(), lo, hi, |k| self.rank(k), |k| self.contains(k));
        let mut keys = self.collect_keys();
        keys.truncate(end);
        keys.drain(..start);
        keys
    }

    /// Number of keys inside the `(lo, hi)` bound pair — two rank queries.
    fn range_count(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize
    where
        K: Ord,
    {
        let (start, end) =
            bounds_to_rank_interval(self.len(), lo, hi, |k| self.rank(k), |k| self.contains(k));
        end - start
    }

    /// The `k`-th smallest key (0-indexed), or `None` when `k >= len()`.
    /// Default is `O(n)`; real views override with an indexed descent.
    fn kth(&self, k: usize) -> Option<K>
    where
        K: Clone,
    {
        if k >= self.len() {
            return None;
        }
        self.collect_keys().into_iter().nth(k)
    }

    /// The largest key strictly smaller than `key`, or `None`.
    fn predecessor(&self, key: &K) -> Option<K>
    where
        K: Ord + Clone,
    {
        match self.rank(key) {
            0 => None,
            r => self.kth(r - 1),
        }
    }

    /// The smallest key strictly greater than `key`, or `None`.
    fn successor(&self, key: &K) -> Option<K>
    where
        K: Ord + Clone,
    {
        self.kth(self.rank(key) + self.contains(key) as usize)
    }
}

/// The fallback [`SetView`]: a shared sorted array, queried by binary
/// search.
///
/// [`BatchedSet::publish_root`]'s default implementation collects the set's
/// keys into one of these.  Backends that already keep their keys in a
/// sorted array (`baselines::SortedArraySet`) can share the allocation via
/// [`SortedVecView::from_arc`] and publish in `O(1)`.
pub struct SortedVecView<K> {
    keys: Arc<Vec<K>>,
}

impl<K: Ord> SortedVecView<K> {
    /// Wraps a sorted, deduplicated key vector (checked with a
    /// `debug_assert!`).
    pub fn new(keys: Vec<K>) -> SortedVecView<K> {
        SortedVecView::from_arc(Arc::new(keys))
    }

    /// Shares an already-`Arc`'d sorted, deduplicated key vector without
    /// copying it.
    pub fn from_arc(keys: Arc<Vec<K>>) -> SortedVecView<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        SortedVecView { keys }
    }
}

impl<K: Ord + Clone + Send + Sync> SetView<K> for SortedVecView<K> {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    fn rank(&self, key: &K) -> usize {
        self.keys.partition_point(|k| k < key)
    }

    fn min(&self) -> Option<&K> {
        self.keys.first()
    }

    fn max(&self) -> Option<&K> {
        self.keys.last()
    }

    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        out.extend(batch.iter().map(|q| self.contains(q)));
    }

    fn collect_keys(&self) -> Vec<K> {
        self.keys.as_ref().clone()
    }

    // Ordered queries on a sorted array are direct slice operations —
    // `O(log n)` to locate plus the output copy, no full materialisation.

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        let (start, end) = bounds_to_rank_interval(
            self.keys.len(),
            lo,
            hi,
            |k| self.rank(k),
            |k| self.contains(k),
        );
        self.keys[start..end].to_vec()
    }

    fn kth(&self, k: usize) -> Option<K> {
        self.keys.get(k).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let batch = Batch::from_unsorted(vec![3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
        assert_eq!(batch.as_slice(), &[1, 2, 3, 4, 5, 6, 9]);
        assert_eq!(batch.len(), 7);
        assert!(!batch.is_empty());
    }

    #[test]
    fn from_sorted_accepts_strictly_increasing() {
        let batch = Batch::from_sorted(vec![1u64, 2, 3]).unwrap();
        assert_eq!(batch.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_sorted_reports_first_violation() {
        assert_eq!(
            Batch::from_sorted(vec![1u64, 2, 2, 3]),
            Err(BatchError::Duplicate { index: 1 })
        );
        assert_eq!(
            Batch::from_sorted(vec![5u64, 4]),
            Err(BatchError::OutOfOrder { index: 0 })
        );
        // A mixed violation reports the *first* offending pair only.
        assert_eq!(
            Batch::from_sorted(vec![1u64, 3, 2, 2]),
            Err(BatchError::OutOfOrder { index: 1 })
        );
    }

    /// Regression test: the rendered message must name the offending index
    /// (and which way the invariant broke), not just carry it in the typed
    /// error — a failed ingest log line has the string, not the enum.
    #[test]
    fn from_sorted_error_message_names_the_offending_index() {
        let dup = Batch::from_sorted(vec![10u64, 20, 20]).unwrap_err();
        assert_eq!(dup.index(), 1);
        let msg = dup.to_string();
        assert!(msg.contains("keys[1]"), "{msg}");
        assert!(msg.contains("duplicate key at index 1"), "{msg}");

        let ooo = Batch::from_sorted(vec![10u64, 20, 15]).unwrap_err();
        assert_eq!(ooo.index(), 1);
        let msg = ooo.to_string();
        assert!(msg.contains("keys[1]"), "{msg}");
        assert!(msg.contains("out of order at index 1"), "{msg}");

        let deep = BatchError::Duplicate { index: 7 }.to_string();
        assert!(deep.contains("index 7"), "{deep}");
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch: Batch<u64> = Batch::empty();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(Batch::<u64>::default(), batch);
    }

    #[test]
    fn split_at_offsets_carves_contiguous_sub_batches() {
        let batch = Batch::from_unsorted(vec![1u64, 3, 5, 7, 9, 11]);
        let parts = batch.split_at_offsets(&[0, 2, 2, 5, 6]);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].as_slice(), &[1, 3]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2].as_slice(), &[5, 7, 9]);
        assert_eq!(parts[3].as_slice(), &[11]);
        // Degenerate scans are fine: one segment, or an empty batch.
        assert_eq!(batch.split_at_offsets(&[0, 6])[0], batch);
        let empty: Batch<u64> = Batch::empty();
        assert!(empty.split_at_offsets(&[0, 0])[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "offsets must end at the batch length")]
    fn split_at_offsets_rejects_short_scans() {
        Batch::from_unsorted(vec![1u64, 2, 3]).split_at_offsets(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "offsets must be non-decreasing")]
    fn split_at_offsets_rejects_decreasing_scans() {
        Batch::from_unsorted(vec![1u64, 2, 3]).split_at_offsets(&[0, 2, 1, 3]);
    }

    #[test]
    fn merge_recombines_disjoint_and_overlapping_batches() {
        let a = Batch::from_unsorted(vec![1u64, 3, 5]);
        let b = Batch::from_unsorted(vec![2u64, 3, 6]);
        assert_eq!(a.merge(&b).as_slice(), &[1, 2, 3, 5, 6]);
        assert_eq!(b.merge(&a), a.merge(&b), "merge is symmetric");
        let empty: Batch<u64> = Batch::empty();
        assert_eq!(a.merge(&empty), a);
        assert_eq!(empty.merge(&a), a);
        // Split-then-merge round-trips.
        let batch = Batch::from_unsorted((0..100u64).collect());
        let parts = batch.split_at_offsets(&[0, 33, 66, 100]);
        let rejoined = parts[0].merge(&parts[1]).merge(&parts[2]);
        assert_eq!(rejoined, batch);
    }

    #[test]
    fn deref_exposes_slice_methods() {
        let batch = Batch::from_unsorted(vec![10u64, 20, 30]);
        assert_eq!(batch.iter().sum::<u64>(), 60);
        assert_eq!(batch.binary_search(&20), Ok(1));
    }

    /// Minimal trait impl exercising only the *allocating* batch methods, so
    /// the `_report` defaults below are the trait's own delegation.
    struct ToySet(Vec<u64>);

    impl BatchedSet<u64> for ToySet {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn contains(&self, key: &u64) -> bool {
            self.0.binary_search(key).is_ok()
        }
        fn rank(&self, key: &u64) -> usize {
            self.0.partition_point(|k| k < key)
        }
        fn min(&self) -> Option<&u64> {
            self.0.first()
        }
        fn max(&self) -> Option<&u64> {
            self.0.last()
        }
        fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
            batch.iter().map(|q| self.contains(q)).collect()
        }
        fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            let flags: Vec<bool> = batch.iter().map(|q| !self.contains(q)).collect();
            self.0.extend(
                batch
                    .iter()
                    .zip(&flags)
                    .filter(|(_, &f)| f)
                    .map(|(q, _)| *q),
            );
            self.0.sort_unstable();
            flags
        }
        fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            let flags: Vec<bool> = batch.iter().map(|q| self.contains(q)).collect();
            self.0.retain(|k| batch.binary_search(k).is_err());
            flags
        }
        fn collect_keys(&self) -> Vec<u64> {
            self.0.clone()
        }
    }

    #[test]
    fn collect_keys_returns_sorted_contents() {
        let set = ToySet(vec![2, 4, 6]);
        let keys = set.collect_keys();
        assert_eq!(keys, vec![2, 4, 6]);
        assert!(Batch::from_sorted(keys).is_ok(), "collects a valid batch");
    }

    #[test]
    fn default_publish_root_freezes_the_contents() {
        let mut set = ToySet(vec![2, 4, 6]);
        let view = set.publish_root();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert!(view.contains(&4) && !view.contains(&5));
        assert_eq!(view.rank(&5), 2);
        assert_eq!(view.min(), Some(&2));
        assert_eq!(view.max(), Some(&6));
        assert_eq!(
            view.batch_contains(&Batch::from_unsorted(vec![1, 2, 6])),
            vec![false, true, true]
        );
        // Mutations after a publication must not reach the frozen view.
        set.insert_one(&5);
        assert!(!view.contains(&5), "published views are immutable");
        assert_eq!(view.collect_keys(), vec![2, 4, 6]);
        let fresh = set.publish_root();
        assert!(fresh.contains(&5));
        let mut out = vec![true; 8]; // stale contents must be cleared
        fresh.batch_contains_report(&Batch::empty(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sorted_vec_view_shares_an_arc_without_copying() {
        let keys = Arc::new(vec![1u64, 3, 5]);
        let view = SortedVecView::from_arc(Arc::clone(&keys));
        assert_eq!(Arc::strong_count(&keys), 2, "from_arc must not copy");
        assert!(view.contains(&3));
        assert_eq!(view.rank(&4), 2);
        let empty: SortedVecView<u64> = SortedVecView::new(Vec::new());
        assert!(SetView::is_empty(&empty));
        assert_eq!(SetView::min(&empty), None);
        assert_eq!(SetView::max(&empty), None);
    }

    #[test]
    fn key_codec_round_trips_and_preserves_order() {
        fn check<K: KeyCodec + Ord + Copy + std::fmt::Debug>(samples: &[K]) {
            let mut encoded: Vec<(Vec<u8>, K)> = samples
                .iter()
                .map(|k| {
                    let mut buf = vec![0u8; K::WIDTH];
                    k.encode(&mut buf);
                    assert_eq!(K::decode(&buf), *k, "round trip of {k:?}");
                    (buf, *k)
                })
                .collect();
            // Bytewise order must agree with key order.
            encoded.sort();
            let mut keys: Vec<K> = encoded.into_iter().map(|(_, k)| k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            keys.dedup();
            sorted.dedup();
            assert_eq!(keys, sorted, "byte order disagrees with key order");
        }
        check::<u64>(&[0, 1, 42, u64::MAX / 2, u64::MAX]);
        check::<u32>(&[0, 7, u32::MAX]);
        check::<i64>(&[i64::MIN, -5, -1, 0, 1, 5, i64::MAX]);
        check::<i32>(&[i32::MIN, -1, 0, i32::MAX]);
        check::<u8>(&[0, 128, 255]);
        check::<u128>(&[0, u128::from(u64::MAX) + 1, u128::MAX]);
        check::<i128>(&[i128::MIN, -1, 0, i128::MAX]);
        assert_eq!(<u64 as KeyCodec>::WIDTH, 8);
        assert_eq!(<i32 as KeyCodec>::WIDTH, 4);
    }

    #[test]
    fn default_report_variants_match_allocating_ones() {
        let mut set = ToySet(vec![2, 4, 6]);
        let batch = Batch::from_unsorted(vec![1u64, 2, 6, 9]);
        let mut out = vec![true; 32]; // stale contents must be cleared

        set.batch_contains_report(&batch, &mut out);
        assert_eq!(out, vec![false, true, true, false]);

        set.batch_insert_report(&batch, &mut out);
        assert_eq!(out, vec![true, false, false, true]);
        assert_eq!(set.0, vec![1, 2, 4, 6, 9]);

        set.batch_remove_report(&batch, &mut out);
        assert_eq!(out, vec![true, true, true, true]);
        assert_eq!(set.0, vec![4]);
    }

    #[test]
    fn default_point_mutators_match_singleton_batches() {
        let mut set = ToySet(vec![3, 5]);
        assert!(set.insert_one(&4));
        assert!(!set.insert_one(&4));
        assert!(set.remove_one(&3));
        assert!(!set.remove_one(&3));
        assert_eq!(set.0, vec![4, 5]);
    }

    #[test]
    fn kv_batch_from_unsorted_is_last_wins() {
        let batch =
            KvBatch::from_unsorted(vec![(5u64, "a"), (1, "b"), (5, "c"), (5, "d"), (3, "e")]);
        assert_eq!(batch.keys(), &[1, 3, 5]);
        assert_eq!(batch.vals(), &["b", "e", "d"]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(
            batch.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            vec![(1, "b"), (3, "e"), (5, "d")]
        );
        assert_eq!(batch.key_batch().as_slice(), &[1, 3, 5]);
        let (keys, vals) = batch.into_parts();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(vals, vec!["b", "e", "d"]);
        assert!(KvBatch::<u64, ()>::empty().is_empty());
    }

    #[test]
    fn kv_batch_from_sorted_validates_keys() {
        assert!(KvBatch::from_sorted(vec![(1u64, 'x'), (2, 'y')]).is_ok());
        assert_eq!(
            KvBatch::from_sorted(vec![(1u64, 'x'), (1, 'y')]),
            Err(BatchError::Duplicate { index: 0 })
        );
        assert_eq!(
            KvBatch::from_sorted(vec![(2u64, 'x'), (1, 'y')]),
            Err(BatchError::OutOfOrder { index: 0 })
        );
    }

    #[test]
    fn bounds_to_rank_interval_covers_all_bound_shapes() {
        let keys = [10u64, 20, 30, 40];
        let interval = |lo, hi| {
            bounds_to_rank_interval(
                keys.len(),
                lo,
                hi,
                |k| keys.partition_point(|x| x < k),
                |k| keys.binary_search(k).is_ok(),
            )
        };
        assert_eq!(interval(Bound::Unbounded, Bound::Unbounded), (0, 4));
        assert_eq!(interval(Bound::Included(&20), Bound::Included(&30)), (1, 3));
        assert_eq!(interval(Bound::Excluded(&20), Bound::Excluded(&30)), (2, 2));
        assert_eq!(interval(Bound::Included(&15), Bound::Excluded(&35)), (1, 3));
        // Inverted bounds clamp to the empty interval instead of panicking.
        assert_eq!(interval(Bound::Included(&40), Bound::Excluded(&10)), (3, 3));
    }

    /// The `BatchedSet` ordered-query defaults, driven through `ToySet`
    /// (which overrides none of them), against a `BTreeSet` oracle.
    #[test]
    fn default_ordered_queries_match_btreeset() {
        use std::collections::BTreeSet;
        use std::ops::Bound::*;
        let keys: Vec<u64> = (0..40).map(|i| i * 5).collect();
        let set = ToySet(keys.clone());
        let oracle: BTreeSet<u64> = keys.iter().copied().collect();

        for lo in [
            Unbounded,
            Included(&25u64),
            Excluded(&25u64),
            Included(&27u64),
        ] {
            for hi in [
                Unbounded,
                Included(&150u64),
                Excluded(&150u64),
                Excluded(&152u64),
            ] {
                let expect: Vec<u64> = oracle.range((lo, hi)).copied().collect();
                assert_eq!(set.range_keys(lo, hi), expect, "{lo:?}..{hi:?}");
                assert_eq!(set.range_count(lo, hi), expect.len(), "{lo:?}..{hi:?}");
            }
        }
        assert_eq!(set.kth(0), Some(0));
        assert_eq!(set.kth(39), Some(195));
        assert_eq!(set.kth(40), None);
        assert_eq!(set.predecessor(&0), None);
        assert_eq!(set.predecessor(&1), Some(0));
        assert_eq!(set.predecessor(&25), Some(20));
        assert_eq!(set.successor(&195), None);
        assert_eq!(set.successor(&194), Some(195));
        assert_eq!(set.successor(&25), Some(30));
        // Views share the same defaults.
        let view = set.publish_root();
        assert_eq!(
            view.range_keys(Included(&25), Excluded(&150)),
            set.range_keys(Included(&25), Excluded(&150))
        );
        assert_eq!(view.range_count(Unbounded, Unbounded), 40);
        assert_eq!(view.kth(5), Some(25));
        assert_eq!(view.predecessor(&25), Some(20));
        assert_eq!(view.successor(&25), Some(30));
        // publish_clone_keys: ToySet keeps the O(n) default, so the cost
        // it reports is exactly its length.
        assert_eq!(set.publish_clone_keys(), 40);
    }

    /// Minimal `BatchedMap` impl exercising the trait's derived defaults.
    struct ToyMap(Vec<(u64, char)>);

    impl BatchedMap<u64, char> for ToyMap {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: &u64) -> Option<char> {
            self.0
                .binary_search_by(|(k, _)| k.cmp(key))
                .ok()
                .map(|i| self.0[i].1)
        }
        fn rank(&self, key: &u64) -> usize {
            self.0.partition_point(|(k, _)| k < key)
        }
        fn batch_get(&self, batch: &Batch<u64>) -> Vec<Option<char>> {
            batch.iter().map(|q| self.get(q)).collect()
        }
        fn batch_insert_kv(&mut self, batch: &KvBatch<u64, char>) -> Vec<bool> {
            batch
                .iter()
                .map(|(k, v)| match self.0.binary_search_by(|(x, _)| x.cmp(k)) {
                    Ok(i) => {
                        self.0[i].1 = *v;
                        false
                    }
                    Err(i) => {
                        self.0.insert(i, (*k, *v));
                        true
                    }
                })
                .collect()
        }
        fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
            batch
                .iter()
                .map(|k| match self.0.binary_search_by(|(x, _)| x.cmp(k)) {
                    Ok(i) => {
                        self.0.remove(i);
                        true
                    }
                    Err(_) => false,
                })
                .collect()
        }
        fn collect_entries(&self) -> Vec<(u64, char)> {
            self.0.clone()
        }
        fn contains_key(&self, key: &u64) -> bool {
            self.get(key).is_some()
        }
    }

    #[test]
    fn map_trait_upserts_and_answers_ordered_queries() {
        use std::ops::Bound::*;
        let mut map = ToyMap(Vec::new());
        let ins = map.batch_insert_kv(&KvBatch::from_unsorted(vec![
            (3u64, 'a'),
            (1, 'b'),
            (3, 'c'),
        ]));
        assert_eq!(ins, vec![true, true], "two distinct keys after dedup");
        assert_eq!(map.get(&3), Some('c'), "last-wins within the batch");
        // Upsert: present key keeps its slot, takes the new value, flags false.
        let ins = map.batch_insert_kv(&KvBatch::from_unsorted(vec![(3u64, 'z'), (9, 'q')]));
        assert_eq!(ins, vec![false, true]);
        assert_eq!(map.get(&3), Some('z'));
        assert_eq!(
            map.batch_get(&Batch::from_unsorted(vec![1, 2, 9])),
            vec![Some('b'), None, Some('q')]
        );
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        assert_eq!(
            map.range_entries(Included(&1), Excluded(&9)),
            vec![(1, 'b'), (3, 'z')]
        );
        assert_eq!(map.range_keys(Unbounded, Unbounded), vec![1, 3, 9]);
        assert_eq!(map.range_count(Excluded(&1), Unbounded), 2);
        assert_eq!(map.kth(0), Some((1, 'b')));
        assert_eq!(map.kth(3), None);
        assert_eq!(map.predecessor(&3), Some(1));
        assert_eq!(map.predecessor(&1), None);
        assert_eq!(map.successor(&3), Some(9));
        assert_eq!(map.successor(&9), None);
        assert!(map.contains_key(&9));
        let gone = map.batch_remove(&Batch::from_unsorted(vec![1, 5]));
        assert_eq!(gone, vec![true, false]);
        assert_eq!(map.collect_entries(), vec![(3, 'z'), (9, 'q')]);
    }
}
