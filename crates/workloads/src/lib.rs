//! Deterministic workload generators for benchmarks and tests.
//!
//! The paper evaluates the batched interpolation search tree on key
//! distributions of varying skew; this crate reproduces those inputs without
//! pulling in an external RNG crate.  Everything is seeded and deterministic,
//! so a benchmark run (or a failing test) can be replayed exactly.
//!
//! * [`SplitMix64`] — the tiny, high-quality PRNG underlying all generators.
//! * [`uniform_keys`] / [`uniform_keys_distinct`] — i.i.d. uniform keys.
//! * [`ZipfSampler`] — Zipf-distributed ranks, for skewed access patterns.
//! * [`mixed_op_batches`] / [`mixed_op_batches_zipf`] — sequences of mixed
//!   read/write operation batches, the input shape of the batched-set API.

use std::ops::Range;

/// Fast 64-bit PRNG (Steele, Lea & Flood's SplitMix64).
///
/// Passes BigCrush, needs only 64 bits of state, and is cheap enough that
/// generation never dominates a benchmark's setup phase.  Not
/// cryptographically secure.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.  The same seed always produces the
    /// same sequence.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply trick; the modulo bias is at most
    /// `bound / 2^64`, which is negligible for every workload size here.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates `count` keys drawn i.i.d. uniformly from `range`.
/// Duplicates are possible (and likely, for narrow ranges).
///
/// ```
/// let keys = workloads::uniform_keys(42, 8, 0..100);
/// assert_eq!(keys.len(), 8);
/// assert!(keys.iter().all(|k| (0..100).contains(k)));
/// // Same seed, same keys.
/// assert_eq!(keys, workloads::uniform_keys(42, 8, 0..100));
/// ```
///
/// # Panics
///
/// Panics if `range` is empty.
pub fn uniform_keys(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| range.start + rng.next_below(width))
        .collect()
}

/// Generates `count` **distinct** keys from `range`, in random order.
///
/// Keys are drawn uniformly and rejected on collision, so `count` should be
/// well below the range width (it must not exceed it).
///
/// # Panics
///
/// Panics if `range` has fewer than `count` values.
pub fn uniform_keys_distinct(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    let width = range.end.saturating_sub(range.start);
    assert!(
        u64::try_from(count).is_ok_and(|c| c <= width),
        "range narrower than requested key count"
    );
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut keys = Vec::with_capacity(count);
    while keys.len() < count {
        let key = range.start + rng.next_below(width);
        if seen.insert(key) {
            keys.push(key);
        }
    }
    keys
}

/// Samples ranks `0..n` from a Zipf distribution with exponent `theta`:
/// rank `i` is drawn with probability proportional to `1 / (i + 1)^theta`.
///
/// Implemented with a precomputed cumulative table and binary search — O(n)
/// memory and setup, O(log n) per sample — which is plenty for the workload
/// sizes this reproduction targets.  `theta = 0` degenerates to uniform;
/// `theta ≈ 1` matches the skewed YCSB-style workloads from the paper's
/// evaluation.
///
/// ```
/// let mut zipf = workloads::ZipfSampler::new(7, 1000, 0.99);
/// let rank = zipf.next_rank();
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(seed: u64, n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler {
            cdf,
            rng: SplitMix64::new(seed),
        }
    }

    /// Draws the next rank in `[0, n)`.
    pub fn next_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf
            .partition_point(|&p| p <= u)
            .min(self.cdf.len() - 1)
    }

    /// Draws `count` ranks at once.
    pub fn take(&mut self, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.next_rank()).collect()
    }

    /// Number of distinct ranks this sampler draws from.
    pub fn num_ranks(&self) -> usize {
        self.cdf.len()
    }
}

/// What a generated operation batch does to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert the batch's keys.
    Insert,
    /// Remove the batch's keys.
    Remove,
    /// Query membership of the batch's keys.
    Contains,
}

/// One batched operation: a kind plus the raw keys it applies to.
///
/// Keys are emitted unsorted and possibly with duplicates — normalising them
/// is the job of the batched-set API boundary (`batchapi::Batch`), so these
/// generators model what arriving traffic actually looks like.
#[derive(Debug, Clone)]
pub struct OpBatch {
    /// The operation all keys in this batch perform.
    pub kind: OpKind,
    /// The keys, in arrival (unsorted) order.
    pub keys: Vec<u64>,
}

/// Relative weights for choosing each batch's [`OpKind`]:
/// `(insert, remove, contains)`.  Only ratios matter; `(1, 1, 8)` is a
/// read-heavy mix, `(1, 1, 0)` is update-only.
pub type OpMix = (u32, u32, u32);

fn pick_kind(rng: &mut SplitMix64, mix: OpMix) -> OpKind {
    let (ins, rem, con) = mix;
    let total = u64::from(ins) + u64::from(rem) + u64::from(con);
    assert!(total > 0, "operation mix must have a positive weight");
    let roll = rng.next_below(total);
    if roll < u64::from(ins) {
        OpKind::Insert
    } else if roll < u64::from(ins) + u64::from(rem) {
        OpKind::Remove
    } else {
        OpKind::Contains
    }
}

/// Generates `num_batches` operation batches of `batch_size` keys each, with
/// kinds drawn by the weights in `mix` and keys i.i.d. uniform over `range`.
///
/// ```
/// let ops = workloads::mixed_op_batches(9, 4, 100, 0..1000, (1, 1, 2));
/// assert_eq!(ops.len(), 4);
/// assert!(ops.iter().all(|b| b.keys.len() == 100));
/// ```
///
/// # Panics
///
/// Panics if `range` is empty or every weight in `mix` is zero.
pub fn mixed_op_batches(
    seed: u64,
    num_batches: usize,
    batch_size: usize,
    range: Range<u64>,
    mix: OpMix,
) -> Vec<OpBatch> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut rng = SplitMix64::new(seed);
    (0..num_batches)
        .map(|_| {
            let kind = pick_kind(&mut rng, mix);
            let keys = (0..batch_size)
                .map(|_| range.start + rng.next_below(width))
                .collect();
            OpBatch { kind, keys }
        })
        .collect()
}

/// Like [`mixed_op_batches`], but keys are drawn from `universe` by
/// Zipf-distributed rank with exponent `theta` — the skewed, hot-key traffic
/// of the paper's evaluation.
///
/// # Panics
///
/// Panics if `universe` is empty, `theta` is invalid (see
/// [`ZipfSampler::new`]), or every weight in `mix` is zero.
pub fn mixed_op_batches_zipf(
    seed: u64,
    num_batches: usize,
    batch_size: usize,
    universe: &[u64],
    theta: f64,
    mix: OpMix,
) -> Vec<OpBatch> {
    let mut rng = SplitMix64::new(seed);
    let mut zipf = ZipfSampler::new(seed ^ 0x5EED_2F17, universe.len(), theta);
    (0..num_batches)
        .map(|_| {
            let kind = pick_kind(&mut rng, mix);
            let keys = (0..batch_size)
                .map(|_| universe[zipf.next_rank()])
                .collect();
            OpBatch { kind, keys }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_keys_land_in_range() {
        let keys = uniform_keys(3, 1000, 10..20);
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|k| (10..20).contains(k)));
    }

    #[test]
    fn distinct_keys_are_distinct() {
        let keys = uniform_keys_distinct(5, 500, 0..10_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut zipf = ZipfSampler::new(17, 100, 1.0);
        let samples = zipf.take(20_000);
        assert!(samples.iter().all(|&r| r < 100));
        let head = samples.iter().filter(|&&r| r == 0).count();
        let tail = samples.iter().filter(|&&r| r == 99).count();
        // Rank 0 is ~100x more likely than rank 99 at theta = 1.
        assert!(head > tail * 4, "head={head} tail={tail}");
    }

    #[test]
    fn mixed_batches_are_deterministic_and_respect_shape() {
        let a = mixed_op_batches(31, 20, 64, 5..500, (1, 1, 2));
        let b = mixed_op_batches(31, 20, 64, 5..500, (1, 1, 2));
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.keys, y.keys);
            assert_eq!(x.keys.len(), 64);
            assert!(x.keys.iter().all(|k| (5..500).contains(k)));
        }
        // With all three weights positive, all three kinds eventually appear.
        let kinds: Vec<OpKind> = mixed_op_batches(31, 200, 1, 0..10, (1, 1, 1))
            .into_iter()
            .map(|b| b.kind)
            .collect();
        for kind in [OpKind::Insert, OpKind::Remove, OpKind::Contains] {
            assert!(kinds.contains(&kind), "{kind:?} never drawn");
        }
    }

    #[test]
    fn zero_weight_kinds_are_never_drawn() {
        let ops = mixed_op_batches(77, 100, 4, 0..100, (1, 0, 3));
        assert!(ops.iter().all(|b| b.kind != OpKind::Remove));
    }

    #[test]
    fn zipf_batches_draw_from_the_universe() {
        let universe: Vec<u64> = (0..50u64).map(|i| i * 1000).collect();
        let ops = mixed_op_batches_zipf(13, 10, 200, &universe, 0.99, (1, 1, 2));
        assert_eq!(ops.len(), 10);
        for batch in &ops {
            assert!(batch.keys.iter().all(|k| universe.contains(k)));
        }
        // Skew: the hottest key appears far more often than a cold one.
        let all: Vec<u64> = ops.iter().flat_map(|b| b.keys.iter().copied()).collect();
        let hot = all.iter().filter(|&&k| k == universe[0]).count();
        let cold = all.iter().filter(|&&k| k == universe[49]).count();
        assert!(hot > cold, "hot={hot} cold={cold}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut zipf = ZipfSampler::new(23, 10, 0.0);
        let samples = zipf.take(50_000);
        for rank in 0..10 {
            let count = samples.iter().filter(|&&r| r == rank).count();
            // Expected 5000 each; allow a wide tolerance.
            assert!((3500..6500).contains(&count), "rank {rank}: {count}");
        }
    }
}
