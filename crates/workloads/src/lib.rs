//! Deterministic workload generators for benchmarks and tests.
//!
//! The paper evaluates the batched interpolation search tree on key
//! distributions of varying skew; this crate reproduces those inputs without
//! pulling in an external RNG crate.  Everything is seeded and deterministic,
//! so a benchmark run (or a failing test) can be replayed exactly.
//!
//! * [`SplitMix64`] — the tiny, high-quality PRNG underlying all generators.
//! * [`uniform_keys`] / [`uniform_keys_distinct`] — i.i.d. uniform keys.
//! * [`ZipfSampler`] — Zipf-distributed ranks, for skewed access patterns.

use std::ops::Range;

/// Fast 64-bit PRNG (Steele, Lea & Flood's SplitMix64).
///
/// Passes BigCrush, needs only 64 bits of state, and is cheap enough that
/// generation never dominates a benchmark's setup phase.  Not
/// cryptographically secure.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.  The same seed always produces the
    /// same sequence.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply trick; the modulo bias is at most
    /// `bound / 2^64`, which is negligible for every workload size here.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates `count` keys drawn i.i.d. uniformly from `range`.
/// Duplicates are possible (and likely, for narrow ranges).
///
/// ```
/// let keys = workloads::uniform_keys(42, 8, 0..100);
/// assert_eq!(keys.len(), 8);
/// assert!(keys.iter().all(|k| (0..100).contains(k)));
/// // Same seed, same keys.
/// assert_eq!(keys, workloads::uniform_keys(42, 8, 0..100));
/// ```
///
/// # Panics
///
/// Panics if `range` is empty.
pub fn uniform_keys(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| range.start + rng.next_below(width))
        .collect()
}

/// Generates `count` **distinct** keys from `range`, in random order.
///
/// Keys are drawn uniformly and rejected on collision, so `count` should be
/// well below the range width (it must not exceed it).
///
/// # Panics
///
/// Panics if `range` has fewer than `count` values.
pub fn uniform_keys_distinct(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    let width = range.end.saturating_sub(range.start);
    assert!(
        u64::try_from(count).map_or(false, |c| c <= width),
        "range narrower than requested key count"
    );
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut keys = Vec::with_capacity(count);
    while keys.len() < count {
        let key = range.start + rng.next_below(width);
        if seen.insert(key) {
            keys.push(key);
        }
    }
    keys
}

/// Samples ranks `0..n` from a Zipf distribution with exponent `theta`:
/// rank `i` is drawn with probability proportional to `1 / (i + 1)^theta`.
///
/// Implemented with a precomputed cumulative table and binary search — O(n)
/// memory and setup, O(log n) per sample — which is plenty for the workload
/// sizes this reproduction targets.  `theta = 0` degenerates to uniform;
/// `theta ≈ 1` matches the skewed YCSB-style workloads from the paper's
/// evaluation.
///
/// ```
/// let mut zipf = workloads::ZipfSampler::new(7, 1000, 0.99);
/// let rank = zipf.next();
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(seed: u64, n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler {
            cdf,
            rng: SplitMix64::new(seed),
        }
    }

    /// Draws the next rank in `[0, n)`.
    pub fn next(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf
            .partition_point(|&p| p <= u)
            .min(self.cdf.len() - 1)
    }

    /// Draws `count` ranks at once.
    pub fn take(&mut self, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.next()).collect()
    }

    /// Number of distinct ranks this sampler draws from.
    pub fn num_ranks(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_keys_land_in_range() {
        let keys = uniform_keys(3, 1000, 10..20);
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|k| (10..20).contains(k)));
    }

    #[test]
    fn distinct_keys_are_distinct() {
        let keys = uniform_keys_distinct(5, 500, 0..10_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut zipf = ZipfSampler::new(17, 100, 1.0);
        let samples = zipf.take(20_000);
        assert!(samples.iter().all(|&r| r < 100));
        let head = samples.iter().filter(|&&r| r == 0).count();
        let tail = samples.iter().filter(|&&r| r == 99).count();
        // Rank 0 is ~100x more likely than rank 99 at theta = 1.
        assert!(head > tail * 4, "head={head} tail={tail}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut zipf = ZipfSampler::new(23, 10, 0.0);
        let samples = zipf.take(50_000);
        for rank in 0..10 {
            let count = samples.iter().filter(|&&r| r == rank).count();
            // Expected 5000 each; allow a wide tolerance.
            assert!((3500..6500).contains(&count), "rank {rank}: {count}");
        }
    }
}
