//! Deterministic workload generators for benchmarks and tests.
//!
//! The paper evaluates the batched interpolation search tree on key
//! distributions of varying skew; this crate reproduces those inputs without
//! pulling in an external RNG crate.  Everything is seeded and deterministic,
//! so a benchmark run (or a failing test) can be replayed exactly.
//!
//! * [`SplitMix64`] — the tiny, high-quality PRNG underlying all generators.
//! * [`uniform_keys`] / [`uniform_keys_distinct`] — i.i.d. uniform keys.
//! * [`ZipfSampler`] — Zipf-distributed ranks, for skewed access patterns.
//! * [`mixed_op_batches`] / [`mixed_op_batches_zipf`] — sequences of mixed
//!   read/write operation batches, the input shape of the batched-set API.
//! * [`range_queries`] / [`scan_client_traces`] — half-open range scans and
//!   point/scan read mixes, the input shape of the ordered-query surface.

use std::ops::Range;

/// Fast 64-bit PRNG (Steele, Lea & Flood's SplitMix64).
///
/// Passes BigCrush, needs only 64 bits of state, and is cheap enough that
/// generation never dominates a benchmark's setup phase.  Not
/// cryptographically secure.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.  The same seed always produces the
    /// same sequence.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply trick; the modulo bias is at most
    /// `bound / 2^64`, which is negligible for every workload size here.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates `count` keys drawn i.i.d. uniformly from `range`.
/// Duplicates are possible (and likely, for narrow ranges).
///
/// ```
/// let keys = workloads::uniform_keys(42, 8, 0..100);
/// assert_eq!(keys.len(), 8);
/// assert!(keys.iter().all(|k| (0..100).contains(k)));
/// // Same seed, same keys.
/// assert_eq!(keys, workloads::uniform_keys(42, 8, 0..100));
/// ```
///
/// # Panics
///
/// Panics if `range` is empty.
pub fn uniform_keys(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| range.start + rng.next_below(width))
        .collect()
}

/// Generates `count` **distinct** keys from `range`, in random order.
///
/// Keys are drawn uniformly and rejected on collision, so `count` should be
/// well below the range width (it must not exceed it).
///
/// # Panics
///
/// Panics if `range` has fewer than `count` values.
pub fn uniform_keys_distinct(seed: u64, count: usize, range: Range<u64>) -> Vec<u64> {
    let width = range.end.saturating_sub(range.start);
    assert!(
        u64::try_from(count).is_ok_and(|c| c <= width),
        "range narrower than requested key count"
    );
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut keys = Vec::with_capacity(count);
    while keys.len() < count {
        let key = range.start + rng.next_below(width);
        if seen.insert(key) {
            keys.push(key);
        }
    }
    keys
}

/// Samples ranks `0..n` from a Zipf distribution with exponent `theta`:
/// rank `i` is drawn with probability proportional to `1 / (i + 1)^theta`.
///
/// Implemented with a precomputed cumulative table and binary search — O(n)
/// memory and setup, O(log n) per sample — which is plenty for the workload
/// sizes this reproduction targets.  `theta = 0` degenerates to uniform;
/// `theta ≈ 1` matches the skewed YCSB-style workloads from the paper's
/// evaluation.
///
/// ```
/// let mut zipf = workloads::ZipfSampler::new(7, 1000, 0.99);
/// let rank = zipf.next_rank();
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(seed: u64, n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler {
            cdf,
            rng: SplitMix64::new(seed),
        }
    }

    /// Draws the next rank in `[0, n)`.
    pub fn next_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf
            .partition_point(|&p| p <= u)
            .min(self.cdf.len() - 1)
    }

    /// Draws `count` ranks at once.
    pub fn take(&mut self, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.next_rank()).collect()
    }

    /// Number of distinct ranks this sampler draws from.
    pub fn num_ranks(&self) -> usize {
        self.cdf.len()
    }
}

/// What a generated operation batch does to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert the batch's keys.
    Insert,
    /// Remove the batch's keys.
    Remove,
    /// Query membership of the batch's keys.
    Contains,
}

/// One batched operation: a kind plus the raw keys it applies to.
///
/// Keys are emitted unsorted and possibly with duplicates — normalising them
/// is the job of the batched-set API boundary (`batchapi::Batch`), so these
/// generators model what arriving traffic actually looks like.
#[derive(Debug, Clone)]
pub struct OpBatch {
    /// The operation all keys in this batch perform.
    pub kind: OpKind,
    /// The keys, in arrival (unsorted) order.
    pub keys: Vec<u64>,
}

/// Relative weights for choosing each batch's [`OpKind`]:
/// `(insert, remove, contains)`.  Only ratios matter; `(1, 1, 8)` is a
/// read-heavy mix, `(1, 1, 0)` is update-only.
pub type OpMix = (u32, u32, u32);

fn pick_kind(rng: &mut SplitMix64, mix: OpMix) -> OpKind {
    let (ins, rem, con) = mix;
    let total = u64::from(ins) + u64::from(rem) + u64::from(con);
    assert!(total > 0, "operation mix must have a positive weight");
    let roll = rng.next_below(total);
    if roll < u64::from(ins) {
        OpKind::Insert
    } else if roll < u64::from(ins) + u64::from(rem) {
        OpKind::Remove
    } else {
        OpKind::Contains
    }
}

/// Generates `num_batches` operation batches of `batch_size` keys each, with
/// kinds drawn by the weights in `mix` and keys i.i.d. uniform over `range`.
///
/// ```
/// let ops = workloads::mixed_op_batches(9, 4, 100, 0..1000, (1, 1, 2));
/// assert_eq!(ops.len(), 4);
/// assert!(ops.iter().all(|b| b.keys.len() == 100));
/// ```
///
/// # Panics
///
/// Panics if `range` is empty or every weight in `mix` is zero.
pub fn mixed_op_batches(
    seed: u64,
    num_batches: usize,
    batch_size: usize,
    range: Range<u64>,
    mix: OpMix,
) -> Vec<OpBatch> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut rng = SplitMix64::new(seed);
    (0..num_batches)
        .map(|_| {
            let kind = pick_kind(&mut rng, mix);
            let keys = (0..batch_size)
                .map(|_| range.start + rng.next_below(width))
                .collect();
            OpBatch { kind, keys }
        })
        .collect()
}

/// Like [`mixed_op_batches`], but keys are drawn from `universe` by
/// Zipf-distributed rank with exponent `theta` — the skewed, hot-key traffic
/// of the paper's evaluation.
///
/// # Panics
///
/// Panics if `universe` is empty, `theta` is invalid (see
/// [`ZipfSampler::new`]), or every weight in `mix` is zero.
pub fn mixed_op_batches_zipf(
    seed: u64,
    num_batches: usize,
    batch_size: usize,
    universe: &[u64],
    theta: f64,
    mix: OpMix,
) -> Vec<OpBatch> {
    let mut rng = SplitMix64::new(seed);
    let mut zipf = ZipfSampler::new(seed ^ 0x5EED_2F17, universe.len(), theta);
    (0..num_batches)
        .map(|_| {
            let kind = pick_kind(&mut rng, mix);
            let keys = (0..batch_size)
                .map(|_| universe[zipf.next_rank()])
                .collect();
            OpBatch { kind, keys }
        })
        .collect()
}

/// A read-only operation for workloads that mix point lookups with range
/// scans — the input shape of the ordered-query surface
/// (`range_keys`/`range_count` on the batched sets and the combining
/// front-end's wait-free snapshot reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOp {
    /// Membership probe of one key.
    Point(u64),
    /// Scan of the half-open key interval `[lo, hi)`.
    Scan(u64, u64),
}

/// Generates `count` half-open range queries `[lo, hi)` over `range`:
/// spans are uniform in `[1, max_span]` (clamped to the range width) and
/// each query lies entirely inside `range`.
///
/// ```
/// let queries = workloads::range_queries(3, 16, 100..1000, 50);
/// assert_eq!(queries.len(), 16);
/// for (lo, hi) in queries {
///     assert!(100 <= lo && lo < hi && hi <= 1000 && hi - lo <= 50);
/// }
/// ```
///
/// # Panics
///
/// Panics if `range` is empty or `max_span` is zero.
pub fn range_queries(seed: u64, count: usize, range: Range<u64>, max_span: u64) -> Vec<(u64, u64)> {
    assert!(range.start < range.end, "empty key range");
    assert!(max_span > 0, "zero-width scans are not a workload");
    let width = range.end - range.start;
    let max_span = max_span.min(width);
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let span = 1 + rng.next_below(max_span);
            let lo = range.start + rng.next_below(width - span + 1);
            (lo, lo + span)
        })
        .collect()
}

/// Generates one [`ReadOp`] trace per client thread: each operation is a
/// [`ReadOp::Scan`] with probability `scan_permille / 1000` (spans as in
/// [`range_queries`]) and a [`ReadOp::Point`] probe otherwise.  Per-client
/// seeds derive from `seed` exactly like [`client_traces`], so traces are
/// independent, deterministic streams.
///
/// # Panics
///
/// Panics if `range` is empty, `max_span` is zero, or `scan_permille`
/// exceeds 1000.
pub fn scan_client_traces(
    seed: u64,
    clients: usize,
    ops_per_client: usize,
    range: Range<u64>,
    max_span: u64,
    scan_permille: u32,
) -> Vec<Vec<ReadOp>> {
    assert!(range.start < range.end, "empty key range");
    assert!(max_span > 0, "zero-width scans are not a workload");
    assert!(scan_permille <= 1000, "scan_permille is out of [0, 1000]");
    let width = range.end - range.start;
    let max_span = max_span.min(width);
    let mut seeder = SplitMix64::new(seed);
    (0..clients)
        .map(|_| {
            let mut rng = SplitMix64::new(seeder.next_u64());
            (0..ops_per_client)
                .map(|_| {
                    if rng.next_below(1000) < u64::from(scan_permille) {
                        let span = 1 + rng.next_below(max_span);
                        let lo = range.start + rng.next_below(width - span + 1);
                        ReadOp::Scan(lo, lo + span)
                    } else {
                        ReadOp::Point(range.start + rng.next_below(width))
                    }
                })
                .collect()
        })
        .collect()
}

/// One client's operation trace: `(kind, key)` pairs in issue order.
///
/// This is the input shape of the *concurrent* front-end (`combine`):
/// single-key operations, one stream per client thread, rather than the
/// pre-batched [`OpBatch`]es the batched API consumes directly.
pub type ClientTrace = Vec<(OpKind, u64)>;

/// Generates one operation trace per client thread, with kinds drawn by
/// `mix` and keys i.i.d. uniform over `range`.
///
/// Each client gets its **own** derived seed (split off `seed` through one
/// extra SplitMix64 step), so traces are independent streams: a failing
/// concurrent run replays exactly from `(seed, clients, ops_per_client)`,
/// and no two clients share a key sequence.
///
/// ```
/// let traces = workloads::client_traces(7, 4, 100, 0..1000, (2, 1, 1));
/// assert_eq!(traces.len(), 4);
/// assert!(traces.iter().all(|t| t.len() == 100));
/// assert_eq!(traces, workloads::client_traces(7, 4, 100, 0..1000, (2, 1, 1)));
/// assert_ne!(traces[0], traces[1]);
/// ```
///
/// # Panics
///
/// Panics if `range` is empty or every weight in `mix` is zero.
pub fn client_traces(
    seed: u64,
    clients: usize,
    ops_per_client: usize,
    range: Range<u64>,
    mix: OpMix,
) -> Vec<ClientTrace> {
    assert!(range.start < range.end, "empty key range");
    let width = range.end - range.start;
    let mut seeder = SplitMix64::new(seed);
    (0..clients)
        .map(|_| {
            let mut rng = SplitMix64::new(seeder.next_u64());
            (0..ops_per_client)
                .map(|_| {
                    let kind = pick_kind(&mut rng, mix);
                    (kind, range.start + rng.next_below(width))
                })
                .collect()
        })
        .collect()
}

/// Like [`client_traces`], but keys are drawn from `universe` by
/// Zipf-distributed rank with exponent `theta` — hot-key traffic, where
/// concurrent clients collide on the same keys and the combining layer's
/// duplicate resolution actually gets exercised.
///
/// # Panics
///
/// Panics if `universe` is empty, `theta` is invalid (see
/// [`ZipfSampler::new`]), or every weight in `mix` is zero.
pub fn client_traces_zipf(
    seed: u64,
    clients: usize,
    ops_per_client: usize,
    universe: &[u64],
    theta: f64,
    mix: OpMix,
) -> Vec<ClientTrace> {
    let mut seeder = SplitMix64::new(seed);
    (0..clients)
        .map(|_| {
            let client_seed = seeder.next_u64();
            let mut rng = SplitMix64::new(client_seed);
            let mut zipf = ZipfSampler::new(client_seed ^ 0x5EED_2F17, universe.len(), theta);
            (0..ops_per_client)
                .map(|_| {
                    let kind = pick_kind(&mut rng, mix);
                    (kind, universe[zipf.next_rank()])
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_keys_land_in_range() {
        let keys = uniform_keys(3, 1000, 10..20);
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|k| (10..20).contains(k)));
    }

    #[test]
    fn distinct_keys_are_distinct() {
        let keys = uniform_keys_distinct(5, 500, 0..10_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut zipf = ZipfSampler::new(17, 100, 1.0);
        let samples = zipf.take(20_000);
        assert!(samples.iter().all(|&r| r < 100));
        let head = samples.iter().filter(|&&r| r == 0).count();
        let tail = samples.iter().filter(|&&r| r == 99).count();
        // Rank 0 is ~100x more likely than rank 99 at theta = 1.
        assert!(head > tail * 4, "head={head} tail={tail}");
    }

    #[test]
    fn mixed_batches_are_deterministic_and_respect_shape() {
        let a = mixed_op_batches(31, 20, 64, 5..500, (1, 1, 2));
        let b = mixed_op_batches(31, 20, 64, 5..500, (1, 1, 2));
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.keys, y.keys);
            assert_eq!(x.keys.len(), 64);
            assert!(x.keys.iter().all(|k| (5..500).contains(k)));
        }
        // With all three weights positive, all three kinds eventually appear.
        let kinds: Vec<OpKind> = mixed_op_batches(31, 200, 1, 0..10, (1, 1, 1))
            .into_iter()
            .map(|b| b.kind)
            .collect();
        for kind in [OpKind::Insert, OpKind::Remove, OpKind::Contains] {
            assert!(kinds.contains(&kind), "{kind:?} never drawn");
        }
    }

    #[test]
    fn zero_weight_kinds_are_never_drawn() {
        let ops = mixed_op_batches(77, 100, 4, 0..100, (1, 0, 3));
        assert!(ops.iter().all(|b| b.kind != OpKind::Remove));
    }

    #[test]
    fn zipf_batches_draw_from_the_universe() {
        let universe: Vec<u64> = (0..50u64).map(|i| i * 1000).collect();
        let ops = mixed_op_batches_zipf(13, 10, 200, &universe, 0.99, (1, 1, 2));
        assert_eq!(ops.len(), 10);
        for batch in &ops {
            assert!(batch.keys.iter().all(|k| universe.contains(k)));
        }
        // Skew: the hottest key appears far more often than a cold one.
        let all: Vec<u64> = ops.iter().flat_map(|b| b.keys.iter().copied()).collect();
        let hot = all.iter().filter(|&&k| k == universe[0]).count();
        let cold = all.iter().filter(|&&k| k == universe[49]).count();
        assert!(hot > cold, "hot={hot} cold={cold}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut zipf = ZipfSampler::new(23, 10, 0.0);
        let samples = zipf.take(50_000);
        for rank in 0..10 {
            let count = samples.iter().filter(|&&r| r == rank).count();
            // Expected 5000 each; allow a wide tolerance.
            assert!((3500..6500).contains(&count), "rank {rank}: {count}");
        }
    }

    // ---- statistical sanity: these generators underpin every oracle test
    // and benchmark, so their distributions are pinned here, not assumed.

    /// Chi-square-style bucket bound on the uniform generator: with
    /// `SAMPLES` draws over `BUCKETS` equiprobable buckets, each count is
    /// Binomial(SAMPLES, 1/BUCKETS); mean 1000, sigma ≈ 31.4.  A ±6σ band
    /// (~[811, 1189]) makes a false failure astronomically unlikely while
    /// still catching any real bucket bias.  Checked per seed so a failure
    /// names the offending seed.
    #[test]
    fn splitmix_uniform_bucket_coverage() {
        const BUCKETS: u64 = 64;
        const SAMPLES: usize = 64_000;
        let expected = SAMPLES as f64 / BUCKETS as f64;
        let sigma = (SAMPLES as f64 * (1.0 / BUCKETS as f64) * (1.0 - 1.0 / BUCKETS as f64)).sqrt();
        for seed in [1u64, 0xDEAD_BEEF, u64::MAX / 3] {
            let mut rng = SplitMix64::new(seed);
            let mut counts = [0usize; BUCKETS as usize];
            for _ in 0..SAMPLES {
                counts[rng.next_below(BUCKETS) as usize] += 1;
            }
            for (bucket, &count) in counts.iter().enumerate() {
                let dev = (count as f64 - expected).abs();
                assert!(
                    dev <= 6.0 * sigma,
                    "seed {seed}: bucket {bucket} has {count} hits \
                     (expected {expected:.0} ± {:.0})",
                    6.0 * sigma
                );
            }
        }
    }

    /// Zipf rank-frequency shape: decade-bucketed counts must be strictly
    /// decreasing (individual adjacent ranks differ too little to assert
    /// on, whole decades differ by large factors), and the top rank's mass
    /// must sit in the analytic band `1 / H_{n,θ}` ± 6σ.
    #[test]
    fn zipf_rank_frequency_is_monotone_with_expected_head_mass() {
        const N: usize = 100;
        const SAMPLES: usize = 100_000;
        const THETA: f64 = 1.0;
        for seed in [3u64, 77, 4096] {
            let mut zipf = ZipfSampler::new(seed, N, THETA);
            let mut counts = [0usize; N];
            for _ in 0..SAMPLES {
                counts[zipf.next_rank()] += 1;
            }
            let decades: Vec<usize> = counts.chunks(10).map(|c| c.iter().sum()).collect();
            for pair in decades.windows(2) {
                assert!(
                    pair[0] > pair[1],
                    "seed {seed}: decade counts not decreasing: {decades:?}"
                );
            }
            // p(rank 0) = 1 / H_{n,θ} with H the generalised harmonic number.
            let harmonic: f64 = (1..=N).map(|i| 1.0 / (i as f64).powf(THETA)).sum();
            let p0 = 1.0 / harmonic;
            let sigma = (SAMPLES as f64 * p0 * (1.0 - p0)).sqrt();
            let head = counts[0] as f64;
            assert!(
                (head - SAMPLES as f64 * p0).abs() <= 6.0 * sigma,
                "seed {seed}: head rank has {head} hits, expected {:.0} ± {:.0}",
                SAMPLES as f64 * p0,
                6.0 * sigma
            );
        }
    }

    #[test]
    fn distinct_keys_are_in_range_deterministic_and_exact() {
        for seed in [5u64, 99] {
            let keys = uniform_keys_distinct(seed, 2_000, 100..50_000);
            assert_eq!(keys.len(), 2_000, "seed {seed}");
            assert!(
                keys.iter().all(|k| (100..50_000).contains(k)),
                "seed {seed}"
            );
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 2_000, "seed {seed}: duplicates generated");
            assert_eq!(keys, uniform_keys_distinct(seed, 2_000, 100..50_000));
        }
        // Saturating the range is legal: every value appears exactly once.
        let mut all = uniform_keys_distinct(11, 64, 0..64);
        all.sort_unstable();
        assert_eq!(all, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn range_queries_stay_inside_bounds_and_spans() {
        let queries = range_queries(21, 500, 100..10_000, 64);
        assert_eq!(queries.len(), 500);
        for &(lo, hi) in &queries {
            assert!(lo >= 100 && hi <= 10_000, "({lo}, {hi}) escapes the range");
            assert!(lo < hi, "({lo}, {hi}) is not a forward interval");
            assert!(hi - lo <= 64, "({lo}, {hi}) exceeds max_span");
        }
        assert_eq!(queries, range_queries(21, 500, 100..10_000, 64));
        // Spans larger than the range clamp instead of panicking.
        let wide = range_queries(5, 100, 0..10, 1_000);
        assert!(wide.iter().all(|&(lo, hi)| hi <= 10 && hi - lo <= 10));
    }

    #[test]
    fn scan_traces_honour_the_permille_knob() {
        let traces = scan_client_traces(33, 4, 1_000, 0..50_000, 256, 100);
        assert_eq!(traces.len(), 4);
        let all: Vec<ReadOp> = traces.iter().flatten().copied().collect();
        let scans = all
            .iter()
            .filter(|op| matches!(op, ReadOp::Scan(..)))
            .count();
        // 10% of 4000 ops; a ±4σ band (σ ≈ 19) is [324, 476].
        assert!((324..=476).contains(&scans), "{scans} scans of 4000 ops");
        for op in &all {
            match *op {
                ReadOp::Point(k) => assert!(k < 50_000),
                ReadOp::Scan(lo, hi) => {
                    assert!(lo < hi && hi <= 50_000 && hi - lo <= 256);
                }
            }
        }
        // The extremes degenerate to pure point / pure scan traces.
        assert!(scan_client_traces(1, 2, 200, 0..100, 8, 0)
            .iter()
            .flatten()
            .all(|op| matches!(op, ReadOp::Point(_))));
        assert!(scan_client_traces(1, 2, 200, 0..100, 8, 1000)
            .iter()
            .flatten()
            .all(|op| matches!(op, ReadOp::Scan(..))));
        // Determinism and per-client stream independence.
        assert_eq!(
            traces,
            scan_client_traces(33, 4, 1_000, 0..50_000, 256, 100)
        );
        assert_ne!(traces[0], traces[1]);
    }

    #[test]
    fn client_traces_are_per_client_independent_streams() {
        let traces = client_traces(42, 6, 500, 10..5_000, (3, 2, 1));
        assert_eq!(traces.len(), 6);
        for (c, trace) in traces.iter().enumerate() {
            assert_eq!(trace.len(), 500, "client {c}");
            assert!(
                trace.iter().all(|(_, k)| (10..5_000).contains(k)),
                "client {c}"
            );
        }
        // Determinism and stream independence.
        assert_eq!(traces, client_traces(42, 6, 500, 10..5_000, (3, 2, 1)));
        for pair in traces.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        // Weights are honoured: zero-weight kinds never appear.
        let no_removes = client_traces(9, 2, 400, 0..100, (1, 0, 1));
        assert!(no_removes
            .iter()
            .flatten()
            .all(|(kind, _)| *kind != OpKind::Remove));
    }

    #[test]
    fn zipf_client_traces_draw_hot_keys_from_universe() {
        let universe: Vec<u64> = (0..200u64).map(|i| i * 31).collect();
        let traces = client_traces_zipf(13, 4, 2_000, &universe, 0.99, (1, 1, 2));
        assert_eq!(traces.len(), 4);
        for trace in &traces {
            assert!(trace.iter().all(|(_, k)| universe.contains(k)));
        }
        // Every client's hottest key is hotter than a cold one.
        for (c, trace) in traces.iter().enumerate() {
            let hot = trace.iter().filter(|(_, k)| *k == universe[0]).count();
            let cold = trace.iter().filter(|(_, k)| *k == universe[199]).count();
            assert!(hot > cold, "client {c}: hot={hot} cold={cold}");
        }
        assert_eq!(
            traces,
            client_traces_zipf(13, 4, 2_000, &universe, 0.99, (1, 1, 2))
        );
    }
}
