//! The paper's joint sorted-batch traversal for membership queries.
//!
//! Instead of descending once per query, a whole sorted batch moves through
//! the tree together: at each inner node the batch is split at the routers
//! with binary searches ([`partition_batch`]) and every child recurses on its
//! own contiguous sub-batch, forked via the `forkjoin` substrate.  Because
//! the batch is sorted, each child's answers land in a contiguous slice of
//! the output, so results are stitched back in batch order simply by carving
//! the output buffer at the same offsets — the offsets themselves being the
//! exclusive scan of the per-child query counts.

use std::mem::MaybeUninit;

use crate::metrics::{touch_node, MetricsRef};
use crate::node::{InterpolateKey, Node};
use crate::tree::leaf_contains;

/// Sub-batches at or below this length descend sequentially: forking per
/// child would cost more than the remaining leaf work.
pub(crate) const SEQ_BATCH_LEN: usize = 512;

/// Splits a sorted `batch` at every router: the queries destined for child
/// `i` are `batch[offsets[i]..offsets[i + 1]]`, where `offsets` is the
/// returned vector of length `routers.len() + 2`.
///
/// Each router is located by a binary search in the still-unassigned tail,
/// so one partition costs `O(fanout · log |batch|)`.  The offsets are
/// exactly the exclusive scan of the per-child query counts.
pub(crate) fn partition_batch<K: Ord>(routers: &[K], batch: &[K]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(routers.len() + 2);
    offsets.push(0);
    let mut assigned = 0;
    for router in routers {
        assigned += batch[assigned..].partition_point(|q| q < router);
        offsets.push(assigned);
    }
    offsets.push(batch.len());
    offsets
}

/// One child's share of a joint traversal: the subtree, its contiguous
/// sub-batch, and the matching slice of the output buffer.
type QueryTask<'a, K, V, R> = (&'a Node<K, V>, &'a [K], &'a mut [MaybeUninit<R>]);

/// Answers `batch` (sorted, strictly increasing) against the subtree at
/// `node`, writing one membership flag per query into `out` (same order).
///
/// `m` counts each node entered **once per traversal**, not once per
/// query routed through it — exactly the sharing the joint traversal buys
/// over per-query descents.
pub(crate) fn batch_contains_into<K, V>(
    node: &Node<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<bool>],
    m: MetricsRef<'_>,
) where
    K: InterpolateKey + Clone + Send + Sync,
    V: Send + Sync,
{
    joint_query_into(node, batch, out, m, &|leaf, q| leaf_contains(&leaf.keys, q));
}

/// The map twin of [`batch_contains_into`]: one value lookup per query,
/// `None` for absent keys — same joint partition, same forking shape.
pub(crate) fn batch_get_into<K, V>(
    node: &Node<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<Option<V>>],
    m: MetricsRef<'_>,
) where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    joint_query_into(node, batch, out, m, &|leaf, q| {
        crate::tree::leaf_search(&leaf.keys, q).map(|i| leaf.vals[i].clone())
    });
}

/// Shared joint-traversal skeleton: partitions `batch` at each inner node's
/// routers, recurses per child (forked once the batch is large enough), and
/// answers each query at its leaf with `answer`.
fn joint_query_into<K, V, R, F>(
    node: &Node<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<R>],
    m: MetricsRef<'_>,
    answer: &F,
) where
    K: InterpolateKey + Clone + Send + Sync,
    V: Send + Sync,
    R: Send,
    F: Fn(&crate::node::LeafNode<K, V>, &K) -> R + Sync,
{
    debug_assert_eq!(batch.len(), out.len());
    touch_node(m);
    match node {
        Node::Leaf(leaf) => {
            for (q, slot) in batch.iter().zip(out.iter_mut()) {
                slot.write(answer(leaf, q));
            }
        }
        Node::Inner(inner) => {
            let offsets = partition_batch(&inner.routers, batch);
            let mut tasks: Vec<QueryTask<'_, K, V, R>> = Vec::with_capacity(inner.children.len());
            let mut batch_rest = batch;
            let mut out_rest = out;
            for (child, window) in inner.children.iter().zip(offsets.windows(2)) {
                let seg_len = window[1] - window[0];
                let (batch_seg, batch_tail) = batch_rest.split_at(seg_len);
                let (out_seg, out_tail) = out_rest.split_at_mut(seg_len);
                batch_rest = batch_tail;
                out_rest = out_tail;
                if seg_len > 0 {
                    tasks.push((child.as_ref(), batch_seg, out_seg));
                }
            }
            if batch.len() <= SEQ_BATCH_LEN {
                for (child, batch_seg, out_seg) in tasks.iter_mut() {
                    joint_query_into(child, batch_seg, out_seg, m, answer);
                }
            } else {
                // Fork per child: each task is a whole sub-traversal, so the
                // element-count heuristic would be wrong here (see
                // `parprim::map_with_grain`).
                parprim::for_each_mut_with_grain(&mut tasks, 1, |(child, batch_seg, out_seg)| {
                    joint_query_into(child, batch_seg, out_seg, m, answer);
                });
            }
        }
    }
}
