//! The interpolation search tree set: bulk construction and lookups.

use crate::node::{
    interpolate_slot, InnerNode, InterpolateKey, LeafNode, Node, LEAF_CAPACITY, MAX_FANOUT,
};

/// A set of keys stored as an interpolation search tree.
///
/// Construction is bulk-only for now ([`IstSet::from_sorted`] /
/// [`IstSet::from_unsorted`]) and builds subtrees in parallel when called
/// inside a [`forkjoin::Pool`].  Lookups descend by interpolation
/// ([`IstSet::contains`]) and batches of lookups run in parallel
/// ([`IstSet::batch_contains`]).  Batched inserts and deletes with subtree
/// rebuilding — the paper's core contribution — are future work layered on
/// this representation.
///
/// ```
/// let set = pbist::IstSet::from_unsorted(vec![5u64, 1, 9, 1]);
/// assert!(set.contains(&5));
/// assert!(!set.contains(&2));
/// assert_eq!(set.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IstSet<K> {
    root: Option<Node<K>>,
}

impl<K: InterpolateKey + Clone + Send + Sync> IstSet<K> {
    /// Builds a tree from keys that are already sorted and deduplicated
    /// (checked with a `debug_assert!`).
    pub fn from_sorted(keys: Vec<K>) -> IstSet<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        if keys.is_empty() {
            return IstSet { root: None };
        }
        IstSet {
            root: Some(build(&keys)),
        }
    }

    /// Builds a tree from arbitrary keys; sorts and deduplicates them first.
    pub fn from_unsorted(mut keys: Vec<K>) -> IstSet<K> {
        keys.sort();
        keys.dedup();
        IstSet::from_sorted(keys)
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, Node::len)
    }

    /// Returns `true` when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Returns `true` when `key` is present, descending by interpolation.
    pub fn contains(&self, key: &K) -> bool {
        let mut node = match &self.root {
            Some(root) => root,
            None => return false,
        };
        loop {
            match node {
                Node::Leaf(leaf) => return leaf_contains(&leaf.keys, key),
                Node::Inner(inner) => {
                    node = &inner.children[child_index(inner, key)];
                }
            }
        }
    }

    /// Answers one membership query per element of `queries`, in order,
    /// in parallel when called inside a [`forkjoin::Pool`].
    ///
    /// This is the query-batch interface shared with
    /// `baselines::SortedArraySet`.  It currently fans out per query; the
    /// paper's sorted-batch traversal (partition the batch once per node,
    /// recurse into children jointly) will replace the per-query descent.
    pub fn batch_contains(&self, queries: &[K]) -> Vec<bool> {
        parprim::map(queries, |q| self.contains(q))
    }
}

/// Picks the child of `inner` whose key range covers `key`: interpolate a
/// guess, then correct it against the routers (cheap check first, binary
/// search only when the guess is off).
fn child_index<K: InterpolateKey>(inner: &InnerNode<K>, key: &K) -> usize {
    let n = inner.children.len();
    let guess = interpolate_slot(key, &inner.min, &inner.max, n);
    let fits_left = guess == 0 || inner.routers[guess - 1] <= *key;
    let fits_right = guess == n - 1 || *key < inner.routers[guess];
    if fits_left && fits_right {
        return guess;
    }
    inner.routers.partition_point(|r| r <= key)
}

/// Interpolation search over one sorted leaf array.
///
/// Each probe interpolates within the remaining `[lo, hi)` window; the window
/// shrinks every iteration, so this terminates even for key distributions
/// where the interpolation guess is always wrong (then it degrades towards a
/// linear scan — the classic interpolation-search worst case).
fn leaf_contains<K: InterpolateKey>(keys: &[K], key: &K) -> bool {
    let mut lo = 0;
    let mut hi = keys.len();
    while lo < hi {
        let slot = lo + interpolate_slot(key, &keys[lo], &keys[hi - 1], hi - lo);
        match keys[slot].cmp(key) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = slot + 1,
            std::cmp::Ordering::Greater => hi = slot,
        }
    }
    false
}

/// Builds the subtree for one strictly-increasing run of keys, recursing over
/// children in parallel via `parprim::map`.
fn build<K: InterpolateKey + Clone + Send + Sync>(keys: &[K]) -> Node<K> {
    debug_assert!(!keys.is_empty());
    if keys.len() <= LEAF_CAPACITY {
        return Node::Leaf(LeafNode {
            keys: keys.to_vec(),
        });
    }
    // Ideal IST fanout is Θ(√n), capped to bound router-array sizes.
    let fanout = ((keys.len() as f64).sqrt() as usize).clamp(2, MAX_FANOUT);
    let chunk_len = keys.len().div_ceil(fanout);
    let chunks: Vec<&[K]> = keys.chunks(chunk_len).collect();
    let routers: Vec<K> = chunks[1..].iter().map(|c| c[0].clone()).collect();
    // Each element is a whole subtree build: fork per chunk, not by the
    // element-count heuristic (which would never fork over <= 64 children).
    let children = parprim::map_with_grain(&chunks, 1, |c| build(c));
    Node::Inner(InnerNode {
        routers,
        children,
        len: keys.len(),
        min: keys[0].clone(),
        max: keys[keys.len() - 1].clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_contains_nothing() {
        let set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(&42));
    }

    #[test]
    fn small_tree_is_one_leaf() {
        let set = IstSet::from_unsorted(vec![3u64, 1, 2]);
        assert!(matches!(set.root, Some(Node::Leaf(_))));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn large_tree_agrees_with_binary_search() {
        // Non-uniform gaps so interpolation guesses are frequently wrong.
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * i % 1_000_003 + i).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let set = IstSet::from_sorted(sorted.clone());
        assert_eq!(set.len(), sorted.len());
        for probe in (0..2_000_000u64).step_by(997) {
            assert_eq!(
                set.contains(&probe),
                sorted.binary_search(&probe).is_ok(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn parallel_build_and_batch_query_inside_pool() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 7).collect();
        let queries: Vec<u64> = (0..10_000u64).map(|i| i * 11).collect();
        let pool = forkjoin::Pool::new(4).unwrap();
        let (set, batched) = pool.install(|| {
            let set = IstSet::from_sorted(keys.clone());
            let batched = set.batch_contains(&queries);
            (set, batched)
        });
        let expected: Vec<bool> = queries.iter().map(|q| q % 7 == 0 && *q < 210_000).collect();
        assert_eq!(batched, expected);
        // The tree built inside the pool answers identically outside it.
        assert!(set.contains(&21));
        assert!(!set.contains(&22));
    }
}
