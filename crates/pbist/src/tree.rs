//! The interpolation search tree set: bulk construction, lookups, and the
//! batched-operations interface.

use std::ops::Bound;
use std::sync::Arc;

use batchapi::{Batch, BatchedSet, SetView};

use crate::metrics::{metrics_ref, touch_node, IstMetrics, IstMetricsSnapshot, MetricsRef};
use crate::node::{
    interpolate_slot, InnerNode, InterpolateKey, LeafNode, Node, LEAF_CAPACITY, MAX_FANOUT,
};
use crate::{range, traverse, update};

/// A set of keys stored as an interpolation search tree.
///
/// Construction is bulk ([`IstSet::from_sorted`] / [`IstSet::from_unsorted`])
/// and builds subtrees in parallel when called inside a [`forkjoin::Pool`].
/// Point lookups descend by interpolation ([`IstSet::contains`]); batched
/// operations arrive through the [`batchapi::BatchedSet`] impl, which
/// processes each sorted batch jointly — partitioned across children at
/// every inner node, forked per child — with updates rebuilding touched
/// leaves and any subtree whose size drifts past the rebuild threshold (the
/// paper's core contribution).
///
/// ```
/// use batchapi::{Batch, BatchedSet};
///
/// let mut set = pbist::IstSet::from_unsorted(vec![5u64, 1, 9, 1]);
/// assert!(set.contains(&5));
/// assert_eq!(set.len(), 3);
/// let newly = set.batch_insert(&Batch::from_unsorted(vec![2, 5]));
/// assert_eq!(newly, vec![true, false]);
/// assert_eq!(set.len(), 4);
/// let gone = set.batch_remove(&Batch::from_unsorted(vec![1, 7]));
/// assert_eq!(gone, vec![true, false]);
/// assert!(!set.contains(&1));
/// ```
#[derive(Debug, Clone)]
pub struct IstSet<K> {
    /// `Arc` so [`BatchedSet::publish_root`] can hand out the whole tree in
    /// `O(1)`; updates go through `Arc::make_mut`, path-copying exactly the
    /// nodes a published snapshot still shares.
    root: Option<Arc<Node<K>>>,
    /// Gates metric recording; the recursion carries `None` when disabled,
    /// so the default configuration pays one branch per instrumented site.
    obs: obs::Obs,
    /// Work counters.  `Clone` shares the `Arc`, so clones of one set
    /// report into the same counters — callers that benchmark clones use
    /// [`IstMetricsSnapshot::delta`] windows.
    metrics: Arc<IstMetrics>,
}

impl<K> IstSet<K> {
    fn with_root(root: Option<Node<K>>) -> IstSet<K> {
        IstSet {
            root: root.map(Arc::new),
            obs: obs::Obs::disabled(),
            metrics: Arc::new(IstMetrics::default()),
        }
    }

    /// Turns work-counter collection on or off ([`IstSet::metrics`]).  Off
    /// by default: disabled, every instrumented site is one predictable
    /// branch (the workspace's bench harness asserts < 2 ns/op).
    pub fn with_metrics(mut self, enabled: bool) -> IstSet<K> {
        self.obs = obs::Obs::new(enabled);
        self
    }

    /// Snapshot of the set's work counters: nodes touched, leaves edited,
    /// rebuild count and keys.  All zero unless the set was configured with
    /// [`IstSet::with_metrics`].
    pub fn metrics(&self) -> IstMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn obs_metrics(&self) -> MetricsRef<'_> {
        metrics_ref(self.obs, &self.metrics)
    }
}

impl<K: InterpolateKey + Clone + Send + Sync> IstSet<K> {
    /// Builds a tree from keys that are already sorted and deduplicated
    /// (checked with a `debug_assert!`).
    pub fn from_sorted(keys: Vec<K>) -> IstSet<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        if keys.is_empty() {
            return IstSet::with_root(None);
        }
        let root = build(&keys, &unit_vals(keys.len()));
        IstSet::with_root(Some(root))
    }

    /// Builds a tree from arbitrary keys; sorts (unstable — keys are plain
    /// `Ord` values, there is no tie order to preserve) and deduplicates
    /// them first.
    pub fn from_unsorted(mut keys: Vec<K>) -> IstSet<K> {
        keys.sort_unstable();
        keys.dedup();
        IstSet::from_sorted(keys)
    }

    /// Builds a tree holding the keys of `batch` (already sorted and
    /// deduplicated by construction, so no copy or re-check is needed).
    pub fn from_batch(batch: &Batch<K>) -> IstSet<K> {
        if batch.is_empty() {
            return IstSet::with_root(None);
        }
        let root = build(batch.as_slice(), &unit_vals(batch.len()));
        IstSet::with_root(Some(root))
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |root| root.len())
    }

    /// Returns `true` when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The smallest key, or `None` for an empty set.
    pub fn min(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.min_key())
    }

    /// The largest key, or `None` for an empty set.
    pub fn max(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.max_key())
    }

    /// Clones every key out of the tree in ascending order, forking per
    /// subtree inside a pool — the parallel flatten the rebuild path uses,
    /// exposed for snapshotting consumers (the durability tier).
    pub fn collect_keys(&self) -> Vec<K> {
        match &self.root {
            Some(root) => update::collect_keys(root),
            None => Vec::new(),
        }
    }

    /// Returns `true` when `key` is present, descending by interpolation.
    pub fn contains(&self, key: &K) -> bool {
        match &self.root {
            Some(root) => contains_in(root, key, self.obs_metrics()),
            None => false,
        }
    }

    /// Number of keys strictly smaller than `key`: the interpolated descent
    /// plus the sizes of the subtrees it passes on its left.
    pub fn rank(&self, key: &K) -> usize {
        match &self.root {
            Some(root) => rank_in(root, key, self.obs_metrics()),
            None => 0,
        }
    }

    /// Verifies the tree's shape invariants — strictly increasing leaf runs
    /// within capacity, router keys equal to each right sibling's minimum,
    /// consistent `len`/`min`/`max` at every inner node — returning a
    /// description of the first violation.
    ///
    /// Intended for tests and debugging after batched updates; cost is a
    /// full traversal.
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.root {
            None => Ok(()),
            Some(root) if root.is_empty() => Err("empty root was not pruned to None".into()),
            Some(root) => check_node(root),
        }
    }
}

impl<K: InterpolateKey + Clone + Send + Sync> BatchedSet<K> for IstSet<K> {
    fn len(&self) -> usize {
        IstSet::len(self)
    }

    fn contains(&self, key: &K) -> bool {
        IstSet::contains(self, key)
    }

    fn rank(&self, key: &K) -> usize {
        IstSet::rank(self, key)
    }

    fn min(&self) -> Option<&K> {
        IstSet::min(self)
    }

    fn max(&self) -> Option<&K> {
        IstSet::max(self)
    }

    fn batch_contains(&self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::new();
        self.batch_contains_report(batch, &mut out);
        out
    }

    fn batch_insert(&mut self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::new();
        self.batch_insert_report(batch, &mut out);
        out
    }

    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool> {
        let mut out = Vec::new();
        self.batch_remove_report(batch, &mut out);
        out
    }

    fn collect_keys(&self) -> Vec<K> {
        IstSet::collect_keys(self)
    }

    fn publish_root(&self) -> Arc<dyn SetView<K>>
    where
        K: 'static,
    {
        // O(1): clone the root `Arc` (plus the metrics plumbing, so reads
        // served from the snapshot keep counting nodes touched).  Updates
        // after this call copy-on-write around the shared nodes.
        Arc::new(IstView {
            root: self.root.clone(),
            obs: self.obs,
            metrics: Arc::clone(&self.metrics),
        })
    }

    fn publish_clone_keys(&self) -> usize {
        0 // publish_root clones one `Arc`, never the contents
    }

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Clone,
    {
        match &self.root {
            Some(root) => range_keys_in(root, lo, hi, self.obs_metrics()),
            None => Vec::new(),
        }
    }

    fn kth(&self, k: usize) -> Option<K>
    where
        K: Clone,
    {
        match &self.root {
            Some(root) if k < root.len() => {
                touch_node(self.obs_metrics());
                Some(range::kth_entry(root, k).0.clone())
            }
            _ => None,
        }
    }

    // The `_report` variants are the primary implementations: the traversal
    // and update recursions already write flags into a caller-provided
    // buffer, so reporting through a reused `Vec` is allocation-free once
    // the buffer has warmed up (the flat-combining front-end's round loop
    // depends on this).

    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        let root = match &self.root {
            Some(root) => root,
            None => {
                out.resize(batch.len(), false);
                return;
            }
        };
        // Tiny batches: point lookups beat the joint traversal's per-node
        // scratch.  Same answers — a membership batch has no cross-key
        // interaction at all.
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| self.contains(q)));
            return;
        }
        out.reserve(batch.len());
        traverse::batch_contains_into(
            root,
            batch.as_slice(),
            &mut out.spare_capacity_mut()[..batch.len()],
            self.obs_metrics(),
        );
        // SAFETY: the traversal writes every one of the first `batch.len()`
        // slots exactly once (children cover disjoint batch segments).
        unsafe { out.set_len(batch.len()) };
    }

    fn batch_insert_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => {
                let built = build(batch.as_slice(), &unit_vals(batch.len()));
                self.root = Some(Arc::new(built));
                out.resize(batch.len(), true);
                return;
            }
        };
        // Tiny batches: a loop of in-place point inserts is equivalent to
        // the batch recursion (sorted distinct keys, applied in order) and
        // allocation-free.
        let m = metrics_ref(self.obs, &self.metrics);
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| update::insert_one(root, q, &(), m)));
            return;
        }
        out.reserve(batch.len());
        update::insert_into(
            root,
            batch.as_slice(),
            &unit_vals(batch.len()),
            &mut out.spare_capacity_mut()[..batch.len()],
            m,
        );
        // SAFETY: as in `batch_contains_report` — every flag slot written once.
        unsafe { out.set_len(batch.len()) };
    }

    fn batch_remove_report(&mut self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => {
                out.resize(batch.len(), false);
                return;
            }
        };
        let m = metrics_ref(self.obs, &self.metrics);
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| update::remove_one(root, q, m)));
        } else {
            out.reserve(batch.len());
            update::remove_from(
                root,
                batch.as_slice(),
                &mut out.spare_capacity_mut()[..batch.len()],
                m,
            );
            // SAFETY: as in `batch_contains_report` — every flag slot
            // written once.
            unsafe { out.set_len(batch.len()) };
        }
        if root.is_empty() {
            self.root = None;
        }
    }

    fn insert_one(&mut self, key: &K) -> bool {
        let m = metrics_ref(self.obs, &self.metrics);
        match &mut self.root {
            Some(root) => update::insert_one(Arc::make_mut(root), key, &(), m),
            None => {
                self.root = Some(Arc::new(Node::Leaf(LeafNode {
                    keys: vec![key.clone()],
                    vals: vec![()],
                })));
                true
            }
        }
    }

    fn remove_one(&mut self, key: &K) -> bool {
        let m = metrics_ref(self.obs, &self.metrics);
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => return false,
        };
        let removed = update::remove_one(root, key, m);
        if root.is_empty() {
            self.root = None;
        }
        removed
    }
}

/// Picks the child of `inner` whose key range covers `key`: interpolate a
/// guess, then correct it against the routers (cheap check first, binary
/// search only when the guess is off).
pub(crate) fn child_index<K: InterpolateKey, V>(inner: &InnerNode<K, V>, key: &K) -> usize {
    let n = inner.children.len();
    let guess = interpolate_slot(key, &inner.min, &inner.max, n);
    let fits_left = guess == 0 || inner.routers[guess - 1] <= *key;
    let fits_right = guess == n - 1 || *key < inner.routers[guess];
    if fits_left && fits_right {
        return guess;
    }
    inner.routers.partition_point(|r| r <= key)
}

/// Interpolation search over one sorted leaf array, returning the index of
/// `key` when present.
///
/// Each probe interpolates within the remaining `[lo, hi)` window; the window
/// shrinks every iteration, so this terminates even for key distributions
/// where the interpolation guess is always wrong (then it degrades towards a
/// linear scan — the classic interpolation-search worst case).
pub(crate) fn leaf_search<K: InterpolateKey>(keys: &[K], key: &K) -> Option<usize> {
    let mut lo = 0;
    let mut hi = keys.len();
    while lo < hi {
        let slot = lo + interpolate_slot(key, &keys[lo], &keys[hi - 1], hi - lo);
        match keys[slot].cmp(key) {
            std::cmp::Ordering::Equal => return Some(slot),
            std::cmp::Ordering::Less => lo = slot + 1,
            std::cmp::Ordering::Greater => hi = slot,
        }
    }
    None
}

/// Membership wrapper over [`leaf_search`].
pub(crate) fn leaf_contains<K: InterpolateKey>(keys: &[K], key: &K) -> bool {
    leaf_search(keys, key).is_some()
}

/// The interpolated point-lookup descent, shared by the live tree and its
/// published snapshots ([`IstView`]).
pub(crate) fn contains_in<K: InterpolateKey, V>(
    root: &Node<K, V>,
    key: &K,
    m: MetricsRef<'_>,
) -> bool {
    let mut node = root;
    loop {
        touch_node(m);
        match node {
            Node::Leaf(leaf) => return leaf_contains(&leaf.keys, key),
            Node::Inner(inner) => {
                node = &inner.children[child_index(inner, key)];
            }
        }
    }
}

/// The interpolated value-lookup descent — [`contains_in`]'s map twin.
pub(crate) fn get_in<K: InterpolateKey, V: Clone>(
    root: &Node<K, V>,
    key: &K,
    m: MetricsRef<'_>,
) -> Option<V> {
    let mut node = root;
    loop {
        touch_node(m);
        match node {
            Node::Leaf(leaf) => return leaf_search(&leaf.keys, key).map(|i| leaf.vals[i].clone()),
            Node::Inner(inner) => {
                node = &inner.children[child_index(inner, key)];
            }
        }
    }
}

/// The rank descent (keys strictly below `key`), shared by the live tree
/// and its published snapshots.
pub(crate) fn rank_in<K: InterpolateKey, V>(
    root: &Node<K, V>,
    key: &K,
    m: MetricsRef<'_>,
) -> usize {
    let mut node = root;
    let mut before = 0;
    loop {
        touch_node(m);
        match node {
            Node::Leaf(leaf) => return before + leaf.keys.partition_point(|k| k < key),
            Node::Inner(inner) => {
                let idx = child_index(inner, key);
                before += inner.children[..idx].iter().map(|c| c.len()).sum::<usize>();
                node = &inner.children[idx];
            }
        }
    }
}

/// The structure-aware range carve behind both the live tree's and the
/// snapshot's `range_keys` overrides: one descent, binary searches only in
/// the two boundary leaves, interior subtrees concatenated wholesale.
fn range_keys_in<K, V>(root: &Node<K, V>, lo: Bound<&K>, hi: Bound<&K>, m: MetricsRef<'_>) -> Vec<K>
where
    K: Ord + Clone,
{
    touch_node(m);
    let mut keys = Vec::new();
    range::range_for_each(root, lo, hi, &mut |k: &K, _v: &V| keys.push(k.clone()));
    keys
}

/// An [`IstSet`] read snapshot: the root `Arc` frozen at one linearisation
/// point, answering [`SetView`] queries with the same interpolated descents
/// (and the same metrics plumbing) as the live tree.  Publication is `O(1)`
/// — the update path copy-on-writes around outstanding snapshots.
struct IstView<K> {
    root: Option<Arc<Node<K>>>,
    obs: obs::Obs,
    metrics: Arc<IstMetrics>,
}

impl<K> IstView<K> {
    fn obs_metrics(&self) -> MetricsRef<'_> {
        metrics_ref(self.obs, &self.metrics)
    }
}

impl<K: InterpolateKey + Clone + Send + Sync> SetView<K> for IstView<K> {
    fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |root| root.len())
    }

    fn contains(&self, key: &K) -> bool {
        match &self.root {
            Some(root) => contains_in(root, key, self.obs_metrics()),
            None => false,
        }
    }

    fn rank(&self, key: &K) -> usize {
        match &self.root {
            Some(root) => rank_in(root, key, self.obs_metrics()),
            None => 0,
        }
    }

    fn min(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.min_key())
    }

    fn max(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.max_key())
    }

    fn batch_contains_report(&self, batch: &Batch<K>, out: &mut Vec<bool>) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        let root = match &self.root {
            Some(root) => root,
            None => {
                out.resize(batch.len(), false);
                return;
            }
        };
        // Same shape as the live tree's report path: point lookups for tiny
        // batches, the joint traversal above that.
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| self.contains(q)));
            return;
        }
        out.reserve(batch.len());
        traverse::batch_contains_into(
            root,
            batch.as_slice(),
            &mut out.spare_capacity_mut()[..batch.len()],
            self.obs_metrics(),
        );
        // SAFETY: the traversal writes every one of the first `batch.len()`
        // slots exactly once (children cover disjoint batch segments).
        unsafe { out.set_len(batch.len()) };
    }

    fn collect_keys(&self) -> Vec<K> {
        match &self.root {
            Some(root) => update::collect_keys(root),
            None => Vec::new(),
        }
    }

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Ord + Clone,
    {
        match &self.root {
            Some(root) => range_keys_in(root, lo, hi, self.obs_metrics()),
            None => Vec::new(),
        }
    }

    fn kth(&self, k: usize) -> Option<K>
    where
        K: Clone,
    {
        match &self.root {
            Some(root) if k < root.len() => {
                touch_node(self.obs_metrics());
                Some(range::kth_entry(root, k).0.clone())
            }
            _ => None,
        }
    }
}

/// A unit-value slice matching `n` keys — what the set (`V = ()`) passes to
/// the key/value build and update paths.  `Vec<()>` never allocates.
pub(crate) fn unit_vals(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Builds the subtree for one strictly-increasing run of keys (with its
/// index-parallel values), recursing over children in parallel via
/// `parprim::map`.
pub(crate) fn build<K, V>(keys: &[K], vals: &[V]) -> Node<K, V>
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    debug_assert!(!keys.is_empty());
    debug_assert_eq!(keys.len(), vals.len());
    if keys.len() <= LEAF_CAPACITY {
        return Node::Leaf(LeafNode {
            keys: keys.to_vec(),
            vals: vals.to_vec(),
        });
    }
    // Ideal IST fanout is Θ(√n), capped to bound router-array sizes.
    let fanout = ((keys.len() as f64).sqrt() as usize).clamp(2, MAX_FANOUT);
    let chunk_len = keys.len().div_ceil(fanout);
    let chunks: Vec<(&[K], &[V])> = keys.chunks(chunk_len).zip(vals.chunks(chunk_len)).collect();
    let routers: Vec<K> = chunks[1..].iter().map(|(c, _)| c[0].clone()).collect();
    // Each element is a whole subtree build: fork per chunk, not by the
    // element-count heuristic (which would never fork over <= 64 children).
    let children = parprim::map_with_grain(&chunks, 1, |(c, v)| Arc::new(build(c, v)));
    Node::Inner(InnerNode {
        routers,
        children,
        len: keys.len(),
        built_len: keys.len(),
        min: keys[0].clone(),
        max: keys[keys.len() - 1].clone(),
    })
}

/// Recursive worker for [`IstSet::check_invariants`] (and the map's).
pub(crate) fn check_node<K: InterpolateKey, V>(node: &Node<K, V>) -> Result<(), String> {
    match node {
        Node::Leaf(leaf) => {
            if leaf.keys.is_empty() {
                return Err("empty leaf was not pruned".into());
            }
            if leaf.vals.len() != leaf.keys.len() {
                return Err(format!(
                    "leaf holds {} keys but {} values",
                    leaf.keys.len(),
                    leaf.vals.len()
                ));
            }
            if leaf.keys.len() > LEAF_CAPACITY {
                return Err(format!(
                    "leaf holds {} keys, over capacity {LEAF_CAPACITY}",
                    leaf.keys.len()
                ));
            }
            if !leaf.keys.windows(2).all(|w| w[0] < w[1]) {
                return Err("leaf keys are not strictly increasing".into());
            }
            Ok(())
        }
        Node::Inner(inner) => {
            if inner.children.len() < 2 {
                return Err(format!(
                    "inner node with {} children was not hoisted",
                    inner.children.len()
                ));
            }
            if inner.routers.len() + 1 != inner.children.len() {
                return Err(format!(
                    "{} routers for {} children",
                    inner.routers.len(),
                    inner.children.len()
                ));
            }
            let child_sum: usize = inner.children.iter().map(|c| c.len()).sum();
            if inner.len != child_sum {
                return Err(format!(
                    "inner len {} but children sum to {child_sum}",
                    inner.len
                ));
            }
            if inner.children.iter().any(|c| c.is_empty()) {
                return Err("inner node kept an empty child".into());
            }
            if inner.min != *inner.children[0].min_key() {
                return Err("inner min is not its first child's min".into());
            }
            if inner.max != *inner.children[inner.children.len() - 1].max_key() {
                return Err("inner max is not its last child's max".into());
            }
            for (i, router) in inner.routers.iter().enumerate() {
                if *router != *inner.children[i + 1].min_key() {
                    return Err(format!("router {i} is not child {}'s min", i + 1));
                }
                if *inner.children[i].max_key() >= *router {
                    return Err(format!("child {i} overlaps router {i}"));
                }
            }
            for child in &inner.children {
                check_node(child)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_contains_nothing() {
        let set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(&42));
        assert_eq!(set.min(), None);
        assert_eq!(set.max(), None);
        assert_eq!(set.rank(&42), 0);
        set.check_invariants().unwrap();
    }

    #[test]
    fn small_tree_is_one_leaf() {
        let set = IstSet::from_unsorted(vec![3u64, 1, 2]);
        assert!(matches!(set.root.as_deref(), Some(Node::Leaf(_))));
        assert_eq!(set.len(), 3);
        assert_eq!(set.min(), Some(&1));
        assert_eq!(set.max(), Some(&3));
    }

    #[test]
    fn large_tree_agrees_with_binary_search() {
        // Non-uniform gaps so interpolation guesses are frequently wrong.
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * i % 1_000_003 + i).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let set = IstSet::from_sorted(sorted.clone());
        assert_eq!(set.len(), sorted.len());
        set.check_invariants().unwrap();
        for probe in (0..2_000_000u64).step_by(997) {
            assert_eq!(
                set.contains(&probe),
                sorted.binary_search(&probe).is_ok(),
                "probe {probe}"
            );
            assert_eq!(
                set.rank(&probe),
                sorted.partition_point(|k| *k < probe),
                "rank of {probe}"
            );
        }
    }

    #[test]
    fn batch_contains_partitions_jointly() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 7).collect();
        let queries: Vec<u64> = (0..10_000u64).map(|i| i * 11).collect();
        let set = IstSet::from_sorted(keys);
        let batch = Batch::from_unsorted(queries);
        let expected: Vec<bool> = batch.iter().map(|q| q % 7 == 0 && *q < 210_000).collect();
        assert_eq!(set.batch_contains(&batch), expected);
    }

    #[test]
    fn parallel_build_and_batch_query_inside_pool() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 7).collect();
        let batch = Batch::from_unsorted((0..10_000u64).map(|i| i * 11).collect());
        let pool = forkjoin::Pool::new(4).unwrap();
        let (set, batched) = pool.install(|| {
            let set = IstSet::from_sorted(keys.clone());
            let batched = set.batch_contains(&batch);
            (set, batched)
        });
        let expected: Vec<bool> = batch.iter().map(|q| q % 7 == 0 && *q < 210_000).collect();
        assert_eq!(batched, expected);
        // The tree built inside the pool answers identically outside it.
        assert!(set.contains(&21));
        assert!(!set.contains(&22));
    }

    #[test]
    fn from_batch_matches_from_sorted() {
        let keys: Vec<u64> = (0..4000u64).map(|i| i * 5).collect();
        let set = IstSet::from_batch(&Batch::from_unsorted(keys.clone()));
        assert_eq!(set.len(), keys.len());
        set.check_invariants().unwrap();
        assert!(set.contains(&15));
        assert!(!set.contains(&16));
        assert!(IstSet::<u64>::from_batch(&Batch::empty()).is_empty());
    }

    #[test]
    fn batch_insert_grows_a_leaf_into_a_tree() {
        let mut set = IstSet::from_sorted((0..100u64).map(|i| i * 2).collect());
        assert!(matches!(set.root.as_deref(), Some(Node::Leaf(_))));
        // Push well past LEAF_CAPACITY so the root leaf must be rebuilt.
        let batch = Batch::from_unsorted((0..3000u64).map(|i| i * 2 + 1).collect());
        let newly = set.batch_insert(&batch);
        assert!(newly.iter().all(|&n| n));
        assert!(matches!(set.root.as_deref(), Some(Node::Inner(_))));
        assert_eq!(set.len(), 3100);
        set.check_invariants().unwrap();
        assert!(set.contains(&1));
        assert!(set.contains(&198));
        assert!(!set.contains(&200));
    }

    #[test]
    fn batch_remove_drains_the_tree_to_none() {
        let keys: Vec<u64> = (0..5000u64).collect();
        let mut set = IstSet::from_sorted(keys.clone());
        let removed = set.batch_remove(&Batch::from_unsorted(keys));
        assert!(removed.iter().all(|&r| r));
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        set.check_invariants().unwrap();
        // Insert into the emptied tree works again.
        let newly = set.batch_insert(&Batch::from_unsorted(vec![7, 3]));
        assert_eq!(newly, vec![true, true]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn report_variants_match_allocating_ones() {
        let keys: Vec<u64> = (0..8_000u64).map(|i| i * 2).collect();
        let mut a = IstSet::from_sorted(keys.clone());
        let mut b = IstSet::from_sorted(keys);
        let batch = Batch::from_unsorted((0..3_000u64).map(|i| i * 3).collect());
        let mut out = vec![true; 3]; // stale contents must be cleared

        a.batch_contains_report(&batch, &mut out);
        assert_eq!(out, b.batch_contains(&batch));
        a.batch_insert_report(&batch, &mut out);
        assert_eq!(out, b.batch_insert(&batch));
        a.batch_remove_report(&batch, &mut out);
        assert_eq!(out, b.batch_remove(&batch));
        assert_eq!(a.len(), b.len());
        a.check_invariants().unwrap();

        // Empty-set and empty-batch edges of the report paths.
        let mut empty: IstSet<u64> = IstSet::from_sorted(Vec::new());
        empty.batch_contains_report(&Batch::from_unsorted(vec![1, 2]), &mut out);
        assert_eq!(out, vec![false, false]);
        empty.batch_remove_report(&Batch::from_unsorted(vec![1]), &mut out);
        assert_eq!(out, vec![false]);
        empty.batch_insert_report(&Batch::from_unsorted(vec![4, 9]), &mut out);
        assert_eq!(out, vec![true, true]);
        empty.batch_insert_report(&Batch::empty(), &mut out);
        assert!(out.is_empty());
        assert_eq!(empty.len(), 2);
    }

    #[test]
    fn point_path_matches_oracle_with_invariants() {
        // Batches at or below POINT_BATCH_LEN take the in-place point path;
        // hammer it with colliding singletons against a BTreeSet oracle,
        // auditing the shape after every op.  The narrow key range makes
        // removals hit child minima (router rewrites) and empty out leaves
        // (pruning/hoisting) constantly.
        use std::collections::BTreeSet;
        let mut set = IstSet::from_unsorted((0..6_000u64).map(|i| i * 3 % 5_000).collect());
        let mut oracle: BTreeSet<u64> = (0..6_000u64).map(|i| i * 3 % 5_000).collect();
        let mut state = 0xD1CEu64;
        for step in 0..6_000 {
            // SplitMix64 step, inlined to keep this crate dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let key = z % 5_000;
            let batch = Batch::from_unsorted(vec![key]);
            let mut out = Vec::new();
            match z >> 32 & 3 {
                // Remove-leaning so the tree shrinks through rebuilds.
                0 => {
                    set.batch_insert_report(&batch, &mut out);
                    assert_eq!(out, vec![oracle.insert(key)], "step {step}, key {key}");
                }
                1 | 2 => {
                    set.batch_remove_report(&batch, &mut out);
                    assert_eq!(out, vec![oracle.remove(&key)], "step {step}, key {key}");
                }
                _ => {
                    set.batch_contains_report(&batch, &mut out);
                    assert_eq!(out, vec![oracle.contains(&key)], "step {step}, key {key}");
                }
            }
            assert_eq!(set.len(), oracle.len(), "step {step}");
            set.check_invariants()
                .unwrap_or_else(|e| panic!("step {step}, key {key}: {e}"));
        }
        // Drain everything through the trait's point mutators: exercises
        // root collapse and the `insert_one`/`remove_one` overrides.
        for key in oracle.clone() {
            assert!(set.remove_one(&key));
            assert!(!set.remove_one(&key));
            set.check_invariants().unwrap();
        }
        assert!(set.is_empty());
        assert!(set.root.is_none(), "empty root must collapse to None");
        // Point inserts revive the drained tree.
        assert!(set.insert_one(&77));
        assert!(!set.insert_one(&77));
        assert!(set.contains(&77));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn publish_root_shares_structure_and_stays_frozen() {
        let mut set = IstSet::from_sorted((0..10_000u64).map(|i| i * 2).collect());
        let view = set.publish_root();
        assert_eq!(view.len(), 10_000);
        assert!(view.contains(&4) && !view.contains(&5));
        assert_eq!(view.rank(&10), 5);
        assert_eq!(view.min(), Some(&0));
        assert_eq!(view.max(), Some(&19_998));

        // Point and batched updates after publication copy-on-write: the
        // live tree moves on, the snapshot does not.
        assert!(set.insert_one(&5));
        set.batch_insert(&Batch::from_unsorted(
            (0..500u64).map(|i| i * 2 + 7).collect(),
        ));
        set.check_invariants().unwrap();
        assert!(set.contains(&5));
        assert!(!view.contains(&5), "snapshot saw a later insert");
        assert_eq!(view.len(), 10_000, "snapshot length drifted");
        assert_eq!(view.collect_keys().len(), 10_000);

        // A fresh publication sees the new state; batch queries agree with
        // the live tree on both the joint-traversal and point paths.
        let fresh = set.publish_root();
        assert!(fresh.contains(&5));
        for batch_len in [4u64, 3_000] {
            let probes = Batch::from_unsorted((0..batch_len).map(|i| i * 3).collect());
            assert_eq!(fresh.batch_contains(&probes), set.batch_contains(&probes));
        }

        // Empty-set views answer like empty sets.
        let empty: IstSet<u64> = IstSet::from_sorted(Vec::new());
        let view = empty.publish_root();
        assert!(view.is_empty());
        assert!(!view.contains(&1));
        assert_eq!(view.rank(&1), 0);
        assert_eq!(view.min(), None);
        assert!(view.collect_keys().is_empty());
    }

    #[test]
    fn metrics_disabled_by_default() {
        let mut set = IstSet::from_sorted((0..50_000u64).collect());
        assert!(set.contains(&7));
        set.batch_insert(&Batch::from_unsorted((50_000..60_000u64).collect()));
        set.batch_contains(&Batch::from_unsorted((0..5_000u64).collect()));
        assert_eq!(set.metrics(), crate::IstMetricsSnapshot::default());
    }

    #[test]
    fn metrics_count_touches_edits_and_rebuilds() {
        let mut set =
            IstSet::from_sorted((0..50_000u64).map(|i| i * 2).collect()).with_metrics(true);

        // A joint traversal touches each visited node once, not once per
        // query — far fewer touches than point descents for a large batch.
        let queries = Batch::from_unsorted((0..10_000u64).map(|i| i * 3).collect());
        let before = set.metrics();
        set.batch_contains(&queries);
        let joint = set.metrics().delta(&before);
        assert!(joint.nodes_touched > 0);
        assert_eq!(joint.leaves_edited, 0, "lookups edit nothing");
        let before = set.metrics();
        for q in queries.iter() {
            set.contains(q);
        }
        let pointwise = set.metrics().delta(&before);
        assert!(
            joint.nodes_touched < pointwise.nodes_touched,
            "joint {} vs pointwise {}",
            joint.nodes_touched,
            pointwise.nodes_touched
        );

        // Tripling the key count drifts sizes strictly past the rebuild
        // factor (exactly 2x would not: the check is strict).
        let before = set.metrics();
        set.batch_insert(&Batch::from_unsorted(
            (0..100_000u64).map(|i| i * 2 + 1).collect(),
        ));
        let grown = set.metrics().delta(&before);
        assert!(grown.leaves_edited > 0);
        assert!(grown.rebuilds > 0);
        assert!(
            grown.rebuild_keys >= grown.rebuilds,
            "rebuilds are non-empty"
        );

        // Removing everything counts edits on the same leaves.
        let before = set.metrics();
        set.batch_remove(&Batch::from_unsorted((0..200_000u64).collect()));
        assert!(set.is_empty());
        assert!(set.metrics().delta(&before).leaves_edited > 0);
    }

    #[test]
    fn metrics_cover_the_point_paths() {
        let mut set =
            IstSet::from_sorted((0..5_000u64).map(|i| i * 2).collect()).with_metrics(true);
        let before = set.metrics();
        assert!(set.insert_one(&1));
        let d = set.metrics().delta(&before);
        assert!(d.nodes_touched > 0);
        assert_eq!(d.leaves_edited, 1);
        let before = set.metrics();
        assert!(!set.remove_one(&3));
        let d = set.metrics().delta(&before);
        assert!(d.nodes_touched > 0);
        assert_eq!(d.leaves_edited, 0, "a miss edits nothing");
        // Tiny batches route through the point ops and still count.
        let before = set.metrics();
        set.batch_insert(&Batch::from_unsorted(vec![3, 5]));
        assert_eq!(set.metrics().delta(&before).leaves_edited, 2);
    }

    #[test]
    fn clones_share_metrics() {
        let set = IstSet::from_sorted((0..20_000u64).collect()).with_metrics(true);
        let clone = set.clone();
        let before = set.metrics();
        clone.batch_contains(&Batch::from_unsorted((0..5_000u64).collect()));
        assert!(
            set.metrics().delta(&before).nodes_touched > 0,
            "a clone's work lands in the original's counters"
        );
    }

    #[test]
    fn interleaved_batches_keep_invariants() {
        let mut set = IstSet::from_sorted((0..20_000u64).map(|i| i * 3).collect());
        set.check_invariants().unwrap();
        let inserts = Batch::from_unsorted((0..10_000u64).map(|i| i * 6 + 1).collect());
        set.batch_insert(&inserts);
        set.check_invariants().unwrap();
        let removes = Batch::from_unsorted((0..20_000u64).map(|i| i * 3).collect());
        let removed = set.batch_remove(&removes);
        assert!(removed.iter().all(|&r| r));
        set.check_invariants().unwrap();
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&1));
        assert!(!set.contains(&0));
    }
}
