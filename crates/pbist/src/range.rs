//! Ordered range and selection queries over the IST.
//!
//! A range query reuses the same observation the joint batched traversal is
//! built on: routers partition the key space, so a `(lo, hi)` bound pair
//! touches at most two *boundary* children per level.  [`range_for_each`]
//! descends once, binary-searches inside the (at most two) boundary leaves,
//! and emits every fully-covered subtree in between wholesale — no per-key
//! bound checks inside the interior.  Total cost is
//! `O(depth · log fanout + output)`.
//!
//! [`kth_entry`] is the selection descent: subtract child sizes until the
//! index lands in a leaf — `O(depth · fanout)` worst case, with the fanout
//! factor bounded by [`crate::node::MAX_FANOUT`].

use std::ops::Bound;

use crate::node::Node;

/// Returns `true` when `key` falls below the lower bound (outside the range).
pub(crate) fn below_lo<K: Ord>(key: &K, lo: Bound<&K>) -> bool {
    match lo {
        Bound::Unbounded => false,
        Bound::Included(b) => key < b,
        Bound::Excluded(b) => key <= b,
    }
}

/// Returns `true` when `key` falls above the upper bound (outside the range).
pub(crate) fn above_hi<K: Ord>(key: &K, hi: Bound<&K>) -> bool {
    match hi {
        Bound::Unbounded => false,
        Bound::Included(b) => key > b,
        Bound::Excluded(b) => key >= b,
    }
}

/// Calls `f` for every `(key, value)` pair inside the `(lo, hi)` bound pair,
/// in ascending key order.
///
/// Subtrees entirely inside the bounds are emitted without further
/// comparisons; subtrees entirely outside are skipped without being entered;
/// only the boundary path (at most two children per level) recurses with the
/// bounds still in hand.
pub(crate) fn range_for_each<'a, K, V, F>(
    node: &'a Node<K, V>,
    lo: Bound<&K>,
    hi: Bound<&K>,
    f: &mut F,
) where
    K: Ord,
    F: FnMut(&'a K, &'a V),
{
    if node.is_empty() {
        return;
    }
    if !below_lo(node.min_key(), lo) && !above_hi(node.max_key(), hi) {
        // Fully covered: concatenate the whole subtree.
        emit_all(node, f);
        return;
    }
    match node {
        Node::Leaf(leaf) => {
            // A boundary leaf: carve the covered run with two binary
            // searches, then emit it check-free.
            let start = leaf.keys.partition_point(|k| below_lo(k, lo));
            let end = leaf.keys.partition_point(|k| !above_hi(k, hi));
            for i in start..end {
                f(&leaf.keys[i], &leaf.vals[i]);
            }
        }
        Node::Inner(inner) => {
            // First child that can hold an in-range key: the one `lo`'s key
            // itself would route to (earlier children end strictly below it).
            let start = match lo {
                Bound::Unbounded => 0,
                Bound::Included(b) | Bound::Excluded(b) => {
                    inner.routers.partition_point(|r| r <= b)
                }
            };
            for child in &inner.children[start..] {
                if above_hi(child.min_key(), hi) {
                    break;
                }
                if below_lo(child.max_key(), lo) {
                    continue;
                }
                range_for_each(child, lo, hi, f);
            }
        }
    }
}

/// Emits every pair of `node` in ascending key order, no bound checks.
fn emit_all<'a, K, V, F>(node: &'a Node<K, V>, f: &mut F)
where
    F: FnMut(&'a K, &'a V),
{
    match node {
        Node::Leaf(leaf) => {
            for (k, v) in leaf.keys.iter().zip(leaf.vals.iter()) {
                f(k, v);
            }
        }
        Node::Inner(inner) => {
            for child in &inner.children {
                emit_all(child, f);
            }
        }
    }
}

/// The `k`-th smallest pair (0-indexed) of a non-empty subtree.
///
/// # Panics
///
/// Panics (index out of bounds) when `k >= node.len()`; callers check.
pub(crate) fn kth_entry<K, V>(root: &Node<K, V>, k: usize) -> (&K, &V) {
    debug_assert!(k < root.len());
    let mut node = root;
    let mut k = k;
    loop {
        match node {
            Node::Leaf(leaf) => return (&leaf.keys[k], &leaf.vals[k]),
            Node::Inner(inner) => {
                let mut idx = 0;
                while k >= inner.children[idx].len() {
                    k -= inner.children[idx].len();
                    idx += 1;
                }
                node = &inner.children[idx];
            }
        }
    }
}
