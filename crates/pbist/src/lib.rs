//! Parallel-batched interpolation search tree (the AksenovKM23 subject).
//!
//! An interpolation search tree (IST) stores keys drawn from a smooth
//! distribution and descends by *interpolating* — guessing a child index from
//! the key's position within the node's key range — rather than binary
//! searching, giving expected `O(log log n)` searches.  The paper batches
//! operations (search/insert/delete arrive as sorted batches) and processes
//! each batch in parallel across the tree, using exactly the primitives in
//! `parprim`: partition the batch across children with binary searches,
//! recurse with `forkjoin::join`, and combine per-subtree counts with scans.
//!
//! # Current state
//!
//! This crate is the structural skeleton for that reproduction: the node
//! representation ([`node`]), the key-interpolation trait
//! ([`node::InterpolateKey`]), and a first [`tree::IstSet`] supporting bulk
//! construction from sorted keys, single lookups via interpolated descent,
//! and batched parallel lookups.  Batched *updates* (the paper's insert and
//! delete with subtree rebuilding) are the next milestones and will land on
//! top of this layout.

#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use node::InterpolateKey;
pub use tree::IstSet;
