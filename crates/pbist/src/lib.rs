//! Parallel-batched interpolation search tree (the AksenovKM23 subject).
//!
//! An interpolation search tree (IST) stores keys drawn from a smooth
//! distribution and descends by *interpolating* — guessing a child index from
//! the key's position within the node's key range — rather than binary
//! searching, giving expected `O(log log n)` searches.  The paper batches
//! operations (search/insert/delete arrive as sorted batches) and processes
//! each batch in parallel across the tree, using exactly the primitives in
//! `parprim`: partition the batch across children with binary searches,
//! recurse with `forkjoin::join`, and combine per-subtree counts with scans.
//!
//! # Layout
//!
//! * [`node`] — the node representation and the key-interpolation trait
//!   ([`node::InterpolateKey`]).  Nodes are generic over a per-key value
//!   (`V = ()` for the set), so the set and the map share one structure.
//! * [`tree`] — [`tree::IstSet`]: bulk parallel construction, interpolated
//!   point lookups, and the [`batchapi::BatchedSet`] impl.
//! * [`map`] — [`map::IstMap`]: the key→value instantiation, implementing
//!   [`batchapi::BatchedMap`] with last-wins batched upserts.
//! * `traverse` (internal) — the joint sorted-batch membership/lookup
//!   traversal: partition the batch at each inner node, fork per child.
//! * `update` (internal) — batched insert/remove: route the batch to the
//!   leaves in parallel, rebuild touched leaves, propagate router/`min`/
//!   `max`/`len` updates, and rebuild any subtree whose size drifts past the
//!   rebuild threshold.
//! * `range` (internal) — ordered queries: the descend-once range carve
//!   (binary searches only in the two boundary leaves, interior subtrees
//!   concatenated wholesale) and the `k`-th-smallest selection descent.
//!
//! All batched operations take a [`batchapi::Batch`] — sorted and
//! deduplicated once at the boundary — and exploit a surrounding
//! [`forkjoin::Pool`] when one is installed.

#![warn(missing_docs)]

pub mod map;
mod metrics;
pub mod node;
mod range;
mod traverse;
pub mod tree;
mod update;

pub use map::IstMap;
pub use metrics::IstMetricsSnapshot;
pub use node::InterpolateKey;
pub use tree::IstSet;
