//! Node representation and the key-interpolation trait.
//!
//! An IST node's fanout grows with the size of its subtree (the paper uses
//! `Θ(√n)` children at the root of an `n`-key subtree), so child arrays are
//! `Vec`s rather than fixed-size arrays.  Each inner node keeps the router
//! keys separating its children plus the bounds of its key range, which is
//! what the interpolation step needs.
//!
//! Children are held behind `Arc` so a published read snapshot
//! ([`batchapi::SetView`], via `IstSet::publish_root`) shares the tree
//! structurally: updates copy-on-write exactly the root-to-leaf path they
//! edit (`Arc::make_mut` clones a node only while a snapshot still
//! references it), leaving every outstanding snapshot untouched.

use std::sync::Arc;

/// Maps a key to a position on the real line so a node can interpolate.
///
/// Interpolation search needs more than `Ord`: it must estimate *where*
/// between two keys a third one falls.  Implementations must be monotone
/// (`a <= b` implies `to_ordinal(a) <= to_ordinal(b)`); a poor (but still
/// monotone) mapping only costs performance, never correctness, because the
/// descent falls back to the routers' order.
pub trait InterpolateKey: Ord {
    /// The key's position on the real line.
    fn to_ordinal(&self) -> f64;
}

macro_rules! impl_interpolate_for_ints {
    ($($t:ty),*) => {
        $(impl InterpolateKey for $t {
            fn to_ordinal(&self) -> f64 {
                *self as f64
            }
        })*
    };
}

impl_interpolate_for_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Keys per leaf before a subtree is given inner structure.
///
/// Leaves are scanned with interpolation search over a contiguous array, so
/// they can be sizeable; this also keeps the tree shallow for the batch
/// recursion.
pub const LEAF_CAPACITY: usize = 1024;

/// Maximum children of one inner node.  The ideal IST fanout is `Θ(√n)` —
/// the cap only bounds worst-case router-array sizes (and with it the cost
/// of the corrective binary search when an interpolation guess misses).
/// 256 keeps a 100k-key tree at depth two (root plus leaves), which point
/// descents feel directly; interpolation makes the wider router arrays
/// nearly free to search.
pub const MAX_FANOUT: usize = 256;

/// A subtree: either a sorted leaf array or an inner routing node.
///
/// The value parameter `V` defaults to `()` — the set case, where the
/// per-key value array is a zero-sized no-op the compiler erases.  The map
/// ([`crate::IstMap`]) instantiates the same structure with real values:
/// leaves carry one value per key (parallel arrays), inner nodes route
/// exactly as for the set.
#[derive(Debug, Clone)]
pub enum Node<K, V = ()> {
    /// A sorted, deduplicated run of keys (with their values).
    Leaf(LeafNode<K, V>),
    /// A routing node over `children.len()` subtrees.
    Inner(InnerNode<K, V>),
}

impl<K, V> Node<K, V> {
    /// Number of keys stored in this subtree.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(leaf) => leaf.keys.len(),
            Node::Inner(inner) => inner.len,
        }
    }

    /// Returns `true` when the subtree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest key in this subtree.
    ///
    /// # Panics
    ///
    /// Panics on an empty leaf; empty subtrees exist only transiently inside
    /// a batched removal, before the parent prunes them.
    pub fn min_key(&self) -> &K {
        match self {
            Node::Leaf(leaf) => &leaf.keys[0],
            Node::Inner(inner) => &inner.min,
        }
    }

    /// Largest key in this subtree.
    ///
    /// # Panics
    ///
    /// Panics on an empty leaf (see [`Node::min_key`]).
    pub fn max_key(&self) -> &K {
        match self {
            Node::Leaf(leaf) => &leaf.keys[leaf.keys.len() - 1],
            Node::Inner(inner) => &inner.max,
        }
    }
}

/// A leaf: a sorted, deduplicated array of keys, with a parallel array of
/// values (`vals[i]` belongs to `keys[i]`; a zero-sized `Vec<()>` for sets).
#[derive(Debug, Clone)]
pub struct LeafNode<K, V = ()> {
    /// The keys, strictly increasing.
    pub keys: Vec<K>,
    /// The values, index-parallel to `keys` (`vals.len() == keys.len()`).
    pub vals: Vec<V>,
}

/// An inner node routing to `children.len()` subtrees.
///
/// `routers[i]` is the smallest key of `children[i + 1]`; a search for `key`
/// descends into `children[partition_point(routers, r <= key)]`.  The
/// interpolation step uses `min`/`max` (the smallest and largest key in this
/// subtree) to guess that index before touching the routers.
#[derive(Debug, Clone)]
pub struct InnerNode<K, V = ()> {
    /// Separator keys, strictly increasing; `len == children.len() - 1`.
    pub routers: Vec<K>,
    /// The subtrees, each non-empty.  `Arc` for structural sharing with
    /// published read snapshots; the update path edits through
    /// `Arc::make_mut` (copy-on-write).
    pub children: Vec<Arc<Node<K, V>>>,
    /// Total number of keys under this node.
    pub len: usize,
    /// Number of keys under this node when its subtree was last (re)built.
    /// The update path compares `len` against this to decide when the
    /// subtree's size has drifted far enough from its ideal `Θ(√n)`-fanout
    /// shape to warrant a rebuild.
    pub built_len: usize,
    /// Smallest key in this subtree (interpolation lower bound).
    pub min: K,
    /// Largest key in this subtree (interpolation upper bound).
    pub max: K,
}

/// Guesses which of `len` evenly-spread slots `key` falls into, given the
/// bounds of the range.  Returns a slot in `[0, len)`.
///
/// This is the single arithmetic step that gives interpolation search its
/// `O(log log n)` behaviour on smooth key distributions; callers must treat
/// it as a *hint* and correct with the actual routers or keys.
pub fn interpolate_slot<K: InterpolateKey>(key: &K, min: &K, max: &K, len: usize) -> usize {
    debug_assert!(len > 0);
    let lo = min.to_ordinal();
    let hi = max.to_ordinal();
    let k = key.to_ordinal();
    // `partial_cmp` spells out the NaN case: a degenerate or non-finite
    // range yields slot 0 and the caller's fallback search takes over.
    let range_is_increasing = matches!(hi.partial_cmp(&lo), Some(std::cmp::Ordering::Greater));
    if !range_is_increasing || !k.is_finite() {
        return 0;
    }
    let frac = ((k - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((frac * len as f64) as usize).min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolate_slot_is_monotone_and_bounded() {
        let (min, max) = (0u64, 1000u64);
        let mut prev = 0usize;
        for key in 0..=1000u64 {
            let slot = interpolate_slot(&key, &min, &max, 10);
            assert!(slot < 10);
            assert!(slot >= prev);
            prev = slot;
        }
        assert_eq!(interpolate_slot(&0u64, &min, &max, 10), 0);
        assert_eq!(interpolate_slot(&1000u64, &min, &max, 10), 9);
    }

    #[test]
    fn interpolate_slot_handles_degenerate_range() {
        assert_eq!(interpolate_slot(&5u64, &5u64, &5u64, 4), 0);
    }

    #[test]
    fn interpolate_slot_clamps_out_of_range_keys() {
        assert_eq!(interpolate_slot(&0u64, &100u64, &200u64, 8), 0);
        assert_eq!(interpolate_slot(&999u64, &100u64, &200u64, 8), 7);
    }
}
