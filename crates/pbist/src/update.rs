//! The paper's batched updates: insert and remove sorted batches in
//! parallel, rebuilding drifted subtrees.
//!
//! Both operations follow the same shape as the joint traversal
//! ([`crate::traverse`]): the batch is partitioned at each inner node and
//! the children recurse on their sub-batches in parallel.  At the leaves the
//! batch is merged in (insert) or filtered out (remove) with one sequential
//! pass, and on the way back up every inner node refreshes its metadata
//! (`len`, routers, `min`/`max`) from its children.  A subtree whose key
//! count has drifted outside `[built_len / 2, built_len * 2]` since it was
//! last built — or a leaf that outgrew [`LEAF_CAPACITY`] — is rebuilt from
//! its sorted keys, restoring the ideal `Θ(√n)` fanout; removals that empty
//! a subtree are pruned by the parent (single survivors are hoisted).
//!
//! Everything here is generic over the per-key value `V` ([`crate::IstMap`]
//! carries real values; the set instantiates `V = ()`, which the compiler
//! erases).  Inserts are upserts: a key already present keeps its slot and
//! takes the incoming value, reporting `false` ("not newly inserted").

use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::metrics::{touch_leaf_edit, touch_node, touch_rebuild, MetricsRef};
use crate::node::{InnerNode, InterpolateKey, LeafNode, Node, LEAF_CAPACITY};
use crate::traverse::{partition_batch, SEQ_BATCH_LEN};
use crate::tree::{build, child_index};

/// A subtree is rebuilt when its size leaves
/// `[built_len / REBUILD_FACTOR, built_len * REBUILD_FACTOR]`.  Factor 2
/// amortises each rebuild against at least `built_len / 2` updates, while
/// keeping every node's fanout within a constant factor of `√len`.
const REBUILD_FACTOR: usize = 2;

/// Subtrees at or below this many keys are flattened sequentially by
/// [`collect_keys`]; above it, collection forks per child.
const SEQ_COLLECT_LEN: usize = 2048;

/// Batches at or below this length run as a loop of point operations
/// ([`insert_one`] / [`remove_one`]) instead of the batch recursion, whose
/// per-level scratch allocations dominate for a handful of keys.  Applying
/// a sorted, deduplicated batch key-by-key is observationally identical to
/// the batched run.
pub(crate) const POINT_BATCH_LEN: usize = 8;

/// One child's share of a batched insert: the subtree, its contiguous
/// key/value sub-batches, the matching output-flag slice, and the per-child
/// count the recursion reports back.
type InsertTask<'a, K, V> = (
    &'a mut Node<K, V>,
    &'a [K],
    &'a [V],
    &'a mut [MaybeUninit<bool>],
    usize,
);

/// One child's share of a batched removal (no values travel with it).
type RemoveTask<'a, K, V> = (
    &'a mut Node<K, V>,
    &'a [K],
    &'a mut [MaybeUninit<bool>],
    usize,
);

/// One child's share of a parallel flatten: the subtree and its slices of
/// the output key and value buffers.
type CollectTask<'a, K, V> = (
    &'a Node<K, V>,
    &'a mut [MaybeUninit<K>],
    &'a mut [MaybeUninit<V>],
);

/// Upserts the sorted `batch` (keys with index-parallel `vals`) into the
/// subtree at `node`, writing one "newly inserted?" flag per batch element
/// into `out` (batch order) and returning how many keys were actually
/// added.  Keys already present take the incoming value and flag `false`.
pub(crate) fn insert_into<K, V>(
    node: &mut Node<K, V>,
    batch: &[K],
    vals: &[V],
    out: &mut [MaybeUninit<bool>],
    m: MetricsRef<'_>,
) -> usize
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    debug_assert_eq!(batch.len(), out.len());
    debug_assert_eq!(batch.len(), vals.len());
    debug_assert!(!batch.is_empty());
    touch_node(m);
    let added = match node {
        Node::Leaf(leaf) => {
            let added = insert_into_leaf(leaf, batch, vals, out);
            touch_leaf_edit(m, added > 0);
            added
        }
        Node::Inner(inner) => {
            let added = {
                let offsets = partition_batch(&inner.routers, batch);
                let mut tasks: Vec<InsertTask<'_, K, V>> = Vec::with_capacity(inner.children.len());
                let mut batch_rest = batch;
                let mut vals_rest = vals;
                let mut out_rest = out;
                for (child, window) in inner.children.iter_mut().zip(offsets.windows(2)) {
                    let seg_len = window[1] - window[0];
                    let (batch_seg, batch_tail) = batch_rest.split_at(seg_len);
                    let (vals_seg, vals_tail) = vals_rest.split_at(seg_len);
                    let (out_seg, out_tail) = out_rest.split_at_mut(seg_len);
                    batch_rest = batch_tail;
                    vals_rest = vals_tail;
                    out_rest = out_tail;
                    if seg_len > 0 {
                        // Copy-on-write: only children actually receiving
                        // updates are unshared from outstanding snapshots.
                        tasks.push((Arc::make_mut(child), batch_seg, vals_seg, out_seg, 0));
                    }
                }
                if batch.len() <= SEQ_BATCH_LEN {
                    for (child, batch_seg, vals_seg, out_seg, count) in tasks.iter_mut() {
                        *count = insert_into(child, batch_seg, vals_seg, out_seg, m);
                    }
                } else {
                    // Fork per child: each task is a whole sub-update (see
                    // the matching comment in `traverse`).
                    parprim::for_each_mut_with_grain(
                        &mut tasks,
                        1,
                        |(child, batch_seg, vals_seg, out_seg, count)| {
                            *count = insert_into(child, batch_seg, vals_seg, out_seg, m);
                        },
                    );
                }
                tasks.iter().map(|task| task.4).sum::<usize>()
            };
            inner.len += added;
            if added > 0 {
                refresh_metadata(inner);
            }
            added
        }
    };
    maybe_rebuild(node, m);
    added
}

/// Removes the sorted `batch` from the subtree at `node`, writing one "was
/// present?" flag per batch element into `out` (batch order) and returning
/// how many keys were actually removed.
///
/// May leave `node` as an **empty leaf** when the batch wipes the subtree
/// out; callers (the parent node, or `IstSet` at the root) prune it.
pub(crate) fn remove_from<K, V>(
    node: &mut Node<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<bool>],
    m: MetricsRef<'_>,
) -> usize
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    debug_assert_eq!(batch.len(), out.len());
    debug_assert!(!batch.is_empty());
    touch_node(m);
    let removed = match node {
        Node::Leaf(leaf) => {
            let removed = remove_from_leaf(leaf, batch, out);
            touch_leaf_edit(m, removed > 0);
            removed
        }
        Node::Inner(inner) => {
            let removed =
                for_each_child_batch(inner, batch, out, |n, b, o| remove_from(n, b, o, m));
            inner.len -= removed;
            if removed > 0 {
                inner.children.retain(|c| !c.is_empty());
                if inner.children.len() >= 2 {
                    refresh_metadata(inner);
                }
            }
            removed
        }
    };
    // Prune inner nodes the retain above left degenerate: an emptied subtree
    // becomes an empty leaf (for the parent to drop in turn) and a single
    // surviving child is hoisted into its parent's slot.
    if let Node::Inner(inner) = node {
        if inner.children.len() < 2 {
            *node = match inner.children.pop() {
                Some(only) => Arc::unwrap_or_clone(only),
                None => Node::Leaf(LeafNode {
                    keys: Vec::new(),
                    vals: Vec::new(),
                }),
            };
        }
    }
    maybe_rebuild(node, m);
    removed
}

/// Upserts a single pair: interpolated descent, in-place leaf edit,
/// in-place metadata maintenance.  Returns `true` iff the key was newly
/// added (`false` = present; its value was overwritten).
///
/// This is the allocation-free fast path behind tiny batches — the shape
/// the flat-combining front-end produces under low contention, where the
/// batch recursion's per-level scratch (partition offsets, task lists,
/// refreshed router vectors) costs more than the whole operation.
///
/// Metadata stays exact without touching the router array: the descent
/// picks child `i` because `routers[i-1] <= key`, and `routers[i-1]` *is*
/// child `i`'s minimum, so a newly inserted key can never become the
/// minimum of any child except child 0 — whose minimum no router records.
pub(crate) fn insert_one<K, V>(node: &mut Node<K, V>, key: &K, val: &V, m: MetricsRef<'_>) -> bool
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    touch_node(m);
    let added = match node {
        Node::Leaf(leaf) => match leaf.keys.binary_search(key) {
            Ok(pos) => {
                leaf.vals[pos] = val.clone();
                false
            }
            Err(pos) => {
                leaf.keys.insert(pos, key.clone());
                leaf.vals.insert(pos, val.clone());
                touch_leaf_edit(m, true);
                true
            }
        },
        Node::Inner(inner) => {
            let idx = child_index(inner, key);
            let added = insert_one(Arc::make_mut(&mut inner.children[idx]), key, val, m);
            if added {
                inner.len += 1;
                if *key < inner.min {
                    inner.min = key.clone();
                }
                if *key > inner.max {
                    inner.max = key.clone();
                }
            }
            added
        }
    };
    maybe_rebuild(node, m);
    added
}

/// Removes a single key: interpolated descent, in-place leaf edit, in-place
/// metadata maintenance (the counterpart of [`insert_one`]).  Returns
/// `true` iff the key was present.  May leave `node` as an **empty leaf**
/// when it held exactly this key; callers prune it (as with
/// [`remove_from`]).
pub(crate) fn remove_one<K, V>(node: &mut Node<K, V>, key: &K, m: MetricsRef<'_>) -> bool
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    touch_node(m);
    let removed = match node {
        Node::Leaf(leaf) => match leaf.keys.binary_search(key) {
            Ok(pos) => {
                leaf.keys.remove(pos);
                leaf.vals.remove(pos);
                touch_leaf_edit(m, true);
                true
            }
            Err(_) => false,
        },
        Node::Inner(inner) => {
            let idx = child_index(inner, key);
            let removed = remove_one(Arc::make_mut(&mut inner.children[idx]), key, m);
            if removed {
                inner.len -= 1;
                if inner.children[idx].is_empty() {
                    // Drop the emptied child and the router that named it
                    // (child 0 is named by no router; dropping it promotes
                    // router 0's key to plain first-child minimum).
                    inner.children.remove(idx);
                    inner.routers.remove(idx.saturating_sub(1));
                } else {
                    // Removing a child's minimum shifts the router that
                    // records it; removing its maximum shifts nothing.
                    if idx > 0 {
                        let child_min = inner.children[idx].min_key();
                        if *child_min != inner.routers[idx - 1] {
                            inner.routers[idx - 1] = child_min.clone();
                        }
                    }
                }
                if !inner.children.is_empty() {
                    let first_min = inner.children[0].min_key();
                    if inner.min != *first_min {
                        inner.min = first_min.clone();
                    }
                    let last_max = inner.children[inner.children.len() - 1].max_key();
                    if inner.max != *last_max {
                        inner.max = last_max.clone();
                    }
                }
            }
            removed
        }
    };
    // Same degenerate-node pruning as the batch path: hoist a lone child,
    // collapse an emptied node into an empty leaf for the parent to drop.
    if let Node::Inner(inner) = node {
        if inner.children.len() < 2 {
            *node = match inner.children.pop() {
                Some(only) => Arc::unwrap_or_clone(only),
                None => Node::Leaf(LeafNode {
                    keys: Vec::new(),
                    vals: Vec::new(),
                }),
            };
        }
    }
    maybe_rebuild(node, m);
    removed
}

/// Flattens the subtree at `node` into one sorted key vector, forking per
/// child for large subtrees.
pub(crate) fn collect_keys<K, V>(node: &Node<K, V>) -> Vec<K>
where
    K: Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    collect_kv(node).0
}

/// Flattens the subtree at `node` into parallel sorted key and value
/// vectors — the shape [`build`] consumes, so a drifted subtree rebuilds
/// (and a map snapshots) without pair-tupling the contents first.
pub(crate) fn collect_kv<K, V>(node: &Node<K, V>) -> (Vec<K>, Vec<V>)
where
    K: Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    let n = node.len();
    let mut keys = Vec::with_capacity(n);
    let mut vals = Vec::with_capacity(n);
    collect_into(
        node,
        &mut keys.spare_capacity_mut()[..n],
        &mut vals.spare_capacity_mut()[..n],
    );
    // SAFETY: `collect_into` writes each of the first `n` slots of both
    // buffers exactly once (children cover disjoint ranges whose lengths
    // sum to `n`).
    unsafe {
        keys.set_len(n);
        vals.set_len(n);
    }
    (keys, vals)
}

fn collect_into<K, V>(
    node: &Node<K, V>,
    keys_out: &mut [MaybeUninit<K>],
    vals_out: &mut [MaybeUninit<V>],
) where
    K: Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    debug_assert_eq!(node.len(), keys_out.len());
    debug_assert_eq!(node.len(), vals_out.len());
    match node {
        Node::Leaf(leaf) => {
            for ((key, val), (kslot, vslot)) in leaf
                .keys
                .iter()
                .zip(leaf.vals.iter())
                .zip(keys_out.iter_mut().zip(vals_out.iter_mut()))
            {
                kslot.write(key.clone());
                vslot.write(val.clone());
            }
        }
        Node::Inner(inner) => {
            let mut tasks: Vec<CollectTask<'_, K, V>> = Vec::with_capacity(inner.children.len());
            let mut keys_rest = keys_out;
            let mut vals_rest = vals_out;
            for child in &inner.children {
                let (kseg, ktail) = keys_rest.split_at_mut(child.len());
                let (vseg, vtail) = vals_rest.split_at_mut(child.len());
                keys_rest = ktail;
                vals_rest = vtail;
                tasks.push((child.as_ref(), kseg, vseg));
            }
            if inner.len <= SEQ_COLLECT_LEN {
                for (child, kseg, vseg) in tasks.iter_mut() {
                    collect_into(child, kseg, vseg);
                }
            } else {
                parprim::for_each_mut_with_grain(&mut tasks, 1, |(child, kseg, vseg)| {
                    collect_into(child, kseg, vseg);
                });
            }
        }
    }
}

/// Routes `batch` to `inner`'s children ([`partition_batch`]) and runs `op`
/// on every child that received a non-empty sub-batch — in parallel when the
/// batch is large enough — returning the sum of the per-child results.
fn for_each_child_batch<K, V, Op>(
    inner: &mut InnerNode<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<bool>],
    op: Op,
) -> usize
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
    Op: Fn(&mut Node<K, V>, &[K], &mut [MaybeUninit<bool>]) -> usize + Sync,
{
    let offsets = partition_batch(&inner.routers, batch);
    // Last tuple slot collects the per-child count, since `for_each_mut`
    // has no return channel.
    let mut tasks: Vec<RemoveTask<'_, K, V>> = Vec::with_capacity(inner.children.len());
    let mut batch_rest = batch;
    let mut out_rest = out;
    for (child, window) in inner.children.iter_mut().zip(offsets.windows(2)) {
        let seg_len = window[1] - window[0];
        let (batch_seg, batch_tail) = batch_rest.split_at(seg_len);
        let (out_seg, out_tail) = out_rest.split_at_mut(seg_len);
        batch_rest = batch_tail;
        out_rest = out_tail;
        if seg_len > 0 {
            // Copy-on-write: only children actually receiving updates are
            // unshared from outstanding snapshots.
            tasks.push((Arc::make_mut(child), batch_seg, out_seg, 0));
        }
    }
    if batch.len() <= SEQ_BATCH_LEN {
        for (child, batch_seg, out_seg, count) in tasks.iter_mut() {
            *count = op(child, batch_seg, out_seg);
        }
    } else {
        // Fork per child: each task is a whole sub-update (see the matching
        // comment in `traverse`).
        parprim::for_each_mut_with_grain(&mut tasks, 1, |(child, batch_seg, out_seg, count)| {
            *count = op(child, batch_seg, out_seg);
        });
    }
    tasks.iter().map(|task| task.3).sum()
}

/// Recomputes `min`, `max` and the routers of `inner` from its (non-empty,
/// at least two) children.  `len` is maintained incrementally by the caller.
fn refresh_metadata<K: Ord + Clone, V>(inner: &mut InnerNode<K, V>) {
    debug_assert!(inner.children.len() >= 2);
    inner.min = inner.children[0].min_key().clone();
    inner.max = inner.children[inner.children.len() - 1].max_key().clone();
    inner.routers = inner.children[1..]
        .iter()
        .map(|child| child.min_key().clone())
        .collect();
}

/// Rebuilds the subtree at `node` from its sorted keys when its size has
/// drifted past the rebuild threshold (or a leaf outgrew its capacity),
/// restoring the ideal `Θ(√n)`-fanout shape.
fn maybe_rebuild<K, V>(node: &mut Node<K, V>, m: MetricsRef<'_>)
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    let drifted = match node {
        Node::Leaf(leaf) => leaf.keys.len() > LEAF_CAPACITY,
        Node::Inner(inner) => {
            inner.len > inner.built_len * REBUILD_FACTOR
                || inner.len * REBUILD_FACTOR < inner.built_len
        }
    };
    if drifted {
        touch_rebuild(m, node.len());
        let (keys, vals) = collect_kv(node);
        *node = build(&keys, &vals);
    }
}

/// Merges `batch` (keys with parallel `vals`) into one leaf's sorted run,
/// flagging which elements were new; returns the number added.  Present
/// keys take the incoming value (upsert).  The leaf may exceed
/// [`LEAF_CAPACITY`] afterwards — [`maybe_rebuild`] gives it inner
/// structure.
fn insert_into_leaf<K: Ord + Clone, V: Clone>(
    leaf: &mut LeafNode<K, V>,
    batch: &[K],
    vals: &[V],
    out: &mut [MaybeUninit<bool>],
) -> usize {
    let keys = &leaf.keys;
    let old_vals = &leaf.vals;
    let mut merged = Vec::with_capacity(keys.len() + batch.len());
    let mut merged_vals = Vec::with_capacity(keys.len() + batch.len());
    let mut i = 0;
    let mut added = 0;
    for ((q, v), slot) in batch.iter().zip(vals.iter()).zip(out.iter_mut()) {
        while i < keys.len() && keys[i] < *q {
            merged.push(keys[i].clone());
            merged_vals.push(old_vals[i].clone());
            i += 1;
        }
        if i < keys.len() && keys[i] == *q {
            // Present already: keep the stored key, take the batch's value
            // (upsert), report "not newly inserted".
            merged.push(keys[i].clone());
            merged_vals.push(v.clone());
            i += 1;
            slot.write(false);
        } else {
            merged.push(q.clone());
            merged_vals.push(v.clone());
            added += 1;
            slot.write(true);
        }
    }
    merged.extend_from_slice(&keys[i..]);
    merged_vals.extend_from_slice(&old_vals[i..]);
    leaf.keys = merged;
    leaf.vals = merged_vals;
    added
}

/// Filters `batch` out of one leaf's sorted run, flagging which elements
/// were present; returns the number removed.  May leave the leaf empty.
fn remove_from_leaf<K: Ord + Clone, V: Clone>(
    leaf: &mut LeafNode<K, V>,
    batch: &[K],
    out: &mut [MaybeUninit<bool>],
) -> usize {
    let keys = &leaf.keys;
    let old_vals = &leaf.vals;
    let mut kept = Vec::with_capacity(keys.len());
    let mut kept_vals = Vec::with_capacity(keys.len());
    let mut i = 0;
    let mut removed = 0;
    for (q, slot) in batch.iter().zip(out.iter_mut()) {
        while i < keys.len() && keys[i] < *q {
            kept.push(keys[i].clone());
            kept_vals.push(old_vals[i].clone());
            i += 1;
        }
        if i < keys.len() && keys[i] == *q {
            i += 1;
            removed += 1;
            slot.write(true);
        } else {
            slot.write(false);
        }
    }
    kept.extend_from_slice(&keys[i..]);
    kept_vals.extend_from_slice(&old_vals[i..]);
    leaf.keys = kept;
    leaf.vals = kept_vals;
    removed
}
