//! The interpolation search tree as a key→value map.
//!
//! [`IstMap`] instantiates the exact same node structure, joint batched
//! traversal, and drift-triggered rebuilds as [`crate::IstSet`] — the set is
//! the `V = ()` special case — with leaves carrying an index-parallel value
//! array.  Batched upserts follow [`batchapi::BatchedMap`]'s last-wins
//! duplicate policy (duplicates are already collapsed by
//! [`batchapi::KvBatch`] construction; a key that is present keeps its slot
//! and takes the incoming value).

use std::ops::Bound;
use std::sync::Arc;

use batchapi::{Batch, BatchedMap, KvBatch};

use crate::metrics::{metrics_ref, touch_node, IstMetrics, IstMetricsSnapshot, MetricsRef};
use crate::node::{InterpolateKey, LeafNode, Node};
use crate::tree::{check_node, get_in, rank_in};
use crate::{range, traverse, update};

/// An ordered key→value map stored as an interpolation search tree.
///
/// ```
/// use batchapi::{Batch, BatchedMap, KvBatch};
///
/// let mut map = pbist::IstMap::from_unsorted_entries(vec![(5u64, "a"), (1, "b")]);
/// assert_eq!(map.get(&5), Some("a"));
/// let newly = map.batch_insert_kv(&KvBatch::from_unsorted(vec![(5, "x"), (9, "y")]));
/// assert_eq!(newly, vec![false, true]); // 5 was present: value overwritten
/// assert_eq!(map.get(&5), Some("x"));
/// assert_eq!(map.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IstMap<K, V> {
    /// `Arc` for the same copy-on-write snapshot discipline as the set.
    root: Option<Arc<Node<K, V>>>,
    /// Gates metric recording, as in [`crate::IstSet`].
    obs: obs::Obs,
    /// Work counters, shared across clones.
    metrics: Arc<IstMetrics>,
}

impl<K, V> IstMap<K, V> {
    fn with_root(root: Option<Node<K, V>>) -> IstMap<K, V> {
        IstMap {
            root: root.map(Arc::new),
            obs: obs::Obs::disabled(),
            metrics: Arc::new(IstMetrics::default()),
        }
    }

    /// Turns work-counter collection on or off (see
    /// [`crate::IstSet::with_metrics`]).
    pub fn with_metrics(mut self, enabled: bool) -> IstMap<K, V> {
        self.obs = obs::Obs::new(enabled);
        self
    }

    /// Snapshot of the map's work counters.
    pub fn metrics(&self) -> IstMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn obs_metrics(&self) -> MetricsRef<'_> {
        metrics_ref(self.obs, &self.metrics)
    }
}

impl<K, V> IstMap<K, V>
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Builds a map from entries whose keys are already strictly increasing
    /// (checked with a `debug_assert!`).
    pub fn from_sorted_entries(entries: Vec<(K, V)>) -> IstMap<K, V> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "keys must be strictly increasing"
        );
        if entries.is_empty() {
            return IstMap::with_root(None);
        }
        let (keys, vals): (Vec<K>, Vec<V>) = entries.into_iter().unzip();
        IstMap::with_root(Some(crate::tree::build(&keys, &vals)))
    }

    /// Builds a map from arbitrary entries; sorts by key and collapses
    /// duplicates last-wins (the [`KvBatch`] policy).
    pub fn from_unsorted_entries(entries: Vec<(K, V)>) -> IstMap<K, V> {
        IstMap::from_kv_batch(&KvBatch::from_unsorted(entries))
    }

    /// Builds a map holding the pairs of `batch` (already sorted and
    /// deduplicated by construction).
    pub fn from_kv_batch(batch: &KvBatch<K, V>) -> IstMap<K, V> {
        if batch.is_empty() {
            return IstMap::with_root(None);
        }
        IstMap::with_root(Some(crate::tree::build(batch.keys(), batch.vals())))
    }

    /// Number of pairs in the map.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |root| root.len())
    }

    /// Returns `true` when the map holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The value stored under `key`, descending by interpolation.
    pub fn get(&self, key: &K) -> Option<V> {
        match &self.root {
            Some(root) => get_in(root, key, self.obs_metrics()),
            None => None,
        }
    }

    /// Returns `true` when `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        match &self.root {
            Some(root) => crate::tree::contains_in(root, key, self.obs_metrics()),
            None => false,
        }
    }

    /// The smallest key, or `None` for an empty map.
    pub fn min(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.min_key())
    }

    /// The largest key, or `None` for an empty map.
    pub fn max(&self) -> Option<&K> {
        self.root.as_ref().map(|root| root.max_key())
    }

    /// Verifies the tree's shape invariants (including the
    /// `vals.len() == keys.len()` leaf invariant); see
    /// [`crate::IstSet::check_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.root {
            None => Ok(()),
            Some(root) if root.is_empty() => Err("empty root was not pruned to None".into()),
            Some(root) => check_node(root),
        }
    }
}

impl<K, V> BatchedMap<K, V> for IstMap<K, V>
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn len(&self) -> usize {
        IstMap::len(self)
    }

    fn get(&self, key: &K) -> Option<V> {
        IstMap::get(self, key)
    }

    fn contains_key(&self, key: &K) -> bool {
        IstMap::contains_key(self, key)
    }

    fn rank(&self, key: &K) -> usize {
        match &self.root {
            Some(root) => rank_in(root, key, self.obs_metrics()),
            None => 0,
        }
    }

    fn batch_get(&self, batch: &Batch<K>) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = Vec::new();
        if batch.is_empty() {
            return out;
        }
        let root = match &self.root {
            Some(root) => root,
            None => {
                out.resize(batch.len(), None);
                return out;
            }
        };
        // Tiny batches: point lookups beat the joint traversal's per-node
        // scratch, exactly as in the set's report path.
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| self.get(q)));
            return out;
        }
        out.reserve(batch.len());
        traverse::batch_get_into(
            root,
            batch.as_slice(),
            &mut out.spare_capacity_mut()[..batch.len()],
            self.obs_metrics(),
        );
        // SAFETY: the traversal writes every one of the first `batch.len()`
        // slots exactly once (children cover disjoint batch segments).
        unsafe { out.set_len(batch.len()) };
        out
    }

    fn batch_insert_kv(&mut self, batch: &KvBatch<K, V>) -> Vec<bool> {
        let mut out: Vec<bool> = Vec::new();
        if batch.is_empty() {
            return out;
        }
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => {
                let built = crate::tree::build(batch.keys(), batch.vals());
                self.root = Some(Arc::new(built));
                out.resize(batch.len(), true);
                return out;
            }
        };
        let m = metrics_ref(self.obs, &self.metrics);
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|(q, v)| update::insert_one(root, q, v, m)));
            return out;
        }
        out.reserve(batch.len());
        update::insert_into(
            root,
            batch.keys(),
            batch.vals(),
            &mut out.spare_capacity_mut()[..batch.len()],
            m,
        );
        // SAFETY: as in `batch_get` — every flag slot written once.
        unsafe { out.set_len(batch.len()) };
        out
    }

    fn batch_remove(&mut self, batch: &Batch<K>) -> Vec<bool> {
        let mut out: Vec<bool> = Vec::new();
        if batch.is_empty() {
            return out;
        }
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => {
                out.resize(batch.len(), false);
                return out;
            }
        };
        let m = metrics_ref(self.obs, &self.metrics);
        if batch.len() <= update::POINT_BATCH_LEN {
            out.extend(batch.iter().map(|q| update::remove_one(root, q, m)));
        } else {
            out.reserve(batch.len());
            update::remove_from(
                root,
                batch.as_slice(),
                &mut out.spare_capacity_mut()[..batch.len()],
                m,
            );
            // SAFETY: as in `batch_get` — every flag slot written once.
            unsafe { out.set_len(batch.len()) };
        }
        if root.is_empty() {
            self.root = None;
        }
        out
    }

    fn collect_entries(&self) -> Vec<(K, V)> {
        match &self.root {
            Some(root) => {
                let (keys, vals) = update::collect_kv(root);
                keys.into_iter().zip(vals).collect()
            }
            None => Vec::new(),
        }
    }

    fn range_entries(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        match &self.root {
            Some(root) => {
                touch_node(self.obs_metrics());
                let mut entries = Vec::new();
                range::range_for_each(root, lo, hi, &mut |k: &K, v: &V| {
                    entries.push((k.clone(), v.clone()))
                });
                entries
            }
            None => Vec::new(),
        }
    }

    fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        match &self.root {
            Some(root) => {
                touch_node(self.obs_metrics());
                let mut keys = Vec::new();
                range::range_for_each(root, lo, hi, &mut |k: &K, _v: &V| keys.push(k.clone()));
                keys
            }
            None => Vec::new(),
        }
    }

    fn kth(&self, k: usize) -> Option<(K, V)> {
        match &self.root {
            Some(root) if k < root.len() => {
                touch_node(self.obs_metrics());
                let (key, val) = range::kth_entry(root, k);
                Some((key.clone(), val.clone()))
            }
            _ => None,
        }
    }
}

/// Point-op conveniences mirroring the set's `insert_one`/`remove_one`.
impl<K, V> IstMap<K, V>
where
    K: InterpolateKey + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Upserts one pair in place; `true` iff `key` was newly inserted.
    pub fn insert_one(&mut self, key: &K, val: &V) -> bool {
        let m = metrics_ref(self.obs, &self.metrics);
        match &mut self.root {
            Some(root) => update::insert_one(Arc::make_mut(root), key, val, m),
            None => {
                self.root = Some(Arc::new(Node::Leaf(LeafNode {
                    keys: vec![key.clone()],
                    vals: vec![val.clone()],
                })));
                true
            }
        }
    }

    /// Removes one pair in place; `true` iff `key` was present.
    pub fn remove_one(&mut self, key: &K) -> bool {
        let m = metrics_ref(self.obs, &self.metrics);
        let root = match &mut self.root {
            Some(root) => Arc::make_mut(root),
            None => return false,
        };
        let removed = update::remove_one(root, key, m);
        if root.is_empty() {
            self.root = None;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn oracle_pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 7 % (n * 3), i)).collect()
    }

    #[test]
    fn empty_map_answers_empty() {
        let map: IstMap<u64, u64> = IstMap::from_sorted_entries(Vec::new());
        assert!(map.is_empty());
        assert_eq!(map.get(&3), None);
        assert_eq!(map.rank(&3), 0);
        assert_eq!(map.kth(0), None);
        assert!(map
            .range_entries(Bound::Unbounded, Bound::Unbounded)
            .is_empty());
        map.check_invariants().unwrap();
    }

    #[test]
    fn map_agrees_with_btreemap_oracle() {
        let pairs = oracle_pairs(20_000);
        let oracle: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        // Last-wins: feed the raw (colliding) pairs; BTreeMap's collect is
        // also last-wins, so the two agree by construction.
        let map = IstMap::from_unsorted_entries(pairs);
        assert_eq!(map.len(), oracle.len());
        map.check_invariants().unwrap();
        for probe in (0..70_000u64).step_by(61) {
            assert_eq!(map.get(&probe), oracle.get(&probe).copied(), "get {probe}");
            assert_eq!(
                map.contains_key(&probe),
                oracle.contains_key(&probe),
                "contains {probe}"
            );
        }
        assert_eq!(map.collect_entries().len(), oracle.len());
        assert!(map
            .collect_entries()
            .iter()
            .all(|(k, v)| oracle.get(k) == Some(v)));
    }

    #[test]
    fn batched_upserts_and_removes_match_oracle() {
        let mut map = IstMap::from_unsorted_entries(oracle_pairs(5_000));
        let mut oracle: BTreeMap<u64, u64> = oracle_pairs(5_000).into_iter().collect();

        // Large upsert batch: half overwrites, half fresh keys.
        let upserts: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i * 5, i + 1_000_000)).collect();
        let batch = KvBatch::from_unsorted(upserts.clone());
        let flags = map.batch_insert_kv(&batch);
        for ((k, v), flag) in batch.iter().zip(flags.iter()) {
            assert_eq!(*flag, oracle.insert(*k, *v).is_none(), "upsert {k}");
        }
        assert_eq!(map.len(), oracle.len());
        map.check_invariants().unwrap();
        for (k, v) in batch.iter() {
            assert_eq!(map.get(k), Some(*v), "upserted value for {k}");
        }

        // batch_get over a mix of present and absent keys.
        let probes = Batch::from_unsorted((0..6_000u64).map(|i| i * 3).collect());
        let got = map.batch_get(&probes);
        for (q, g) in probes.iter().zip(got.iter()) {
            assert_eq!(*g, oracle.get(q).copied(), "batch_get {q}");
        }

        // Large removal batch, then verify against the oracle.
        let removes = Batch::from_unsorted((0..5_000u64).map(|i| i * 2).collect());
        let flags = map.batch_remove(&removes);
        for (q, flag) in removes.iter().zip(flags.iter()) {
            assert_eq!(*flag, oracle.remove(q).is_some(), "remove {q}");
        }
        assert_eq!(map.len(), oracle.len());
        map.check_invariants().unwrap();
    }

    #[test]
    fn point_paths_and_tiny_batches_upsert_in_place() {
        let mut map: IstMap<u64, &str> = IstMap::from_sorted_entries(Vec::new());
        assert!(map.insert_one(&10, &"ten"));
        assert!(!map.insert_one(&10, &"TEN"), "upsert reports not-new");
        assert_eq!(map.get(&10), Some("TEN"), "point upsert overwrote");
        // Tiny batch (≤ POINT_BATCH_LEN) routes through the point path.
        let flags = map.batch_insert_kv(&KvBatch::from_unsorted(vec![(10, "x"), (11, "y")]));
        assert_eq!(flags, vec![false, true]);
        assert_eq!(map.get(&10), Some("x"));
        assert!(map.remove_one(&10));
        assert!(!map.remove_one(&10));
        assert_eq!(map.len(), 1);
        map.check_invariants().unwrap();
        // Draining the last key collapses the root.
        assert!(map.remove_one(&11));
        assert!(map.is_empty());
    }

    #[test]
    fn range_and_selection_match_btreemap() {
        let pairs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i * 3, i)).collect();
        let oracle: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        let map = IstMap::from_sorted_entries(pairs);
        map.check_invariants().unwrap();

        let bounds: [Bound<&u64>; 5] = [
            Bound::Unbounded,
            Bound::Included(&9_000),
            Bound::Excluded(&9_000),
            Bound::Included(&9_001), // off-key
            Bound::Excluded(&89_999),
        ];
        for lo in bounds {
            for hi in bounds {
                // BTreeMap::range panics on inverted bounds and on
                // (Excluded(x), Excluded(x)); the IST returns the honest
                // answer for both — the empty range.
                let degenerate = match (lo, hi) {
                    (
                        Bound::Included(a) | Bound::Excluded(a),
                        Bound::Included(b) | Bound::Excluded(b),
                    ) => {
                        a > b
                            || (a == b
                                && matches!(lo, Bound::Excluded(_))
                                && matches!(hi, Bound::Excluded(_)))
                    }
                    _ => false,
                };
                let expected: Vec<(u64, u64)> = if degenerate {
                    Vec::new()
                } else {
                    oracle
                        .range((lo.cloned(), hi.cloned()))
                        .map(|(k, v)| (*k, *v))
                        .collect()
                };
                assert_eq!(map.range_entries(lo, hi), expected, "range {lo:?}..{hi:?}");
                assert_eq!(map.range_count(lo, hi), expected.len());
                assert_eq!(
                    map.range_keys(lo, hi),
                    expected.iter().map(|(k, _)| *k).collect::<Vec<_>>()
                );
            }
        }
        assert_eq!(map.kth(0), Some((0, 0)));
        assert_eq!(map.kth(29_999), Some((89_997, 29_999)));
        assert_eq!(map.kth(30_000), None);
        assert_eq!(map.predecessor(&0), None);
        assert_eq!(map.predecessor(&1), Some(0));
        assert_eq!(map.successor(&89_997), None);
        assert_eq!(map.successor(&89_996), Some(89_997));
        assert_eq!(map.successor(&0), Some(3));
    }

    #[test]
    fn rebuilds_preserve_values() {
        // Grow far past the rebuild factor so whole subtrees are rebuilt,
        // then check every surviving value rode along.
        let mut map = IstMap::from_sorted_entries((0..2_000u64).map(|i| (i * 2, i)).collect());
        let grow =
            KvBatch::from_unsorted((0..6_000u64).map(|i| (i * 2 + 1, i + 500_000)).collect());
        map.batch_insert_kv(&grow);
        map.check_invariants().unwrap();
        assert_eq!(map.len(), 8_000);
        for i in (0..2_000u64).step_by(97) {
            assert_eq!(map.get(&(i * 2)), Some(i));
        }
        for i in (0..6_000u64).step_by(97) {
            assert_eq!(map.get(&(i * 2 + 1)), Some(i + 500_000));
        }
    }

    #[test]
    fn clone_is_snapshot_via_cow() {
        let mut map = IstMap::from_sorted_entries((0..10_000u64).map(|i| (i, i)).collect());
        let frozen = map.clone();
        map.batch_insert_kv(&KvBatch::from_unsorted(vec![(3, 999u64)]));
        assert_eq!(map.get(&3), Some(999));
        assert_eq!(frozen.get(&3), Some(3), "clone saw a later upsert");
    }
}
