//! Algorithmic counters for the tree: how much structure an operation
//! touched, independent of wall-clock noise.
//!
//! On a small machine the paper's claims are easier to check through work
//! counts than timings: nodes touched per batch shows the joint traversal
//! sharing the upper levels, and rebuild counts/keys bound the amortised
//! restructuring cost.  Collection is off by default and enabled per set
//! via [`IstSet::with_metrics`](crate::IstSet::with_metrics); disabled, the
//! recursion carries a `None` and every site is one branch.

use std::sync::Arc;

use obs::Counter;

/// Live counters shared by every clone of one [`IstSet`](crate::IstSet)
/// (clones share the same `Arc`, so they report into one set of numbers —
/// use [`IstMetricsSnapshot::delta`] to isolate a window).
#[derive(Debug, Default)]
pub(crate) struct IstMetrics {
    /// Nodes (inner or leaf) entered by a traversal, update, or point
    /// descent.  The joint batch recursion counts each node once per
    /// operation, however many queries route through it.
    pub(crate) nodes_touched: Counter,
    /// Leaves whose key run actually changed (at least one key added or
    /// removed) — untouched and lookup-only leaves don't count.
    pub(crate) leaves_edited: Counter,
    /// Subtrees rebuilt because their size drifted past the rebuild
    /// threshold (or a leaf outgrew its capacity).
    pub(crate) rebuilds: Counter,
    /// Total keys in those rebuilt subtrees — the actual restructuring
    /// work, since a rebuild is linear in the keys it flattens.
    pub(crate) rebuild_keys: Counter,
}

impl IstMetrics {
    pub(crate) fn snapshot(&self) -> IstMetricsSnapshot {
        IstMetricsSnapshot {
            nodes_touched: self.nodes_touched.get(),
            leaves_edited: self.leaves_edited.get(),
            rebuilds: self.rebuilds.get(),
            rebuild_keys: self.rebuild_keys.get(),
        }
    }
}

/// A point-in-time copy of an [`IstSet`](crate::IstSet)'s work counters
/// ([`IstSet::metrics`](crate::IstSet::metrics)).  Counter semantics are
/// documented on the live struct's fields; all are monotone, so windows are
/// taken with [`IstMetricsSnapshot::delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IstMetricsSnapshot {
    /// Nodes entered by traversals, updates, and point descents.
    pub nodes_touched: u64,
    /// Leaves whose contents changed.
    pub leaves_edited: u64,
    /// Drift-triggered subtree rebuilds.
    pub rebuilds: u64,
    /// Total keys flattened and re-split by those rebuilds.
    pub rebuild_keys: u64,
}

impl IstMetricsSnapshot {
    /// What happened since `earlier` was taken (saturating, so snapshots
    /// from unrelated sets fail soft rather than panicking).
    pub fn delta(&self, earlier: &IstMetricsSnapshot) -> IstMetricsSnapshot {
        IstMetricsSnapshot {
            nodes_touched: self.nodes_touched.saturating_sub(earlier.nodes_touched),
            leaves_edited: self.leaves_edited.saturating_sub(earlier.leaves_edited),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
            rebuild_keys: self.rebuild_keys.saturating_sub(earlier.rebuild_keys),
        }
    }

    /// Renders the snapshot as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes_touched\": {}, \"leaves_edited\": {}, \"rebuilds\": {}, \"rebuild_keys\": {}}}",
            self.nodes_touched, self.leaves_edited, self.rebuilds, self.rebuild_keys,
        )
    }
}

/// The handle the recursions carry: `None` when the set was built without
/// metrics, so the disabled path is a single branch per site.  A shared
/// reference because update recursion forks — counters are atomics.
pub(crate) type MetricsRef<'a> = Option<&'a IstMetrics>;

/// Resolves a set's guard + handle pair into the recursion argument.
#[inline]
pub(crate) fn metrics_ref(obs: obs::Obs, metrics: &Arc<IstMetrics>) -> MetricsRef<'_> {
    if obs.is_enabled() {
        Some(metrics)
    } else {
        None
    }
}

/// Counts one node entry.
#[inline]
pub(crate) fn touch_node(m: MetricsRef<'_>) {
    if let Some(m) = m {
        m.nodes_touched.inc();
    }
}

/// Counts one edited leaf, gated on whether the edit changed anything.
#[inline]
pub(crate) fn touch_leaf_edit(m: MetricsRef<'_>, changed: bool) {
    if let Some(m) = m {
        if changed {
            m.leaves_edited.inc();
        }
    }
}

/// Counts one subtree rebuild over `keys` keys.
#[inline]
pub(crate) fn touch_rebuild(m: MetricsRef<'_>, keys: usize) {
    if let Some(m) = m {
        m.rebuilds.inc();
        m.rebuild_keys.add(keys as u64);
    }
}
