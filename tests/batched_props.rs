//! Property tests for the batched-operations API: randomized mixed batches
//! of insert/remove/contains driven against a `std::collections::BTreeSet`
//! oracle, through the same generic [`BatchedSet`] interface every backend
//! implements — outside any pool and inside a 4-worker `forkjoin::Pool`,
//! with the tree's shape invariant checked after every batch.

use std::collections::BTreeSet;

use pbist_repro::{
    baselines::SortedArraySet,
    batchapi::{Batch, BatchedSet},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, OpKind},
};

/// Applies `ops` to `set` and a fresh oracle, checking per-element flags and
/// aggregate state (`len`, `min`/`max`, spot-checked `rank`) after every
/// batch; `audit` runs backend-specific checks (the tree's shape invariant).
fn drive_against_oracle<S>(set: &mut S, ops: &[workloads::OpBatch], audit: impl Fn(&S))
where
    S: BatchedSet<u64>,
{
    let mut oracle = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        let batch = Batch::from_unsorted(op.keys.clone());
        let flags = match op.kind {
            OpKind::Insert => set.batch_insert(&batch),
            OpKind::Remove => set.batch_remove(&batch),
            OpKind::Contains => set.batch_contains(&batch),
        };
        let expected: Vec<bool> = batch
            .iter()
            .map(|k| match op.kind {
                OpKind::Insert => oracle.insert(*k),
                OpKind::Remove => oracle.remove(k),
                OpKind::Contains => oracle.contains(k),
            })
            .collect();
        assert_eq!(flags, expected, "step {step}: {:?} flags diverged", op.kind);
        assert_eq!(set.len(), oracle.len(), "step {step}: len diverged");
        assert_eq!(set.is_empty(), oracle.is_empty());
        assert_eq!(set.min(), oracle.first(), "step {step}: min diverged");
        assert_eq!(set.max(), oracle.last(), "step {step}: max diverged");
        for probe in batch.iter().step_by(97).chain([0, u64::MAX].iter()) {
            assert_eq!(
                set.rank(probe),
                oracle.range(..probe).count(),
                "step {step}: rank of {probe} diverged"
            );
            assert_eq!(set.contains(probe), oracle.contains(probe));
        }
        audit(set);
    }
    assert!(!oracle.is_empty(), "workload never populated the set");
}

fn mixed_ops(seed: u64) -> Vec<workloads::OpBatch> {
    // Narrow key range so inserts and removes collide often; batch sizes
    // large enough that pooled runs genuinely fork.
    workloads::mixed_op_batches(seed, 25, 3_000, 0..40_000, (3, 2, 2))
}

fn zipf_ops(seed: u64) -> Vec<workloads::OpBatch> {
    let universe = workloads::uniform_keys_distinct(seed, 5_000, 0..1_000_000);
    workloads::mixed_op_batches_zipf(seed, 20, 2_000, &universe, 0.9, (2, 2, 1))
}

#[test]
fn ist_set_matches_oracle_outside_pool() {
    for seed in [1, 2, 3] {
        let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        drive_against_oracle(&mut set, &mixed_ops(seed), |s| {
            s.check_invariants().unwrap()
        });
    }
}

#[test]
fn ist_set_matches_oracle_inside_pool() {
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        for seed in [4, 5] {
            let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
            drive_against_oracle(&mut set, &mixed_ops(seed), |s| {
                s.check_invariants().unwrap()
            });
        }
    });
}

#[test]
fn ist_set_matches_oracle_on_zipf_traffic() {
    let ops = zipf_ops(6);
    let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
    drive_against_oracle(&mut set, &ops, |s| s.check_invariants().unwrap());
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        drive_against_oracle(&mut set, &ops, |s| s.check_invariants().unwrap());
    });
}

#[test]
fn sorted_array_matches_oracle_outside_pool() {
    for seed in [1, 7] {
        let mut set: SortedArraySet<u64> = SortedArraySet::default();
        drive_against_oracle(&mut set, &mixed_ops(seed), |_| {});
    }
}

#[test]
fn sorted_array_matches_oracle_inside_pool() {
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        let mut set: SortedArraySet<u64> = SortedArraySet::default();
        drive_against_oracle(&mut set, &mixed_ops(8), |_| {});
    });
}

#[test]
fn tree_starting_full_survives_heavy_removal() {
    // Start from a built tree and hammer it with remove-heavy traffic so
    // subtree pruning, hoisting, and shrink-rebuilds all trigger.
    let keys = workloads::uniform_keys_distinct(9, 30_000, 0..100_000);
    let mut set = IstSet::from_unsorted(keys.clone());
    let mut oracle: BTreeSet<u64> = keys.into_iter().collect();
    let ops = workloads::mixed_op_batches(10, 30, 2_500, 0..100_000, (1, 6, 1));
    for op in &ops {
        let batch = Batch::from_unsorted(op.keys.clone());
        let flags = match op.kind {
            OpKind::Insert => set.batch_insert(&batch),
            OpKind::Remove => set.batch_remove(&batch),
            OpKind::Contains => set.batch_contains(&batch),
        };
        let expected: Vec<bool> = batch
            .iter()
            .map(|k| match op.kind {
                OpKind::Insert => oracle.insert(*k),
                OpKind::Remove => oracle.remove(k),
                OpKind::Contains => oracle.contains(k),
            })
            .collect();
        assert_eq!(flags, expected);
        assert_eq!(set.len(), oracle.len());
        set.check_invariants().unwrap();
    }
}
