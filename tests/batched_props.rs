//! Property tests for the batched-operations API: randomized mixed batches
//! of insert/remove/contains driven against a `std::collections::BTreeSet`
//! oracle, through the same generic [`BatchedSet`] interface every backend
//! implements — outside any pool and inside a 4-worker `forkjoin::Pool`,
//! with the tree's shape invariant checked after every batch.
//!
//! Every assertion carries the active seed (via the `ctx` string) so a CI
//! failure replays directly instead of bisecting seed lists.

use std::collections::BTreeSet;

use pbist_repro::{
    baselines::SortedArraySet,
    batchapi::{Batch, BatchedSet},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, OpKind},
};

/// Applies `ops` to `set` and a fresh oracle, checking per-element flags and
/// aggregate state (`len`, `min`/`max`, spot-checked `rank`) after every
/// batch; `audit` runs backend-specific checks (the tree's shape invariant).
/// `ctx` (the active seed and configuration) prefixes every failure message.
fn drive_against_oracle<S>(ctx: &str, set: &mut S, ops: &[workloads::OpBatch], audit: impl Fn(&S))
where
    S: BatchedSet<u64>,
{
    let mut oracle = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        let batch = Batch::from_unsorted(op.keys.clone());
        let flags = match op.kind {
            OpKind::Insert => set.batch_insert(&batch),
            OpKind::Remove => set.batch_remove(&batch),
            OpKind::Contains => set.batch_contains(&batch),
        };
        let expected: Vec<bool> = batch
            .iter()
            .map(|k| match op.kind {
                OpKind::Insert => oracle.insert(*k),
                OpKind::Remove => oracle.remove(k),
                OpKind::Contains => oracle.contains(k),
            })
            .collect();
        assert_eq!(
            flags, expected,
            "{ctx}: step {step}: {:?} flags diverged",
            op.kind
        );
        assert_eq!(set.len(), oracle.len(), "{ctx}: step {step}: len diverged");
        assert_eq!(set.is_empty(), oracle.is_empty(), "{ctx}: step {step}");
        assert_eq!(
            set.min(),
            oracle.first(),
            "{ctx}: step {step}: min diverged"
        );
        assert_eq!(set.max(), oracle.last(), "{ctx}: step {step}: max diverged");
        for probe in batch.iter().step_by(97).chain([0, u64::MAX].iter()) {
            assert_eq!(
                set.rank(probe),
                oracle.range(..probe).count(),
                "{ctx}: step {step}: rank of {probe} diverged"
            );
            assert_eq!(
                set.contains(probe),
                oracle.contains(probe),
                "{ctx}: step {step}: contains({probe}) diverged"
            );
        }
        audit(set);
    }
    assert!(
        !oracle.is_empty(),
        "{ctx}: workload never populated the set"
    );
}

fn mixed_ops(seed: u64) -> Vec<workloads::OpBatch> {
    // Narrow key range so inserts and removes collide often; batch sizes
    // large enough that pooled runs genuinely fork.
    workloads::mixed_op_batches(seed, 25, 3_000, 0..40_000, (3, 2, 2))
}

fn zipf_ops(seed: u64) -> Vec<workloads::OpBatch> {
    let universe = workloads::uniform_keys_distinct(seed, 5_000, 0..1_000_000);
    workloads::mixed_op_batches_zipf(seed, 20, 2_000, &universe, 0.9, (2, 2, 1))
}

#[test]
fn ist_set_matches_oracle_outside_pool() {
    for seed in [1, 2, 3] {
        let ctx = format!("seed {seed}, outside pool");
        let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        drive_against_oracle(&ctx, &mut set, &mixed_ops(seed), |s| {
            s.check_invariants()
                .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"))
        });
    }
}

#[test]
fn ist_set_matches_oracle_inside_pool() {
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        for seed in [4, 5] {
            let ctx = format!("seed {seed}, 4-worker pool");
            let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
            drive_against_oracle(&ctx, &mut set, &mixed_ops(seed), |s| {
                s.check_invariants()
                    .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"))
            });
        }
    });
}

#[test]
fn ist_set_matches_oracle_on_zipf_traffic() {
    let seed = 6;
    let ops = zipf_ops(seed);
    let ctx = format!("seed {seed}, zipf, outside pool");
    let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
    drive_against_oracle(&ctx, &mut set, &ops, |s| {
        s.check_invariants()
            .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"))
    });
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        let ctx = format!("seed {seed}, zipf, 4-worker pool");
        let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
        drive_against_oracle(&ctx, &mut set, &ops, |s| {
            s.check_invariants()
                .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"))
        });
    });
}

#[test]
fn sorted_array_matches_oracle_outside_pool() {
    for seed in [1, 7] {
        let ctx = format!("seed {seed}, outside pool");
        let mut set: SortedArraySet<u64> = SortedArraySet::default();
        drive_against_oracle(&ctx, &mut set, &mixed_ops(seed), |_| {});
    }
}

#[test]
fn sorted_array_matches_oracle_inside_pool() {
    let pool = Pool::new(4).unwrap();
    pool.install(|| {
        let seed = 8;
        let ctx = format!("seed {seed}, 4-worker pool");
        let mut set: SortedArraySet<u64> = SortedArraySet::default();
        drive_against_oracle(&ctx, &mut set, &mixed_ops(seed), |_| {});
    });
}

#[test]
fn tree_starting_full_survives_heavy_removal() {
    // Start from a built tree and hammer it with remove-heavy traffic so
    // subtree pruning, hoisting, and shrink-rebuilds all trigger.
    let seed = 9;
    let ctx = format!("seed {seed}, remove-heavy");
    let keys = workloads::uniform_keys_distinct(seed, 30_000, 0..100_000);
    let mut set = IstSet::from_unsorted(keys.clone());
    let mut oracle: BTreeSet<u64> = keys.into_iter().collect();
    let ops = workloads::mixed_op_batches(10, 30, 2_500, 0..100_000, (1, 6, 1));
    for (step, op) in ops.iter().enumerate() {
        let batch = Batch::from_unsorted(op.keys.clone());
        let flags = match op.kind {
            OpKind::Insert => set.batch_insert(&batch),
            OpKind::Remove => set.batch_remove(&batch),
            OpKind::Contains => set.batch_contains(&batch),
        };
        let expected: Vec<bool> = batch
            .iter()
            .map(|k| match op.kind {
                OpKind::Insert => oracle.insert(*k),
                OpKind::Remove => oracle.remove(k),
                OpKind::Contains => oracle.contains(k),
            })
            .collect();
        assert_eq!(flags, expected, "{ctx}: step {step}");
        assert_eq!(set.len(), oracle.len(), "{ctx}: step {step}");
        set.check_invariants()
            .unwrap_or_else(|e| panic!("{ctx}: step {step}: {e}"));
    }
}

/// Long-churn soak: 2,000 small zipf-keyed batches with a remove-heavy tail
/// that drains the tree to near-empty and then refills it.  Small batches
/// under sustained drift are what exercise the factor-2 rebuild threshold
/// over and over (single leaves outgrowing capacity, subtrees shrinking
/// past `built_len / 2`, the root collapsing and reviving) — shapes the
/// bulk-batch tests above never sit in for long.
#[test]
fn long_churn_soak_pins_rebuild_threshold_behavior() {
    let seed = 11;
    let ctx = format!("seed {seed}, soak");
    let universe = workloads::uniform_keys_distinct(seed, 4_000, 0..10_000_000);

    // Four phases over 2,000 batches: grow (insert-leaning), churn
    // (balanced), drain (remove-heavy with a flat skew, so removals cover
    // the whole universe and actually empty the set rather than re-hitting
    // dead hot keys), refill (insert-heavy again).
    let phases: [(usize, f64, workloads::OpMix); 4] = [
        (600, 0.9, (5, 1, 1)),
        (500, 0.9, (2, 2, 1)),
        (700, 0.2, (1, 12, 1)),
        (200, 0.9, (6, 1, 1)),
    ];
    let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let mut step = 0usize;
    let mut min_after_drain = usize::MAX;
    for (phase, (batches, theta, mix)) in phases.iter().enumerate() {
        let ops = workloads::mixed_op_batches_zipf(
            seed.wrapping_add(phase as u64),
            *batches,
            32,
            &universe,
            *theta,
            *mix,
        );
        for op in &ops {
            let batch = Batch::from_unsorted(op.keys.clone());
            let flags = match op.kind {
                OpKind::Insert => set.batch_insert(&batch),
                OpKind::Remove => set.batch_remove(&batch),
                OpKind::Contains => set.batch_contains(&batch),
            };
            let expected: Vec<bool> = batch
                .iter()
                .map(|k| match op.kind {
                    OpKind::Insert => oracle.insert(*k),
                    OpKind::Remove => oracle.remove(k),
                    OpKind::Contains => oracle.contains(k),
                })
                .collect();
            assert_eq!(
                flags, expected,
                "{ctx}: phase {phase}, step {step}: {:?} flags diverged",
                op.kind
            );
            assert_eq!(
                set.len(),
                oracle.len(),
                "{ctx}: phase {phase}, step {step}: len diverged"
            );
            // A full-shape audit every batch would dominate the runtime;
            // every 50 batches still catches drift within one phase.
            if step.is_multiple_of(50) {
                set.check_invariants()
                    .unwrap_or_else(|e| panic!("{ctx}: phase {phase}, step {step}: {e}"));
            }
            if phase == 2 {
                min_after_drain = min_after_drain.min(set.len());
            }
            step += 1;
        }
        set.check_invariants()
            .unwrap_or_else(|e| panic!("{ctx}: end of phase {phase}: {e}"));
    }
    assert_eq!(step, 2_000, "{ctx}: batch count");
    // The drain phase must actually have pulled the set to near-empty —
    // otherwise the shrink-rebuild/prune/hoist paths were never really
    // under sustained test.
    assert!(
        min_after_drain < 300,
        "{ctx}: drain phase never got near empty (min {min_after_drain})"
    );
    // And the refill phase must have grown a consistent tree back.
    assert!(
        set.len() > min_after_drain && set.len() > 500,
        "{ctx}: refill did not rebuild the set (min {min_after_drain}, final {})",
        set.len()
    );
}
