//! Cross-shard linearizability stress suite for the sharded service tier.
//!
//! N point-op clients and M batch clients hammer a `service::ShardedSet`
//! whose shards log every committed round.  Afterwards the test replays
//! **each shard's log independently** against a `BTreeSet` oracle
//! restricted to that shard's key range and demands that
//!
//! 1. every key a shard committed actually routes to that shard (the
//!    router's assignment is total and the tier never mis-delivers),
//! 2. every per-op result in a shard's log matches the sequential replay
//!    of that shard's rounds — the committed order is a valid
//!    linearisation *per shard*, which is exactly the contract the tier
//!    documents (there is no cross-shard ordering guarantee to test),
//! 3. the multiset of `(kind, key, result)` triples the clients observed
//!    (batch results flattened to per-key triples) equals the union of the
//!    shard logs — every client op appears on exactly one shard, once,
//!    with the result its client saw, and
//! 4. each shard's final contents equal its oracle with tree invariants
//!    intact, so the union of shard contents equals the union of the
//!    per-shard sequential oracles.
//!
//! A separate set of tests drives a panicking backend through one shard
//! and asserts the poison propagates to the tier: the bombing client
//! observes the backend panic, clients on *other* shards either complete
//! or observe the tier-level poison, and nothing hangs.
//!
//! Every failure message carries the active seed and configuration so CI
//! failures replay without bisecting.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use pbist_repro::{
    baselines::SortedArraySet,
    batchapi::{Batch, BatchedSet},
    combine::{ConcurrentSet, OpKind as CombinedOp, Options},
    forkjoin::Pool,
    pbist::IstSet,
    service::{HashRouter, RangeRouter, ShardRouter, ShardedOptions, ShardedSet},
    workloads::{self, ClientTrace, OpKind},
};

/// One batch client's script: pre-validated batches, so observed result
/// vectors align index-for-index with batch keys when tallying.
type BatchScript = Vec<(OpKind, Batch<u64>)>;

fn to_script(ops: Vec<workloads::OpBatch>) -> BatchScript {
    ops.into_iter()
        .map(|op| (op.kind, Batch::from_unsorted(op.keys)))
        .collect()
}

fn to_combined(kind: OpKind) -> CombinedOp {
    match kind {
        OpKind::Insert => CombinedOp::Insert,
        OpKind::Remove => CombinedOp::Remove,
        OpKind::Contains => CombinedOp::Contains,
    }
}

/// Drives point traces and batch scripts concurrently through a logged
/// sharded tier seeded with `initial`, then runs the four checks above.
#[allow(clippy::too_many_arguments)]
fn drive_and_verify_sharded<R>(
    ctx: &str,
    router: R,
    shard_pool_threads: usize,
    pool_cutoff: usize,
    tier_pool_threads: usize,
    parallel_cutoff: usize,
    initial: &[u64],
    traces: &[ClientTrace],
    scripts: &[BatchScript],
) where
    R: ShardRouter<u64> + Send + Sync + Clone,
{
    let num_shards = router.num_shards();
    let mut per_shard_initial: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for &key in initial {
        per_shard_initial[router.shard_of(&key)].push(key);
    }
    let shards = per_shard_initial
        .iter()
        .map(|keys| {
            ConcurrentSet::with_options(
                IstSet::from_unsorted(keys.clone()),
                Pool::new(shard_pool_threads).unwrap_or_else(|e| panic!("{ctx}: shard pool: {e}")),
                Options {
                    pool_cutoff,
                    log_rounds: true,
                    // The replay checks demand every op — contains included —
                    // in the shard logs, so the wait-free snapshot read path
                    // is pinned off.  The staleness-contract test below
                    // covers the snapshot path.
                    snapshot_reads: false,
                    ..Options::default()
                },
            )
        })
        .collect();
    let set = Arc::new(ShardedSet::with_options(
        router.clone(),
        shards,
        Pool::new(tier_pool_threads).unwrap_or_else(|e| panic!("{ctx}: tier pool: {e}")),
        ShardedOptions { parallel_cutoff },
    ));

    let (point_results, batch_results): (Vec<Vec<bool>>, Vec<Vec<Vec<bool>>>) =
        thread::scope(|s| {
            let point_handles: Vec<_> = traces
                .iter()
                .map(|trace| {
                    let set = Arc::clone(&set);
                    s.spawn(move || {
                        trace
                            .iter()
                            .map(|(kind, key)| match kind {
                                OpKind::Insert => set.insert(*key),
                                OpKind::Remove => set.remove(key),
                                OpKind::Contains => set.contains(key),
                            })
                            .collect::<Vec<bool>>()
                    })
                })
                .collect();
            let batch_handles: Vec<_> = scripts
                .iter()
                .map(|script| {
                    let set = Arc::clone(&set);
                    s.spawn(move || {
                        script
                            .iter()
                            .map(|(kind, batch)| match kind {
                                OpKind::Insert => set.batch_insert(batch),
                                OpKind::Remove => set.batch_remove(batch),
                                OpKind::Contains => set.batch_contains(batch),
                            })
                            .collect::<Vec<Vec<bool>>>()
                    })
                })
                .collect();
            (
                point_handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect(),
                batch_handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect(),
            )
        });

    let shard_rounds = set.take_shard_rounds();
    let point_ops: usize = traces.iter().map(Vec::len).sum();
    let batch_keys: usize = scripts
        .iter()
        .flat_map(|script| script.iter().map(|(_, batch)| batch.len()))
        .sum();
    assert_eq!(
        shard_rounds
            .iter()
            .flat_map(|rounds| rounds.iter().map(|r| r.ops.len()))
            .sum::<usize>(),
        point_ops + batch_keys,
        "{ctx}: logged op count across shards"
    );

    // Checks 1 + 2: per-shard routing invariant and linearisation replay.
    let mut oracles: Vec<BTreeSet<u64>> = per_shard_initial
        .iter()
        .map(|keys| keys.iter().copied().collect())
        .collect();
    for (shard, rounds) in shard_rounds.iter().enumerate() {
        for (r, round) in rounds.iter().enumerate() {
            for op in &round.ops {
                assert_eq!(
                    router.shard_of(&op.key),
                    shard,
                    "{ctx}: shard {shard} committed key {} owned by shard {}",
                    op.key,
                    router.shard_of(&op.key)
                );
                let expect = match op.kind {
                    CombinedOp::Insert => oracles[shard].insert(op.key),
                    CombinedOp::Remove => oracles[shard].remove(&op.key),
                    CombinedOp::Contains => oracles[shard].contains(&op.key),
                };
                assert_eq!(
                    op.result, expect,
                    "{ctx}: shard {shard}, round {r}, op {op:?}"
                );
            }
        }
    }

    // Check 3: clients observed exactly the union of the shard logs.
    let mut tally: HashMap<(CombinedOp, u64, bool), i64> = HashMap::new();
    for (trace, results) in traces.iter().zip(&point_results) {
        assert_eq!(
            results.len(),
            trace.len(),
            "{ctx}: point client result count"
        );
        for ((kind, key), &result) in trace.iter().zip(results) {
            *tally.entry((to_combined(*kind), *key, result)).or_insert(0) += 1;
        }
    }
    for (script, results) in scripts.iter().zip(&batch_results) {
        assert_eq!(results.len(), script.len(), "{ctx}: batch client op count");
        for ((kind, batch), flags) in script.iter().zip(results) {
            assert_eq!(flags.len(), batch.len(), "{ctx}: batch result width");
            for (key, &flag) in batch.as_slice().iter().zip(flags) {
                *tally.entry((to_combined(*kind), *key, flag)).or_insert(0) += 1;
            }
        }
    }
    for rounds in &shard_rounds {
        for round in rounds {
            for op in &round.ops {
                *tally.entry((op.kind, op.key, op.result)).or_insert(0) -= 1;
            }
        }
    }
    if let Some((entry, count)) = tally.iter().find(|(_, &c)| c != 0) {
        panic!("{ctx}: client/log multiset mismatch at {entry:?} (excess {count})");
    }

    // Check 4: per-shard final contents match the per-shard oracles, so
    // the union of shard contents is the union of the oracles.
    assert!(!set.is_poisoned(), "{ctx}: tier poisoned by healthy run");
    let backings = Arc::try_unwrap(set)
        .unwrap_or_else(|_| panic!("{ctx}: client Arc leaked"))
        .into_shards();
    let mut union_len = 0usize;
    for (shard, backing) in backings.into_iter().enumerate() {
        let tree = backing.into_inner();
        tree.check_invariants()
            .unwrap_or_else(|e| panic!("{ctx}: shard {shard} invariants: {e}"));
        let oracle = &oracles[shard];
        assert_eq!(tree.len(), oracle.len(), "{ctx}: shard {shard} final len");
        union_len += tree.len();
        if !oracle.is_empty() {
            let present = Batch::from_unsorted(oracle.iter().copied().collect());
            assert!(
                tree.batch_contains(&present).iter().all(|&hit| hit),
                "{ctx}: shard {shard} lost an oracle key"
            );
        }
        let absent = Batch::from_unsorted(
            (0..500u64)
                .map(|i| i * 41)
                .filter(|k| !oracle.contains(k))
                .collect(),
        );
        assert!(
            !tree.batch_contains(&absent).iter().any(|&hit| hit),
            "{ctx}: shard {shard} holds a key its oracle does not"
        );
    }
    assert_eq!(
        union_len,
        oracles.iter().map(BTreeSet::len).sum::<usize>(),
        "{ctx}: union of shard contents"
    );
}

/// Uniform point + batch traffic across shard counts 1–8 over a range
/// router; per-shard linearizability must hold at every width.
#[test]
fn shard_counts_one_through_eight_linearize_per_shard() {
    for num_shards in [1usize, 2, 3, 4, 8] {
        let seed = 0x5EED ^ num_shards as u64;
        let initial = workloads::uniform_keys_distinct(seed, 400, 0..4_000);
        let traces = workloads::client_traces(seed, 3, 800, 0..4_000, (3, 2, 2));
        let scripts: Vec<BatchScript> = (0..2)
            .map(|c| {
                to_script(workloads::mixed_op_batches(
                    seed ^ c,
                    25,
                    48,
                    0..4_000,
                    (2, 2, 1),
                ))
            })
            .collect();
        let ctx = format!("seed {seed}, {num_shards} shards, range router");
        drive_and_verify_sharded(
            &ctx,
            RangeRouter::new(num_shards, 0, 4_000),
            1,
            Options::default().pool_cutoff,
            2,
            64,
            &initial,
            &traces,
            &scripts,
        );
    }
}

/// Zipf hot-key traffic: most ops hammer a few keys of one shard, the
/// worst case for both duplicate resolution inside a shard round and
/// skewed sub-batch splits at the tier.
#[test]
fn zipf_hot_key_traffic_linearizes_across_shards() {
    let seed = 0x21AF;
    let universe = workloads::uniform_keys_distinct(seed, 300, 0..1_000_000);
    let initial: Vec<u64> = universe[..120].to_vec();
    let traces = workloads::client_traces_zipf(seed, 4, 600, &universe, 0.99, (2, 2, 1));
    let scripts: Vec<BatchScript> = (0..2)
        .map(|c| {
            to_script(workloads::mixed_op_batches_zipf(
                seed ^ c,
                20,
                40,
                &universe,
                0.99,
                (2, 2, 1),
            ))
        })
        .collect();
    let ctx = format!("seed {seed}, 4 shards, zipf 0.99");
    drive_and_verify_sharded(
        &ctx,
        RangeRouter::new(4, 0, 1_000_000),
        2,
        Options::default().pool_cutoff,
        2,
        64,
        &initial,
        &traces,
        &scripts,
    );
}

/// Hash-routed tier: the scatter split/stitch path under concurrency.
#[test]
fn hash_router_linearizes_per_shard() {
    let seed = 0xCAFE;
    let initial = workloads::uniform_keys_distinct(seed, 300, 0..3_000);
    let traces = workloads::client_traces(seed, 3, 600, 0..3_000, (3, 2, 2));
    let scripts = vec![to_script(workloads::mixed_op_batches(
        seed,
        25,
        48,
        0..3_000,
        (2, 2, 1),
    ))];
    let ctx = format!("seed {seed}, 4 shards, hash router");
    drive_and_verify_sharded(
        &ctx,
        HashRouter::new(4),
        1,
        Options::default().pool_cutoff,
        2,
        64,
        &initial,
        &traces,
        &scripts,
    );
}

/// Everything forced through every pool with a single worker each:
/// `pool_cutoff: 0` sends each shard round through that shard's 1-worker
/// pool, `parallel_cutoff: 0` sends every split batch through the
/// 1-worker tier pool.  The configuration where any blocking bug between
/// the tier pool and the shard combiners becomes a deadlock instead of a
/// slowdown.
#[test]
fn one_worker_pools_with_forced_parallel_splits() {
    let seed = 0x1DEA;
    let initial = workloads::uniform_keys_distinct(seed, 200, 0..2_000);
    let traces = workloads::client_traces(seed, 2, 300, 0..2_000, (3, 2, 2));
    let scripts: Vec<BatchScript> = (0..2)
        .map(|c| {
            to_script(workloads::mixed_op_batches(
                seed ^ c,
                15,
                32,
                0..2_000,
                (2, 2, 1),
            ))
        })
        .collect();
    let ctx = format!("seed {seed}, 4 shards, 1-worker pools, all cutoffs 0");
    drive_and_verify_sharded(
        &ctx,
        RangeRouter::new(4, 0, 2_000),
        1,
        0,
        1,
        0,
        &initial,
        &traces,
        &scripts,
    );
}

// ---------------------------------------------------------------------
// Poison propagation
// ---------------------------------------------------------------------

/// A backend that panics when asked to insert `u64::MAX` — the mid-round
/// backend failure the poisoning contract is about.
struct BombSet {
    inner: SortedArraySet<u64>,
}

impl BombSet {
    fn new() -> BombSet {
        BombSet {
            inner: SortedArraySet::from_unsorted(Vec::new()),
        }
    }
}

impl BatchedSet<u64> for BombSet {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn contains(&self, key: &u64) -> bool {
        BatchedSet::contains(&self.inner, key)
    }
    fn rank(&self, key: &u64) -> usize {
        BatchedSet::rank(&self.inner, key)
    }
    fn min(&self) -> Option<&u64> {
        BatchedSet::min(&self.inner)
    }
    fn max(&self) -> Option<&u64> {
        BatchedSet::max(&self.inner)
    }
    fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
        self.inner.batch_contains(batch)
    }
    fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
        assert!(
            !batch.as_slice().contains(&u64::MAX),
            "BombSet: backend blew up mid-round"
        );
        self.inner.batch_insert(batch)
    }
    fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
        self.inner.batch_remove(batch)
    }
    fn collect_keys(&self) -> Vec<u64> {
        self.inner.collect_keys()
    }
}

/// Builds a 4-shard bomb-backed tier over `[0, 8_000]`; `u64::MAX` clamps
/// into the top shard, so shards 0–2 never see the bomb key.
fn bomb_tier(parallel_cutoff: usize) -> ShardedSet<u64, BombSet, RangeRouter<u64>> {
    ShardedSet::with_options(
        RangeRouter::new(4, 0, 8_000),
        (0..4)
            .map(|_| ConcurrentSet::new(BombSet::new(), Pool::new(1).unwrap()))
            .collect(),
        Pool::new(2).unwrap(),
        ShardedOptions { parallel_cutoff },
    )
}

/// A panic in one shard's backend poisons the tier; clients pinned to
/// *other* shards complete or observe the tier poison — and every thread
/// joins (the test finishing at all is the no-hang assertion).
#[test]
fn backend_panic_in_one_shard_poisons_tier_without_hanging() {
    let set = Arc::new(bomb_tier(0));
    let bombed = thread::scope(|s| {
        // Victims hammer shards 0–2 (keys < 6_000) until they finish their
        // script or observe a poison panic.
        let victims: Vec<_> = (0..3u64)
            .map(|v| {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let mut poisoned_at = None;
                    for i in 0..3_000u64 {
                        let key = (v * 1_777 + i * 13) % 5_900;
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if i % 3 == 0 {
                                set.insert(key)
                            } else {
                                set.contains(&key)
                            }
                        }));
                        if result.is_err() {
                            poisoned_at = Some(i);
                            break;
                        }
                    }
                    poisoned_at
                })
            })
            .collect();
        // The bomber lets the victims get going, then detonates shard 3
        // through the point path (which routes through `batch_insert`).
        let bomber = {
            let set = Arc::clone(&set);
            s.spawn(move || {
                for _ in 0..64 {
                    if catch_unwind(AssertUnwindSafe(|| set.insert(7_500))).is_err() {
                        return false;
                    }
                }
                catch_unwind(AssertUnwindSafe(|| set.insert(u64::MAX))).is_err()
            })
        };
        for victim in victims {
            // Completing or stopping at a poison panic are both fine;
            // joining at all is the property under test.
            let _ = victim.join().unwrap();
        }
        bomber.join().unwrap()
    });
    assert!(bombed, "the bomb insert must panic");
    assert!(set.is_poisoned(), "tier must observe the shard poison");
    let err = catch_unwind(AssertUnwindSafe(|| set.contains(&5))).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("poisoned"),
        "fresh ops must fail fast with a poison panic, got: {msg:?}"
    );
    assert!(
        set.metrics().counter("service.poisoned").unwrap_or(0) >= 1,
        "tier must count the observed poisoning"
    );
}

/// Regression: a shard poisoned *before* the tier ever observes a panic
/// through its own guards (here: poisoned before the tier is even built)
/// used to kill read entry points with the shard's own poison message
/// while `is_poisoned()` already reported the tier state.  Every read
/// entry point must fail fast with the *tier-level* poison error — and
/// the failed read promotes the shard poison into the tier flag.
#[test]
fn reads_fail_fast_with_the_tier_poison_when_a_shard_is_pre_poisoned() {
    // Detonate a lone shard first, outside any tier guard.
    let bombed = ConcurrentSet::new(BombSet::new(), Pool::new(1).unwrap());
    assert!(
        catch_unwind(AssertUnwindSafe(|| bombed.insert(u64::MAX))).is_err(),
        "the bomb insert must panic"
    );
    assert!(bombed.is_poisoned(), "shard must be poisoned");

    let mut shards: Vec<_> = (0..3)
        .map(|_| ConcurrentSet::new(BombSet::new(), Pool::new(1).unwrap()))
        .collect();
    shards.push(bombed);
    let set = ShardedSet::with_options(
        RangeRouter::new(4, 0, 8_000),
        shards,
        Pool::new(2).unwrap(),
        ShardedOptions { parallel_cutoff: 0 },
    );
    assert!(
        set.is_poisoned(),
        "the health probe must see the shard poison"
    );

    let healthy_batch = Batch::from_unsorted(vec![10u64, 2_100, 4_100]);
    type Read<'a> = Box<dyn Fn() + 'a>;
    let reads: Vec<(&str, Read<'_>)> = vec![
        (
            "contains",
            Box::new(|| {
                set.contains(&5);
            }),
        ),
        (
            "len",
            Box::new(|| {
                set.len();
            }),
        ),
        (
            "is_empty",
            Box::new(|| {
                set.is_empty();
            }),
        ),
        (
            "batch_contains",
            Box::new(|| {
                set.batch_contains(&healthy_batch);
            }),
        ),
    ];
    for (name, read) in reads {
        let err = catch_unwind(AssertUnwindSafe(read))
            .err()
            .unwrap_or_else(|| panic!("{name} must fail fast on a pre-poisoned shard"));
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.starts_with("ShardedSet is poisoned"),
            "{name} must raise the tier-level poison error, got: {msg:?}"
        );
    }
    assert!(
        set.metrics().counter("service.poisoned").unwrap_or(0) >= 1,
        "the failed reads must promote the shard poison to tier level"
    );
}

/// Staleness contract at the tier: clients write disjoint key spaces, and
/// every wait-free read — the point path and the all-read batched path —
/// must observe the client's own acknowledged writes (the shard snapshot
/// is published before the write is acknowledged, so a client can never
/// read past its own last write going *backwards*).
#[test]
fn tier_snapshot_reads_observe_the_clients_own_writes() {
    let set = Arc::new(ShardedSet::with_options(
        RangeRouter::new(4, 0, 4_000_000),
        (0..4)
            .map(|_| ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), Pool::new(1).unwrap()))
            .collect(),
        Pool::new(2).unwrap(),
        ShardedOptions {
            parallel_cutoff: 64,
        },
    ));
    let span = 89u64; // keys per client space, so writes revisit keys
    thread::scope(|s| {
        for c in 0..4u64 {
            let set = Arc::clone(&set);
            s.spawn(move || {
                let mut mine = BTreeSet::new();
                for i in 0..400u64 {
                    let key = c * 1_000_000 + (i % span);
                    let insert = i % 3 != 2;
                    if insert {
                        set.insert(key);
                        mine.insert(key);
                    } else {
                        set.remove(&key);
                        mine.remove(&key);
                    }
                    // Read-your-writes through the tier point path: nobody
                    // else touches this key, so the snapshot the read lands
                    // on must already hold this client's write.
                    assert_eq!(
                        set.contains(&key),
                        insert,
                        "client {c} step {i}: read of own write went stale"
                    );
                    if i % 16 == 7 {
                        // The all-read batched path (bypasses the tier
                        // pool): membership of the client's whole space
                        // must match its local oracle exactly.
                        let space =
                            Batch::from_unsorted((0..span).map(|r| c * 1_000_000 + r).collect());
                        let flags = set.batch_contains(&space);
                        for (k, &flag) in space.as_slice().iter().zip(&flags) {
                            assert_eq!(
                                flag,
                                mine.contains(k),
                                "client {c} step {i}: batched read of key {k} diverged"
                            );
                        }
                    }
                }
            });
        }
    });
    // The reads really took the snapshot path on every shard.
    for (shard, metrics) in set.shard_metrics().iter().enumerate() {
        assert!(
            metrics.counter("combine.snapshot_reads").unwrap_or(0) > 0,
            "shard {shard} answered no reads from its snapshot"
        );
    }
}

/// A tier-level batch containing the bomb key panics the issuing client
/// and poisons the tier — on both the sequential and the parallel
/// split-execution paths.
#[test]
fn batch_containing_bomb_key_poisons_tier() {
    for parallel_cutoff in [0usize, usize::MAX] {
        let set = bomb_tier(parallel_cutoff);
        let healthy = Batch::from_unsorted(vec![10u64, 2_100, 4_100, 6_100]);
        assert_eq!(set.batch_insert(&healthy), vec![true; 4]);
        let bomb = Batch::from_unsorted(vec![20u64, 2_200, u64::MAX]);
        let err = catch_unwind(AssertUnwindSafe(|| set.batch_insert(&bomb)));
        assert!(
            err.is_err(),
            "bomb batch must panic (cutoff {parallel_cutoff})"
        );
        assert!(
            set.is_poisoned(),
            "tier must be poisoned after a bomb batch (cutoff {parallel_cutoff})"
        );
        let follow_up = catch_unwind(AssertUnwindSafe(|| set.batch_contains(&healthy)));
        assert!(
            follow_up.is_err(),
            "post-poison batches must fail fast (cutoff {parallel_cutoff})"
        );
    }
}

/// Pins `ShardedSet::len`'s documented consistency bracket (the satellite
/// contract in the crate docs): under a *monotone* concurrent workload
/// (insert-only, distinct keys), every call observes
///
/// ```text
/// acknowledged-before-the-call  <=  len()  <=  issued-after-the-call
/// ```
///
/// because an insert acknowledged before the call began has committed on
/// its shard before that shard's count is read, and a key counted by some
/// shard must have been issued before the call returned.  The non-atomic
/// cut shows up only *between* the two bounds — that slack is the
/// documented behaviour, not a bug, so the test asserts the bracket and
/// nothing tighter.
#[test]
fn len_stays_within_the_monotone_workload_bracket() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let num_shards = 4;
    let set = Arc::new(ShardedSet::new(
        RangeRouter::new(num_shards, 0u64, 1_000_000),
        (0..num_shards)
            .map(|_| ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), Pool::new(1).unwrap()))
            .collect(),
        Pool::new(2).unwrap(),
    ));
    let issued = Arc::new(AtomicU64::new(0));
    let acked = Arc::new(AtomicU64::new(0));

    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let set = Arc::clone(&set);
            let issued = Arc::clone(&issued);
            let acked = Arc::clone(&acked);
            thread::spawn(move || {
                // Distinct keys per writer (disjoint residues), so every
                // insert is new and cardinality is exactly the ack count.
                for i in 0..2_000u64 {
                    let key = i * 3 + w;
                    issued.fetch_add(1, Ordering::SeqCst);
                    assert!(set.insert(key), "key {key} must be new");
                    acked.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    let mut observed = 0usize;
    while observed < 6_000 {
        let lo = acked.load(Ordering::SeqCst);
        let n = set.len();
        let hi = issued.load(Ordering::SeqCst);
        assert!(
            (lo as usize) <= n && n <= hi as usize,
            "len() = {n} outside the bracket [{lo}, {hi}]"
        );
        observed = n;
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(set.len(), 6_000, "quiescent tier counts exactly");
    assert!(!set.is_empty());

    // Quiescent ordered queries agree with the oracle built from the same
    // keys — the stitched range is exact once no writer is in flight.
    let oracle: BTreeSet<u64> = (0..6_000u64).collect();
    assert_eq!(
        set.range_keys(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded),
        oracle.iter().copied().collect::<Vec<_>>()
    );
    assert_eq!(
        set.range_count(
            std::ops::Bound::Included(&100),
            std::ops::Bound::Excluded(&200)
        ),
        100
    );
}
