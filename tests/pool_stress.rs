//! Scheduler stress and lifecycle suite for the lock-free `forkjoin` pool.
//!
//! The Chase-Lev deque swap moved `join`'s hot path off mutexes, so steal
//! races, lost wakeups, and shutdown hangs can no longer be ruled out by
//! lock discipline — they have to be shaken out empirically.  These tests
//! hammer the scheduler across pool sizes 1–8 (on any host, including
//! single-core CI runners, where oversubscription maximises preemption at
//! awkward interleavings) and check every result against sequential
//! oracles.  A scheduler bug here shows up as a wrong sum, a
//! `BTreeSet`-oracle divergence, or a hang (CI's timeout is the detector
//! for lost wakeups and shutdown deadlocks).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use pbist_repro::{
    batchapi::{Batch, BatchedSet},
    forkjoin::{join, Pool, PoolBuildError},
    pbist::IstSet,
    workloads::{self, OpKind},
};

/// Pool sizes every stress test sweeps.  Deliberately past the physical
/// core count: oversubscribed workers get preempted mid-`join`, which is
/// exactly when deque races surface.
const POOL_SIZES: &[usize] = &[1, 2, 3, 4, 6, 8];

// ---------------------------------------------------------------------------
// Stress: join shapes
// ---------------------------------------------------------------------------

/// A linear chain of `join`s: each level forks a trivial leaf and recurses
/// on the other branch, so the chain's continuation keeps getting pushed,
/// stolen, and popped back at every depth.
fn nested_chain(depth: usize) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (rest, leaf) = join(|| nested_chain(depth - 1), || 1u64);
    rest + leaf
}

#[test]
fn deeply_nested_join_chain_across_pool_sizes() {
    const DEPTH: usize = 2_000;
    for &threads in POOL_SIZES {
        // Deep chains genuinely recurse on worker stacks; give workers room
        // (this also exercises `PoolBuilder::stack_size`).
        let pool = Pool::builder()
            .num_threads(threads)
            .stack_size(16 * 1024 * 1024)
            .build()
            .unwrap();
        let total = pool.install(|| nested_chain(DEPTH));
        assert_eq!(total, DEPTH as u64 + 1, "threads={threads}");
    }
}

/// Fans a slice of counters out to single-element leaves, one tiny task per
/// element — thousands of jobs whose bodies are two instructions, so the
/// run is almost pure scheduler traffic.
fn touch_all(counters: &[AtomicUsize]) {
    match counters.len() {
        0 => {}
        1 => {
            counters[0].fetch_add(1, Ordering::Relaxed);
        }
        n => {
            let (lo, hi) = counters.split_at(n / 2);
            join(|| touch_all(lo), || touch_all(hi));
        }
    }
}

#[test]
fn thousands_of_tiny_tasks_each_run_exactly_once() {
    const TASKS: usize = 10_000;
    const REPS: usize = 3;
    for &threads in POOL_SIZES {
        let pool = Pool::new(threads).unwrap();
        for rep in 0..REPS {
            let counters: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
            pool.install(|| touch_all(&counters));
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "threads={threads} rep={rep}: task {i} ran a wrong number of times"
                );
            }
        }
    }
}

/// Back-to-back tiny installs: between installs every worker goes to sleep
/// on the condvar, so each iteration crosses the lock-free-push/sleeper
/// handshake.  A lost wakeup hangs this test.
#[test]
fn repeated_small_installs_exercise_sleep_wake() {
    for &threads in &[1, 2, 4] {
        let pool = Pool::new(threads).unwrap();
        for i in 0..2_000u64 {
            let (a, b) = pool.install(|| join(move || i, move || i * 2));
            assert_eq!((a, b), (i, i * 2));
        }
    }
}

// ---------------------------------------------------------------------------
// Stress: the real consumer — batched IST traffic vs a sequential oracle
// ---------------------------------------------------------------------------

/// Runs mixed insert/remove/contains batches through an `IstSet` inside the
/// pool, checking flags, aggregates, and tree invariants against a
/// `BTreeSet` after every batch.
fn drive_ist_against_oracle(pool: &Pool, ops: &[workloads::OpBatch]) {
    let mut set: IstSet<u64> = IstSet::from_sorted(Vec::new());
    let mut oracle = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        let batch = Batch::from_unsorted(op.keys.clone());
        let flags = pool.install(|| match op.kind {
            OpKind::Insert => set.batch_insert(&batch),
            OpKind::Remove => set.batch_remove(&batch),
            OpKind::Contains => set.batch_contains(&batch),
        });
        let expected: Vec<bool> = batch
            .iter()
            .map(|k| match op.kind {
                OpKind::Insert => oracle.insert(*k),
                OpKind::Remove => oracle.remove(k),
                OpKind::Contains => oracle.contains(k),
            })
            .collect();
        assert_eq!(flags, expected, "step {step}: {:?} flags diverged", op.kind);
        assert_eq!(set.len(), oracle.len(), "step {step}: len diverged");
        set.check_invariants().unwrap();
    }
}

#[test]
fn mixed_op_batches_match_oracle_across_pool_sizes() {
    // Several repetitions per size with different seeds: steal interleavings
    // differ run to run, and wrong steals corrupt results deterministically
    // detectable by the oracle.
    for &threads in POOL_SIZES {
        let pool = Pool::new(threads).unwrap();
        for rep in 0..2 {
            let seed = 1000 + threads as u64 * 10 + rep;
            let ops = workloads::mixed_op_batches(seed, 10, 1_500, 0..20_000, (3, 2, 2));
            drive_ist_against_oracle(&pool, &ops);
        }
    }
}

#[test]
fn concurrent_installs_of_batched_traffic() {
    // Multiple outside threads drive independent sets through one pool at
    // once: injector contention plus intra-pool stealing.
    let pool = Arc::new(Pool::new(4).unwrap());
    thread::scope(|scope| {
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let ops = workloads::mixed_op_batches(2000 + t, 8, 1_000, 0..10_000, (2, 1, 1));
                drive_ist_against_oracle(&pool, &ops);
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Lifecycle edges
// ---------------------------------------------------------------------------

#[test]
fn zero_thread_builder_is_rejected() {
    assert!(matches!(
        Pool::builder().num_threads(0).build(),
        Err(PoolBuildError::ZeroThreads)
    ));
    let err = Pool::new(0).unwrap_err();
    assert!(err.to_string().contains("at least one"));
}

#[test]
fn install_reentry_runs_inline_on_same_pool() {
    for &threads in &[1, 4] {
        let pool = Pool::new(threads).unwrap();
        // Same-pool re-entry must run inline — on a 1-worker pool anything
        // else deadlocks.  Nest through a join for good measure.
        let v = pool.install(|| {
            let (x, y) = join(|| pool.install(|| 21), || 2);
            pool.install(|| x * y)
        });
        assert_eq!(v, 42, "threads={threads}");
    }
}

#[test]
fn install_reentry_across_two_pools() {
    let outer = Pool::new(2).unwrap();
    let inner = Pool::new(2).unwrap();
    let v = outer.install(|| {
        let (a, b) = join(
            || inner.install(|| nested_chain(64)),
            || inner.install(|| nested_chain(32)),
        );
        a + b
    });
    assert_eq!(v, 65 + 33);
    // Both pools stay usable afterwards.
    assert_eq!(outer.install(|| 1), 1);
    assert_eq!(inner.install(|| 2), 2);
}

#[test]
fn drop_with_jobs_in_flight_joins_all_workers() {
    // Outside threads keep the pool saturated with fork-heavy installs while
    // the main thread releases its handle immediately; the pool is dropped
    // by whichever install-holder finishes last.  Shutdown must complete
    // (no hang) and every result must still be right (no abandoned jobs).
    let pool = Arc::new(Pool::new(4).unwrap());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let mut acc = 0u64;
            for _ in 0..20 {
                acc += pool.install(|| nested_chain(200));
            }
            acc
        }));
    }
    drop(pool);
    for handle in handles {
        assert_eq!(handle.join().unwrap(), 20 * 201);
    }
}

#[test]
fn rapid_build_use_drop_cycles() {
    // Each cycle ends with workers mid-sleep or mid-steal; `terminate` must
    // wake and join them all, every time, at every size.
    for round in 0..10 {
        for &threads in &[1, 2, 8] {
            let pool = Pool::new(threads).unwrap();
            let total = pool.install(|| nested_chain(100 + round));
            assert_eq!(total, 101 + round as u64);
            drop(pool);
        }
    }
}

#[test]
fn drop_without_any_install() {
    // Workers have gone to sleep waiting for work that never comes;
    // terminate-vs-sleeper must not lose the shutdown signal.
    for &threads in POOL_SIZES {
        let pool = Pool::new(threads).unwrap();
        drop(pool);
    }
}

#[test]
fn pool_survives_panicking_jobs_then_shuts_down() {
    let pool = Pool::new(3).unwrap();
    for _ in 0..5 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| 1, || -> u64 { panic!("stress boom") });
            })
        }));
        assert!(result.is_err());
        // The pool must still schedule correctly after unwinding.
        assert_eq!(pool.install(|| nested_chain(50)), 51);
    }
}
