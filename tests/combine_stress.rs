//! Linearizability-style stress suite for the flat-combining front-end.
//!
//! N client threads issue recorded single-op traces through a
//! `combine::ConcurrentSet` over the real tree.  The combiner logs every
//! committed round; afterwards the test replays the rounds **sequentially**
//! against a `BTreeSet` oracle and demands that
//!
//! 1. every per-op result recorded in the log matches the sequential replay
//!    (the committed order is a valid linearisation),
//! 2. the multiset of `(kind, key, result)` triples the clients observed
//!    equals the multiset in the log (every client op appears exactly once,
//!    with exactly the result its client saw), and
//! 3. the backing set's final contents equal the oracle's, with the tree's
//!    shape invariants intact.
//!
//! Together with the fact that round commit order respects real time (an op
//! that completed before another started was drained in an earlier round),
//! this is a linearizability check for the whole history.
//!
//! Every failure message carries the active seed and configuration so CI
//! failures replay without bisecting.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use pbist_repro::{
    baselines::SortedArraySet,
    batchapi::{Batch, BatchedSet},
    combine::{ConcurrentSet, OpKind as CombinedOp, Options},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ClientTrace, OpKind},
};

/// Drives `traces` concurrently through a logged `ConcurrentSet<_, IstSet>`
/// seeded with `initial`, then runs the three oracle checks above.
fn drive_and_verify(
    ctx: &str,
    pool_threads: usize,
    pool_cutoff: usize,
    initial: &[u64],
    traces: &[ClientTrace],
) {
    let pool = Pool::new(pool_threads).unwrap_or_else(|e| panic!("{ctx}: pool: {e}"));
    let backing = IstSet::from_unsorted(initial.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options {
            pool_cutoff,
            log_rounds: true,
            // This harness checks the *combining* path: every op — contains
            // included — must appear in the round log, so the wait-free
            // snapshot read path is pinned off.  The staleness-contract test
            // below covers the snapshot path.
            snapshot_reads: false,
            ..Options::default()
        },
    ));

    let observed: Vec<Vec<bool>> = thread::scope(|s| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    trace
                        .iter()
                        .map(|(kind, key)| match kind {
                            OpKind::Insert => set.insert(*key),
                            OpKind::Remove => set.remove(key),
                            OpKind::Contains => set.contains(key),
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let rounds = set.take_rounds();
    let total_ops: usize = traces.iter().map(|t| t.len()).sum();
    assert_eq!(
        rounds.iter().map(|r| r.ops.len()).sum::<usize>(),
        total_ops,
        "{ctx}: logged op count"
    );

    // Check 0: sequence numbers are strictly increasing and gap-free in
    // commit order — the numbering a durable log keys its records by.
    for (r, round) in rounds.iter().enumerate() {
        assert_eq!(round.seq, r as u64 + 1, "{ctx}: round seq at index {r}");
    }

    // Check 1: the committed round order is a valid linearisation.
    let mut oracle: BTreeSet<u64> = initial.iter().copied().collect();
    for (r, round) in rounds.iter().enumerate() {
        for op in &round.ops {
            let expect = match op.kind {
                CombinedOp::Insert => oracle.insert(op.key),
                CombinedOp::Remove => oracle.remove(&op.key),
                CombinedOp::Contains => oracle.contains(&op.key),
            };
            assert_eq!(op.result, expect, "{ctx}: round {r}, op {op:?}");
        }
    }

    // Check 2: clients observed exactly the logged multiset of results.
    let mut tally: HashMap<(CombinedOp, u64, bool), i64> = HashMap::new();
    for (trace, results) in traces.iter().zip(&observed) {
        assert_eq!(results.len(), trace.len(), "{ctx}: client result count");
        for ((kind, key), &result) in trace.iter().zip(results) {
            let kind = match kind {
                OpKind::Insert => CombinedOp::Insert,
                OpKind::Remove => CombinedOp::Remove,
                OpKind::Contains => CombinedOp::Contains,
            };
            *tally.entry((kind, *key, result)).or_insert(0) += 1;
        }
    }
    for round in &rounds {
        for op in &round.ops {
            *tally.entry((op.kind, op.key, op.result)).or_insert(0) -= 1;
        }
    }
    if let Some((entry, count)) = tally.iter().find(|(_, &c)| c != 0) {
        panic!("{ctx}: client/log multiset mismatch at {entry:?} (excess {count})");
    }

    // Check 3: the final structure matches the oracle, invariants intact.
    let stats = set.stats();
    assert_eq!(stats.ops, total_ops as u64, "{ctx}: stats.ops");
    let backing = Arc::try_unwrap(set)
        .unwrap_or_else(|_| panic!("{ctx}: client Arc leaked"))
        .into_inner();
    backing
        .check_invariants()
        .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"));
    assert_eq!(backing.len(), oracle.len(), "{ctx}: final len");
    let present = Batch::from_unsorted(oracle.iter().copied().collect());
    assert!(
        backing.batch_contains(&present).iter().all(|&hit| hit),
        "{ctx}: an oracle key is missing from the backing set"
    );
    let absent_probes = Batch::from_unsorted(
        (0..1000u64)
            .map(|i| i * 37)
            .filter(|k| !oracle.contains(k))
            .collect(),
    );
    assert!(
        !backing
            .batch_contains(&absent_probes)
            .iter()
            .any(|&hit| hit),
        "{ctx}: the backing set holds a key the oracle does not"
    );
}

/// Uniform traffic over a narrow key range (heavy cross-client collisions),
/// across pool sizes 1–8 with the default inline/pool cutoff.
#[test]
fn uniform_traffic_linearizes_across_pool_sizes() {
    for (seed, pool_threads) in [(1u64, 1usize), (2, 2), (3, 4), (4, 8)] {
        let initial = workloads::uniform_keys_distinct(seed ^ 0xA5A5, 600, 0..2_000);
        let traces = workloads::client_traces(seed, 4, 2_500, 0..2_000, (3, 2, 2));
        let ctx = format!("seed {seed}, pool {pool_threads}, cutoff default");
        drive_and_verify(
            &ctx,
            pool_threads,
            Options::default().pool_cutoff,
            &initial,
            &traces,
        );
    }
}

/// Zipf hot-key traffic: many concurrent ops on the same few keys, which is
/// exactly what stresses duplicate resolution inside one round.
#[test]
fn zipf_hot_key_traffic_linearizes() {
    for (seed, pool_threads) in [(5u64, 2usize), (6, 4)] {
        let universe = workloads::uniform_keys_distinct(seed, 300, 0..1_000_000);
        let initial: Vec<u64> = universe[..150].to_vec();
        let traces = workloads::client_traces_zipf(seed, 6, 800, &universe, 0.99, (2, 2, 1));
        let ctx = format!("seed {seed}, pool {pool_threads}, zipf");
        drive_and_verify(
            &ctx,
            pool_threads,
            Options::default().pool_cutoff,
            &initial,
            &traces,
        );
    }
}

/// `pool_cutoff: 0` forces every round — even single-op ones — through
/// `Pool::install`, exercising the pooled execution path that default
/// configurations only hit on large rounds.  Run on a 1-worker pool, the
/// configuration where a blocking bug becomes a deadlock rather than a
/// slowdown.
#[test]
fn one_worker_pool_with_forced_pool_rounds() {
    let seed = 7u64;
    let initial = workloads::uniform_keys_distinct(seed, 400, 0..1_500);
    let traces = workloads::client_traces(seed, 4, 400, 0..1_500, (3, 2, 2));
    let ctx = format!("seed {seed}, pool 1, cutoff 0");
    drive_and_verify(&ctx, 1, 0, &initial, &traces);
}

/// The owner's handle can be dropped while clients still hold theirs and
/// have operations in flight; the last client to finish tears the whole
/// front-end (and its pool) down from a worker-facing thread.
#[test]
fn drop_with_waiters_lifecycle() {
    let seed = 8u64;
    let pool = Pool::new(2).unwrap();
    let set = Arc::new(ConcurrentSet::new(
        IstSet::from_unsorted((0..500u64).collect()),
        pool,
    ));
    let traces = workloads::client_traces(seed, 8, 500, 0..1_000, (2, 2, 1));
    let handles: Vec<_> = traces
        .into_iter()
        .map(|trace| {
            let set = Arc::clone(&set);
            thread::spawn(move || {
                for (kind, key) in trace {
                    match kind {
                        OpKind::Insert => set.insert(key),
                        OpKind::Remove => set.remove(&key),
                        OpKind::Contains => set.contains(&key),
                    };
                }
            })
        })
        .collect();
    // Drop the owning handle immediately: clients keep the set alive, and
    // whoever finishes last runs the full teardown.
    drop(set);
    for h in handles {
        h.join().unwrap();
    }
}

/// The combiner advances `Stats` with plain single-writer load+store pairs,
/// ordered so that `ops` is published before `rounds` (Release) and read
/// back in the opposite order (Acquire).  That ordering is exactly what
/// makes `ops >= rounds` and `pooled_rounds <= rounds` hold in *every*
/// concurrent snapshot, not just quiescent ones — every committed round
/// drained at least one op, and a snapshot that sees the round must see
/// its ops.  Hammer the reader against four writers to catch any
/// reordering regression in `bump_stats`.
#[test]
fn stats_snapshots_never_show_rounds_ahead_of_ops() {
    let pool = Pool::new(2).unwrap();
    let set = Arc::new(ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), pool));
    let writers = 4usize;
    let per_writer = 2_000u64;
    thread::scope(|s| {
        for w in 0..writers as u64 {
            let set = Arc::clone(&set);
            s.spawn(move || {
                for i in 0..per_writer {
                    let key = w * 100_000 + (i % 64);
                    if i % 3 == 0 {
                        set.remove(&key);
                    } else {
                        set.insert(key);
                    }
                }
            });
        }
        let set = Arc::clone(&set);
        s.spawn(move || {
            for _ in 0..5_000 {
                let st = set.stats();
                assert!(
                    st.ops >= st.rounds,
                    "snapshot shows more rounds than ops: {st:?}"
                );
                assert!(
                    st.pooled_rounds <= st.rounds,
                    "snapshot shows more pooled rounds than rounds: {st:?}"
                );
            }
        });
    });
    let st = set.stats();
    assert_eq!(st.ops, writers as u64 * per_writer, "quiescent op total");
    assert!(st.rounds >= 1 && st.rounds <= st.ops, "quiescent rounds");
}

/// Staleness-contract replay for the wait-free snapshot read path.
///
/// Clients write disjoint key spaces (default options: snapshot reads
/// *on*, plus the round log for the replay).  Three properties:
///
/// 1. **Read-your-writes** — immediately after an acknowledged write, a
///    snapshot `contains` of the same key reflects it (the combiner
///    publishes the snapshot *before* acknowledging the round, and no
///    other client touches the key).
/// 2. **Monotonicity** — a single client's observed snapshot seqs never
///    go backwards.
/// 3. **Exactness at the observed seq** — replaying the round log, every
///    recorded read `(key, result, seq)` must equal the oracle state
///    after exactly the rounds with seq `<= seq` — i.e. the snapshot *is*
///    some round's state, between the client's last write and the read.
#[test]
fn snapshot_reads_satisfy_the_staleness_contract() {
    let pool = Pool::new(2).unwrap();
    let set = Arc::new(ConcurrentSet::with_options(
        IstSet::from_unsorted(Vec::new()),
        pool,
        Options {
            log_rounds: true,
            ..Options::default()
        },
    ));
    let clients = 4u64;
    let per_client = 400u64;
    let span = 97u64;

    // Each client records its snapshot reads as (key, result, seq).
    let reads: Vec<Vec<(u64, bool, u64)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let mut recorded = Vec::new();
                    let mut last_seq = 0u64;
                    for i in 0..per_client {
                        let key = c * 1_000_000 + (i % span);
                        let insert = i % 3 != 2;
                        if insert {
                            set.insert(key);
                        } else {
                            set.remove(&key);
                        }
                        // Property 1: read-your-writes.
                        assert_eq!(
                            set.contains(&key),
                            insert,
                            "client {c} step {i}: read of own write went stale"
                        );
                        // Properties 2 + 3: record a probe from one
                        // snapshot, pairing result and seq exactly.
                        let snap = set.read_snapshot();
                        assert!(
                            snap.seq() >= last_seq,
                            "client {c} step {i}: snapshot seq went backwards \
                             ({last_seq} -> {})",
                            snap.seq()
                        );
                        last_seq = snap.seq();
                        let probe = c * 1_000_000 + ((i * 31) % span);
                        recorded.push((probe, snap.view().contains(&probe), snap.seq()));
                    }
                    recorded
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Reads bypassed the combiner entirely: the round log holds writes
    // only, and the op counter agrees.
    let rounds = set.take_rounds();
    assert!(
        rounds
            .iter()
            .flat_map(|r| r.ops.iter())
            .all(|op| !matches!(op.kind, CombinedOp::Contains)),
        "snapshot reads must never enter a round"
    );
    assert_eq!(
        set.stats().ops,
        clients * per_client,
        "only the writes may be combined"
    );
    assert!(
        set.metrics().counter("combine.snapshot_reads").unwrap_or(0) >= clients * per_client * 2,
        "every contains and read_snapshot must count as a snapshot read"
    );

    // Property 3: replay the log; a read observed at seq s is checked
    // against the oracle once every round with seq <= s has applied.
    let mut events: Vec<(u64, u64, bool)> = reads
        .iter()
        .flatten()
        .map(|&(key, result, seq)| (seq, key, result))
        .collect();
    events.sort_by_key(|&(seq, _, _)| seq);
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let mut next = 0usize;
    for round in &rounds {
        while next < events.len() && events[next].0 < round.seq {
            let (seq, key, result) = events[next];
            assert_eq!(
                result,
                oracle.contains(&key),
                "read of key {key} at snapshot seq {seq} does not match the round state"
            );
            next += 1;
        }
        for op in &round.ops {
            match op.kind {
                CombinedOp::Insert => {
                    oracle.insert(op.key);
                }
                CombinedOp::Remove => {
                    oracle.remove(&op.key);
                }
                CombinedOp::Contains => {}
            }
        }
    }
    while next < events.len() {
        let (seq, key, result) = events[next];
        assert_eq!(
            result,
            oracle.contains(&key),
            "read of key {key} at snapshot seq {seq} does not match the final state"
        );
        next += 1;
    }
}

/// One recorded ordered read: everything a client learned from a single
/// snapshot, paired with that snapshot's seq.
struct RangeRead {
    seq: u64,
    lo: u64,
    hi: u64,
    keys: Vec<u64>,
    count: usize,
    pred: Option<u64>,
    succ: Option<u64>,
}

/// Staleness-contract replay for the wait-free *ordered* reads
/// (`range_keys` / `range_count` / `predecessor` / `successor` off the
/// published snapshot), mirroring the point-read contract test above.
///
/// Clients write disjoint key spaces and, after each write, capture one
/// snapshot and record a full ordered read against it.  Afterwards the
/// round log replays sequentially and every recorded read must equal the
/// oracle state after exactly the rounds with seq `<=` the observed seq —
/// i.e. every range a client ever saw *is* some committed round's range,
/// never a half-applied or invented one.  The front-end's own wait-free
/// wrappers are exercised in the same run and must never enter a round.
#[test]
fn snapshot_range_reads_replay_against_the_committed_rounds() {
    let pool = Pool::new(2).unwrap();
    let set = Arc::new(ConcurrentSet::with_options(
        IstSet::from_unsorted(Vec::new()),
        pool,
        Options {
            log_rounds: true,
            ..Options::default()
        },
    ));
    let clients = 4u64;
    let per_client = 300u64;
    let span = 61u64;

    let reads: Vec<Vec<RangeRead>> = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let base = c * 1_000_000;
                    let mut recorded = Vec::new();
                    for i in 0..per_client {
                        let key = base + (i % span);
                        if i % 3 != 2 {
                            set.insert(key);
                        } else {
                            set.remove(&key);
                        }
                        // The wait-free wrappers must answer without
                        // combining; their results are checked only for
                        // plausibility here (they may come from a newer
                        // snapshot than the one recorded below).
                        let quick = set.range_count(
                            std::ops::Bound::Included(&base),
                            std::ops::Bound::Excluded(&(base + span)),
                        );
                        assert!(quick as u64 <= span, "client {c}: impossible count");
                        // The recorded read: one snapshot, every ordered
                        // query against that same view, seq attached.
                        let snap = set.read_snapshot();
                        let lo = base + ((i * 13) % span);
                        let hi = lo + 1 + (i * 7) % 40;
                        let view = snap.view();
                        recorded.push(RangeRead {
                            seq: snap.seq(),
                            lo,
                            hi,
                            keys: view.range_keys(
                                std::ops::Bound::Included(&lo),
                                std::ops::Bound::Excluded(&hi),
                            ),
                            count: view.range_count(
                                std::ops::Bound::Included(&lo),
                                std::ops::Bound::Excluded(&hi),
                            ),
                            pred: view.predecessor(&lo),
                            succ: view.successor(&lo),
                        });
                    }
                    recorded
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Ordered reads bypassed the combiner: the log holds writes only.
    let rounds = set.take_rounds();
    assert!(
        rounds
            .iter()
            .flat_map(|r| r.ops.iter())
            .all(|op| !matches!(op.kind, CombinedOp::Contains)),
        "ordered reads must never enter a round"
    );
    assert_eq!(
        set.stats().ops,
        clients * per_client,
        "only the writes may be combined"
    );

    // Replay: a read observed at seq s is checked against the oracle once
    // every round with seq <= s has applied.
    let mut events: Vec<RangeRead> = reads.into_iter().flatten().collect();
    events.sort_by_key(|e| e.seq);
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let mut next = 0usize;
    let check = |e: &RangeRead, oracle: &BTreeSet<u64>| {
        let expect: Vec<u64> = oracle
            .iter()
            .copied()
            .filter(|&k| k >= e.lo && k < e.hi)
            .collect();
        assert_eq!(
            e.keys, expect,
            "range [{}, {}) at snapshot seq {} does not match the round state",
            e.lo, e.hi, e.seq
        );
        assert_eq!(e.count, expect.len(), "count at seq {} diverged", e.seq);
        assert_eq!(
            e.pred,
            oracle.range(..e.lo).next_back().copied(),
            "predecessor({}) at seq {} diverged",
            e.lo,
            e.seq
        );
        assert_eq!(
            e.succ,
            oracle.range(e.lo + 1..).next().copied(),
            "successor({}) at seq {} diverged",
            e.lo,
            e.seq
        );
    };
    for round in &rounds {
        while next < events.len() && events[next].seq < round.seq {
            check(&events[next], &oracle);
            next += 1;
        }
        for op in &round.ops {
            match op.kind {
                CombinedOp::Insert => {
                    oracle.insert(op.key);
                }
                CombinedOp::Remove => {
                    oracle.remove(&op.key);
                }
                CombinedOp::Contains => {}
            }
        }
    }
    while next < events.len() {
        check(&events[next], &oracle);
        next += 1;
    }
}

/// A backend that panics when asked to insert `u64::MAX` — used to race
/// `snapshot_keys` against a poisoning combiner.
struct BombSet {
    inner: SortedArraySet<u64>,
}

impl BatchedSet<u64> for BombSet {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn contains(&self, key: &u64) -> bool {
        BatchedSet::contains(&self.inner, key)
    }
    fn rank(&self, key: &u64) -> usize {
        BatchedSet::rank(&self.inner, key)
    }
    fn min(&self) -> Option<&u64> {
        BatchedSet::min(&self.inner)
    }
    fn max(&self) -> Option<&u64> {
        BatchedSet::max(&self.inner)
    }
    fn batch_contains(&self, batch: &Batch<u64>) -> Vec<bool> {
        self.inner.batch_contains(batch)
    }
    fn batch_insert(&mut self, batch: &Batch<u64>) -> Vec<bool> {
        assert!(
            !batch.as_slice().contains(&u64::MAX),
            "BombSet: backend blew up mid-round"
        );
        self.inner.batch_insert(batch)
    }
    fn batch_remove(&mut self, batch: &Batch<u64>) -> Vec<bool> {
        self.inner.batch_remove(batch)
    }
    fn collect_keys(&self) -> Vec<u64> {
        self.inner.collect_keys()
    }
}

/// `snapshot_keys` racing a poisoning combiner: every successful
/// `(keys, seq)` pair must equal the round-log oracle at exactly that
/// seq — a half-applied (panicked) round's view must be structurally
/// unreachable — and once the poison lands, `snapshot_keys` fails fast
/// with the poison error while `read_snapshot` (supervisor-grade) still
/// answers with the last good snapshot.
#[test]
fn snapshot_keys_never_observes_a_half_applied_round() {
    let set = Arc::new(ConcurrentSet::with_options(
        BombSet {
            inner: SortedArraySet::from_unsorted(Vec::new()),
        },
        Pool::new(1).unwrap(),
        Options {
            log_rounds: true,
            ..Options::default()
        },
    ));

    let observed: Vec<Vec<(Vec<u64>, u64)>> = thread::scope(|s| {
        let observers: Vec<_> = (0..2)
            .map(|_| {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let mut pairs = Vec::new();
                    // Snapshot until the poison lands; the Err arm is the
                    // test finishing, so an observer can never hang.
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| set.snapshot_keys())) {
                            Ok(pair) => pairs.push(pair),
                            Err(_) => return pairs,
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();
        let bomber = {
            let set = Arc::clone(&set);
            s.spawn(move || {
                for i in 0..512u64 {
                    set.insert(i);
                }
                catch_unwind(AssertUnwindSafe(|| set.insert(u64::MAX))).is_err()
            })
        };
        assert!(bomber.join().unwrap(), "the bomb insert must panic");
        observers.into_iter().map(|o| o.join().unwrap()).collect()
    });
    assert!(set.is_poisoned(), "the combiner must be poisoned");

    // Replay the committed rounds (the panicked round never logged, never
    // published) and pin every observed pair to its seq's exact state.
    let rounds = set.take_rounds();
    let mut states: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    states.insert(0, Vec::new());
    for round in &rounds {
        for op in &round.ops {
            match op.kind {
                CombinedOp::Insert => {
                    oracle.insert(op.key);
                }
                CombinedOp::Remove => {
                    oracle.remove(&op.key);
                }
                CombinedOp::Contains => {}
            }
        }
        states.insert(round.seq, oracle.iter().copied().collect());
    }
    let total: usize = observed.iter().map(Vec::len).sum();
    assert!(total > 0, "observers must have snapshotted at least once");
    for pairs in &observed {
        for (keys, seq) in pairs {
            let expect = states
                .get(seq)
                .unwrap_or_else(|| panic!("snapshot seq {seq} is not a committed round"));
            assert_eq!(
                keys, expect,
                "snapshot at seq {seq} does not match that round's state"
            );
        }
    }

    // Fail-fast contract after the poison: snapshot_keys refuses...
    let err = catch_unwind(AssertUnwindSafe(|| set.snapshot_keys())).unwrap_err();
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("poisoned"),
        "snapshot_keys after poison must fail fast, got: {msg:?}"
    );
    // ...while the supervisor-grade accessor still serves the last good
    // snapshot (it predates the poisoned round by construction).
    let snap = set.read_snapshot();
    assert_eq!(
        &snap.view().collect_keys(),
        states.get(&snap.seq()).expect("last good snapshot seq"),
        "read_snapshot after poison must still be a committed round's state"
    );
}

/// `len` reads the published snapshot under the default options, so calling
/// it concurrently with mutating traffic must neither deadlock nor return
/// out-of-thin-air values — and because snapshots are published in round
/// order, a single reader must see monotonically non-decreasing lengths
/// while the set only grows.
#[test]
fn concurrent_len_reads_stay_bounded() {
    let pool = Pool::new(2).unwrap();
    let set = Arc::new(ConcurrentSet::new(IstSet::from_unsorted(Vec::new()), pool));
    let writers = 3usize;
    let per_writer = 500u64;
    thread::scope(|s| {
        for w in 0..writers as u64 {
            let set = Arc::clone(&set);
            s.spawn(move || {
                for i in 0..per_writer {
                    // Distinct key spaces: the set only ever grows.
                    set.insert(w * 10_000 + i);
                }
            });
        }
        let set = Arc::clone(&set);
        s.spawn(move || {
            let mut last = 0usize;
            for _ in 0..200 {
                let n = set.len();
                assert!(n >= last, "len went backwards: {last} -> {n}");
                assert!(n <= writers * per_writer as usize, "len overshot: {n}");
                last = n;
            }
        });
    });
    assert_eq!(set.len(), writers * per_writer as usize);
}
