//! End-to-end equivalence across the workspace layers: workload generators
//! produce keys and operation batches, the `pbist` tree and the `baselines`
//! sorted array ingest the same keys through the shared
//! [`batchapi::BatchedSet`] trait, and both must answer identically —
//! sequentially and under a multi-worker pool.

use pbist_repro::{
    baselines,
    batchapi::{Batch, BatchedSet},
    forkjoin, parprim, pbist, workloads,
};

#[test]
fn tree_and_sorted_array_agree_on_generated_workload() {
    let keys = workloads::uniform_keys_distinct(0xA5EE, 20_000, 0..1_000_000);
    let queries = Batch::from_unsorted(workloads::uniform_keys(0xBEEF, 30_000, 0..1_000_000));

    let array = baselines::SortedArraySet::from_unsorted(keys.clone());
    let tree = pbist::IstSet::from_unsorted(keys);
    assert_eq!(array.len(), tree.len());
    assert_eq!(BatchedSet::min(&array), tree.min());
    assert_eq!(BatchedSet::max(&array), tree.max());

    let sequential: Vec<bool> = queries.iter().map(|q| array.contains(q)).collect();
    assert_eq!(array.batch_contains(&queries), sequential);
    assert_eq!(tree.batch_contains(&queries), sequential);

    let pool = forkjoin::Pool::new(4).unwrap();
    let (from_array, from_tree) = pool.install(|| {
        (
            array.batch_contains(&queries),
            tree.batch_contains(&queries),
        )
    });
    assert_eq!(from_array, sequential);
    assert_eq!(from_tree, sequential);
}

#[test]
fn tree_and_sorted_array_agree_under_batched_updates() {
    let keys = workloads::uniform_keys_distinct(0xCAFE, 10_000, 0..500_000);
    let mut array = baselines::SortedArraySet::from_unsorted(keys.clone());
    let mut tree = pbist::IstSet::from_unsorted(keys);

    let ops = workloads::mixed_op_batches(0xD00D, 12, 4_000, 0..500_000, (2, 2, 1));
    for op in &ops {
        let batch = Batch::from_unsorted(op.keys.clone());
        let (from_array, from_tree) = match op.kind {
            workloads::OpKind::Insert => (array.batch_insert(&batch), tree.batch_insert(&batch)),
            workloads::OpKind::Remove => (array.batch_remove(&batch), tree.batch_remove(&batch)),
            workloads::OpKind::Contains => {
                (array.batch_contains(&batch), tree.batch_contains(&batch))
            }
        };
        assert_eq!(from_array, from_tree, "{:?} batch diverged", op.kind);
        assert_eq!(array.len(), tree.len());
        tree.check_invariants().unwrap();
    }
}

#[test]
fn zipf_queries_hit_the_hot_keys() {
    let keys = workloads::uniform_keys_distinct(1, 1000, 0..1_000_000);
    let tree = pbist::IstSet::from_unsorted(keys.clone());
    let mut zipf = workloads::ZipfSampler::new(2, keys.len(), 0.99);
    let queries: Vec<u64> = zipf.take(5000).into_iter().map(|rank| keys[rank]).collect();
    // Every Zipf-selected query is a real key, so all lookups must hit.
    let hits = tree.batch_contains(&Batch::from_unsorted(queries));
    assert!(hits.iter().all(|&h| h));
}

#[test]
fn scan_partitions_a_batch_by_subtree_counts() {
    // The shape of the paper's batch partitioning: per-bucket counts scanned
    // into offsets, validated here against direct arithmetic.
    let counts: Vec<usize> = (0..257).map(|i| (i * 31) % 97).collect();
    let (offsets, total) = parprim::exclusive_scan(&counts, 0, |a, b| a + b);
    assert_eq!(total, counts.iter().sum::<usize>());
    for (i, offset) in offsets.iter().enumerate() {
        assert_eq!(*offset, counts[..i].iter().sum::<usize>());
    }
}
