//! Kill-9 crash test for the durable *map* tier.
//!
//! Same harness as `durable_crash.rs` — the parent re-executes this test
//! binary in child mode, reads acknowledged batches off a pipe, and
//! `SIGKILL`s the child mid-commit — but the artefact under test is
//! [`DurableMap`], so the contract is strictly stronger than the set
//! tier's: not only must every acknowledged *key* survive recovery, every
//! key must come back with the exact *value* it was committed with.  A
//! recovery that replays keys but invents, drops, or cross-wires values
//! would pass the set suite and fail here.
//!
//! The child writes disjoint batches `[i*B, (i+1)*B)` in order, each key
//! `k` carrying the derived value `k * 2 + 1`, so the parent can verify
//! the full key→value mapping of whatever prefix survived without any
//! side channel.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

use pbist_repro::{
    batchapi::{Batch, KvBatch},
    durable::{DurableMap, DurableOptions},
    pbist::IstMap,
};

/// Keys per child batch.
const BATCH: u64 = 4;

/// Child mode: write acknowledged batches forever (until killed).
const CHILD_ENV: &str = "DURABLE_MAP_CRASH_CHILD";
/// Directory handed to the child.
const DIR_ENV: &str = "DURABLE_MAP_CRASH_DIR";
/// Group-commit size the child runs with.
const GROUP_ENV: &str = "DURABLE_MAP_CRASH_GROUP";

/// The value every key commits with — derived, so recovery can be checked
/// end to end from the keys alone.
fn value_of(key: u64) -> u64 {
    key * 2 + 1
}

fn open(dir: &PathBuf, group_commit: u64) -> DurableMap<u64, u64, IstMap<u64, u64>> {
    DurableMap::open(
        dir,
        DurableOptions {
            group_commit,
            ..DurableOptions::default()
        },
        |batch| IstMap::from_kv_batch(&batch),
    )
    .expect("open durable map")
}

/// The child: upsert batch `i` = `[i*B, (i+1)*B)` with derived values,
/// then acknowledge it by printing `ACK <i> <durable_seq>` on a flushed
/// line.  Runs until the parent kills it.
fn run_child() -> ! {
    let dir = PathBuf::from(std::env::var_os(DIR_ENV).expect("child needs the dir"));
    let group: u64 = std::env::var(GROUP_ENV)
        .expect("child needs the group size")
        .parse()
        .expect("group size");
    let map = open(&dir, group);
    let stdout = std::io::stdout();
    let mut i = 0u64;
    loop {
        let entries: Vec<(u64, u64)> = (i * BATCH..(i + 1) * BATCH)
            .map(|k| (k, value_of(k)))
            .collect();
        let batch = KvBatch::from_unsorted(entries);
        map.batch_insert_kv(&batch).expect("child batch_insert_kv");
        // One flushed line per acknowledged batch: pipes are block-
        // buffered, and an ACK the parent never sees is no ACK at all.
        let mut out = stdout.lock();
        writeln!(out, "ACK {i} {}", map.durable_seq()).expect("child stdout");
        out.flush().expect("child flush");
        i += 1;
    }
}

/// One parent run: spawn the child, kill it after `acks` acknowledged
/// batches, recover, verify the contract — keys *and* values.
///
/// `tear_tail` appends garbage to the dead child's last log segment
/// before recovering, standing in for the crash that tears a record
/// (power loss mid-write); `SIGKILL` alone cannot, because the kernel
/// completes an in-flight `write` even as it reaps the process.  Returns
/// whether the first recovery observed a torn tail.
fn crash_once(tag: &str, group_commit: u64, acks: u64, tear_tail: bool) -> bool {
    let dir = std::env::temp_dir().join(format!(
        "durable-map-crash-{}-{tag}-g{group_commit}-a{acks}",
        std::process::id()
    ));
    // A previous failed run may have left debris behind.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .arg("--exact")
        .arg("kill9_mid_commit_keeps_every_acknowledged_value")
        .arg("--nocapture")
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, &dir)
        .env(GROUP_ENV, group_commit.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");

    // Read ACK lines off the pipe (ignoring libtest chatter), and kill
    // the instant the threshold arrives: the child is then almost
    // certainly inside a later append/fsync — exactly "mid-commit".
    let stdout = child.stdout.take().expect("piped stdout");
    let mut last_ack = None;
    let mut last_durable = 0u64;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read child line");
        let mut parts = line.split_whitespace();
        if parts.next() != Some("ACK") {
            continue;
        }
        let i: u64 = parts.next().expect("ack index").parse().expect("ack index");
        last_durable = parts
            .next()
            .expect("ack durable_seq")
            .parse()
            .expect("ack durable_seq");
        last_ack = Some(i);
        if i + 1 >= acks {
            break;
        }
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");
    let last_ack = last_ack.expect("child produced no ACKs");
    assert_eq!(last_ack + 1, acks, "{tag}: parent read the wrong ACK count");

    if tear_tail {
        // The power-loss signature: the log ends in bytes that are not a
        // whole valid record.
        let last_segment = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .max()
            .expect("a log segment to tear");
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(last_segment)
            .expect("open segment to tear");
        file.write_all(&[0xAB; 20]).expect("tear the tail");
    }

    // Recover.  The child died with batches in flight (and possibly a
    // torn tail); open() must succeed regardless.
    let map = open(&dir, 1);
    let torn = map.metrics().counter("durable.torn_tails").unwrap_or(0) > 0;
    if tear_tail {
        assert!(torn, "{tag}: the injected tear went unnoticed");
    }

    // Round granularity: an exact prefix of whole batches survived.
    let len = map.len() as u64;
    assert_eq!(
        len % BATCH,
        0,
        "{tag}: recovered a fraction of a batch ({len} entries)"
    );
    let batches = len / BATCH;

    // Acknowledged implies recovered.  Batch i is the child's record
    // seq i + 1 (fresh dir, one record per batch_insert_kv), so batches
    // `0..last_durable` were durable when the child last reported.
    assert!(
        batches >= last_durable,
        "{tag}: durable_seq said {last_durable} batches were on disk, \
         but only {batches} were recovered"
    );
    if group_commit == 1 {
        // Every return was an fsync: the last ACKed batch itself is
        // covered by the guarantee, not just the durable-mark prefix.
        assert!(
            batches > last_ack,
            "{tag}: batch {last_ack} was acknowledged under group_commit=1 \
             but did not survive ({batches} batches recovered)"
        );
    }
    // The prefix really is the contents — and every key carries the
    // exact value it was committed with, which is what separates this
    // suite from the set tier's.
    let probe = Batch::from_unsorted((0..len).collect());
    let hits = map.batch_get(&probe);
    for (key, hit) in (0..len).zip(hits) {
        assert_eq!(
            hit,
            Some(value_of(key)),
            "{tag}: key {key} recovered with the wrong value"
        );
    }
    drop(map);

    // Recovery healed the tear (truncation), so a second open replays a
    // clean log and sees the same state.
    let map = open(&dir, 1);
    assert_eq!(
        map.metrics().counter("durable.torn_tails"),
        Some(0),
        "{tag}: second open still sees a torn tail"
    );
    assert_eq!(map.len() as u64, len, "{tag}: second recovery differs");
    for key in 0..len {
        assert_eq!(
            map.get(&key),
            Some(value_of(key)),
            "{tag}: key {key} lost its value on the second recovery"
        );
    }
    drop(map);

    std::fs::remove_dir_all(&dir).expect("cleanup");
    torn
}

#[test]
fn kill9_mid_commit_keeps_every_acknowledged_value() {
    if std::env::var_os(CHILD_ENV).is_some() {
        run_child();
    }
    let mut torn_seen = 0u32;
    for (group_commit, acks, tear_tail) in [
        (1u64, 3u64, false),
        (1, 11, true),
        (1, 29, false),
        (4, 5, true),
        (4, 17, false),
        (16, 40, true),
    ] {
        let tag = format!("g{group_commit}/a{acks}/tear={tear_tail}");
        if crash_once(&tag, group_commit, acks, tear_tail) {
            torn_seen += 1;
        }
    }
    assert!(torn_seen >= 3, "the injected tears must all be observed");
    println!("runs that hit a torn tail: {torn_seen}/6");
}
