//! Shared helpers for the `bench_*` binaries: timing loops, the
//! multi-client wall-clock driver, metric-snapshot JSON rendering, and the
//! disabled-instrumentation overhead check.
//!
//! Every bench used to carry private copies of these; they live here once
//! so the three emitters stay byte-for-byte consistent about how a
//! measurement is taken and how a metrics block is embedded in
//! `BENCH_*.json`.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use forkjoin::PoolMetrics;

/// Milliseconds elapsed since `start`.
pub fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs `f` `reps` times, returning each repetition's wall time in
/// milliseconds.  Feed the result to [`min_of`] / [`mean_of`].
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            elapsed_ms(start)
        })
        .collect()
}

/// Minimum of a non-empty sample (the bench's headline number: least
/// interference).
pub fn min_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a non-empty sample (the headline number for throughput
/// measurements, where bigger is better).
pub fn max_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Arithmetic mean of a non-empty sample.
pub fn mean_of(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Spawns one thread per trace, releases them together through a barrier,
/// and reports the wall-clock span from the first client's start to the
/// last client's finish.  Clients time themselves (returning their own
/// start/end instants) because an outside observer's clock can start late:
/// on a loaded or single-core machine the observer may be descheduled
/// through the barrier wakeup while the clients run — and even finish.
///
/// Generic over the trace element, so the same driver serves the
/// `(OpKind, key)` traces of the point benches and the [`workloads::ReadOp`]
/// traces of the range bench.
pub fn drive_clients<T, F, G>(traces: &[Vec<T>], mut client: F) -> f64
where
    T: Clone,
    F: FnMut(Vec<T>, Arc<Barrier>) -> G,
    G: FnOnce() -> (Instant, Instant) + Send + 'static,
{
    let barrier = Arc::new(Barrier::new(traces.len()));
    let handles: Vec<_> = traces
        .iter()
        .map(|trace| thread::spawn(client(trace.clone(), Arc::clone(&barrier))))
        .collect();
    let spans: Vec<(Instant, Instant)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let start = spans
        .iter()
        .map(|s| s.0)
        .min()
        .expect("at least one client");
    let end = spans
        .iter()
        .map(|s| s.1)
        .max()
        .expect("at least one client");
    (end - start).as_secs_f64()
}

/// Ceiling, in ns/op, that a disabled [`obs::Obs`] guard may add to a hot
/// loop (the observability layer's documented overhead contract).
pub const DISABLED_OVERHEAD_CEILING_NS: f64 = 2.0;

/// Measures the disabled-guard overhead and, in release builds, panics if
/// it reaches [`DISABLED_OVERHEAD_CEILING_NS`].  Returns the measured
/// ns/op (clamped at zero: timer jitter can make the raw difference
/// slightly negative).  Debug builds only measure — an unoptimised branch
/// is not the artefact the contract covers.
pub fn assert_disabled_overhead() -> f64 {
    let ns = obs::measure_disabled_overhead(2_000_000, 5).max(0.0);
    if !cfg!(debug_assertions) {
        assert!(
            ns < DISABLED_OVERHEAD_CEILING_NS,
            "disabled-instrumentation overhead {ns:.3} ns/op breaches the \
             {DISABLED_OVERHEAD_CEILING_NS} ns/op contract"
        );
    }
    ns
}

/// Renders a [`PoolMetrics`] snapshot as a JSON object: pool-wide totals,
/// the per-worker counter rows, and the join-latency histogram.
pub fn pool_metrics_json(m: &PoolMetrics) -> String {
    let totals = m.totals();
    let mut json = String::new();
    json.push_str(&format!(
        "{{\"enabled\": {}, \"totals\": {{\"steal_success\": {}, \"steal_empty\": {}, \
         \"sleeps\": {}, \"wakes\": {}, \"jobs_executed\": {}}}, \"workers\": [",
        m.enabled,
        totals.steal_success,
        totals.steal_empty,
        totals.sleeps,
        totals.wakes,
        totals.jobs_executed
    ));
    for (i, w) in m.workers.iter().enumerate() {
        json.push_str(&format!(
            "{}{{\"steal_success\": {}, \"steal_empty\": {}, \"sleeps\": {}, \
             \"wakes\": {}, \"jobs_executed\": {}}}",
            if i > 0 { ", " } else { "" },
            w.steal_success,
            w.steal_empty,
            w.sleeps,
            w.wakes,
            w.jobs_executed
        ));
    }
    json.push_str(&format!(
        "], \"join_latency_ns\": {}}}",
        m.join_latency.to_json()
    ));
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers_agree_on_simple_samples() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(min_of(&xs), 1.0);
        assert_eq!(max_of(&xs), 3.0);
        assert_eq!(mean_of(&xs), 2.0);
        let times = time_reps(4, || std::hint::black_box(()));
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn drive_clients_spans_cover_all_threads() {
        let traces = vec![vec![(workloads::OpKind::Contains, 1u64)]; 3];
        let secs = drive_clients(&traces, |_trace, barrier| {
            move || {
                barrier.wait();
                let start = Instant::now();
                (start, Instant::now())
            }
        });
        assert!(secs >= 0.0);
    }

    #[test]
    fn overhead_check_reports_a_finite_number() {
        // Debug builds measure without asserting the release contract.
        let ns = obs::measure_disabled_overhead(10_000, 2).max(0.0);
        assert!(ns.is_finite());
    }

    #[test]
    fn pool_metrics_json_embeds_totals_and_workers() {
        let pool = forkjoin::Pool::builder()
            .num_threads(1)
            .metrics(true)
            .build()
            .unwrap();
        pool.install(|| forkjoin::join(|| (), || ()));
        let json = pool_metrics_json(&pool.metrics());
        assert!(json.contains("\"enabled\": true"), "{json}");
        assert!(json.contains("\"totals\""), "{json}");
        assert!(json.contains("\"join_latency_ns\""), "{json}");
    }
}
