//! Deterministic benchmark: `pbist::IstSet` vs `baselines::SortedArraySet`
//! across key distributions and thread counts, through the shared
//! [`batchapi::BatchedSet`] trait.
//!
//! Timing runs on trees built **without** metrics (the default); a separate
//! telemetry pass replays each distribution's batches once on a
//! metrics-enabled tree and embeds the nodes-touched / leaves-edited /
//! rebuild counters in the JSON — the algorithmic work profile behind the
//! wall-clock numbers — alongside the measured disabled-instrumentation
//! overhead (asserted under the 2 ns/op contract in release builds).
//!
//! Std-only (`std::time::Instant`), seeded workloads, fixed configuration —
//! two runs on the same machine measure the same work.  Emits one line per
//! measurement to stdout and writes the full result set to
//! `BENCH_pbist.json` in the current directory.
//!
//! ```sh
//! cargo run --release --bin bench_pbist
//! # CI smoke: tiny sizes, one repetition
//! BENCH_PBIST_QUICK=1 cargo run --release --bin bench_pbist
//! ```

use std::time::Instant;

use pbist_repro::{
    baselines::SortedArraySet,
    batchapi::{Batch, BatchedSet},
    bench_util::{assert_disabled_overhead, elapsed_ms, mean_of, min_of},
    forkjoin::Pool,
    pbist::{IstMetricsSnapshot, IstSet},
    workloads,
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys in the pre-built set.
    num_keys: usize,
    /// Operations per batch.
    batch_len: usize,
    /// Timed repetitions per measurement; the minimum is reported.
    reps: usize,
    /// Key universe (width scales with `num_keys` so hit rates match).
    key_range_end: u64,
}

const FULL: Config = Config {
    num_keys: 100_000,
    batch_len: 10_000,
    reps: 3,
    key_range_end: 10_000_000,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    batch_len: 500,
    reps: 1,
    key_range_end: 500_000,
};

/// Zipf exponent for the skewed distribution.
const ZIPF_THETA: f64 = 0.9;

/// Pool size for the telemetry pass (the counters are thread-count
/// independent: a joint traversal touches each node once either way).
const TELEMETRY_THREADS: usize = 4;

struct Measurement {
    structure: &'static str,
    dist: &'static str,
    threads: usize,
    op: &'static str,
    best_ms: f64,
    mean_ms: f64,
}

/// Per-distribution IST work profile from the telemetry pass: the metric
/// delta attributable to each batched operation.
struct IstTelemetry {
    dist: &'static str,
    contains: IstMetricsSnapshot,
    insert: IstMetricsSnapshot,
    remove: IstMetricsSnapshot,
}

fn main() {
    let quick = std::env::var_os("BENCH_PBIST_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let key_range = 0..cfg.key_range_end;
    let base_keys = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, key_range.clone());

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    // Query batches per distribution.  Zipf queries are drawn from the key
    // universe itself (hot-key reads); the uniform insert batch doubles as
    // the update batch for both distributions so update measurements stay
    // comparable.
    let uniform_queries = Batch::from_unsorted(workloads::uniform_keys(
        0xBEEF,
        cfg.batch_len,
        key_range.clone(),
    ));
    let mut zipf = workloads::ZipfSampler::new(0x21BF, base_keys.len(), ZIPF_THETA);
    let zipf_queries = Batch::from_unsorted(
        zipf.take(cfg.batch_len)
            .into_iter()
            .map(|rank| base_keys[rank])
            .collect(),
    );
    let update_batch =
        Batch::from_unsorted(workloads::uniform_keys(0xD00D, cfg.batch_len, key_range));

    let mut results = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let pool = Pool::new(threads).expect("pool");
        for (dist, queries) in [("uniform", &uniform_queries), ("zipf", &zipf_queries)] {
            for structure in ["ist", "sorted_array"] {
                let runs = match structure {
                    "ist" => {
                        // Timing trees keep metrics off (the default).
                        let set = pool.install(|| IstSet::from_unsorted(base_keys.clone()));
                        bench_set(&pool, set, queries, &update_batch, cfg.reps)
                    }
                    _ => {
                        let set = SortedArraySet::from_unsorted(base_keys.clone());
                        bench_set(&pool, set, queries, &update_batch, cfg.reps)
                    }
                };
                for (op, best_ms, mean_ms) in runs {
                    let m = Measurement {
                        structure,
                        dist,
                        threads,
                        op,
                        best_ms,
                        mean_ms,
                    };
                    println!(
                        "{:>12} {:>7} threads={} {:>8}: best {:8.3} ms  mean {:8.3} ms",
                        m.structure, m.dist, m.threads, m.op, m.best_ms, m.mean_ms
                    );
                    results.push(m);
                }
            }
        }
    }

    // Telemetry pass: replay each distribution's batches once on a
    // metrics-enabled tree.  Separate from the timing loop so the counters
    // cost nothing in the numbers above.
    let pool = Pool::new(TELEMETRY_THREADS).expect("telemetry pool");
    let telemetry: Vec<IstTelemetry> = [("uniform", &uniform_queries), ("zipf", &zipf_queries)]
        .map(|(dist, queries)| {
            let t = collect_ist_telemetry(&pool, &base_keys, dist, queries, &update_batch);
            println!(
                "telemetry {dist}: contains touched {} nodes, insert edited {} leaves, \
                 remove rebuilt {} subtrees ({} keys)",
                t.contains.nodes_touched,
                t.insert.leaves_edited,
                t.remove.rebuilds,
                t.remove.rebuild_keys
            );
            t
        })
        .into();

    let json = render_json(&cfg, quick, &results, overhead_ns, &telemetry);
    std::fs::write("BENCH_pbist.json", &json).expect("write BENCH_pbist.json");
    println!("wrote BENCH_pbist.json ({} measurements)", results.len());
}

/// Times `batch_contains` / `batch_insert` / `batch_remove` on `set` inside
/// `pool`.  Updates run on a clone per repetition so every rep (and every
/// run of the binary) measures identical work.
fn bench_set<S>(
    pool: &Pool,
    set: S,
    queries: &Batch<u64>,
    updates: &Batch<u64>,
    reps: usize,
) -> Vec<(&'static str, f64, f64)>
where
    S: BatchedSet<u64> + Clone + Send + Sync,
{
    let mut out = Vec::new();

    let contains_ms: Vec<f64> = (0..reps)
        .map(|_| {
            pool.install(|| {
                let start = Instant::now();
                let hits = set.batch_contains(queries);
                let elapsed = elapsed_ms(start);
                assert_eq!(hits.len(), queries.len());
                elapsed
            })
        })
        .collect();
    out.push(("contains", min_of(&contains_ms), mean_of(&contains_ms)));

    let mut insert_ms = Vec::with_capacity(reps);
    let mut remove_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut scratch = set.clone();
        let (ins, rem) = pool.install(|| {
            let start = Instant::now();
            let inserted = scratch.batch_insert(updates);
            let ins = elapsed_ms(start);
            assert_eq!(inserted.len(), updates.len());
            let start = Instant::now();
            let removed = scratch.batch_remove(updates);
            let rem = elapsed_ms(start);
            assert!(removed.iter().all(|&r| r));
            (ins, rem)
        });
        insert_ms.push(ins);
        remove_ms.push(rem);
    }
    out.push(("insert", min_of(&insert_ms), mean_of(&insert_ms)));
    out.push(("remove", min_of(&remove_ms), mean_of(&remove_ms)));
    out
}

/// One metrics-enabled replay of a distribution's batches, attributing the
/// counter deltas to the contains / insert / remove phases.
fn collect_ist_telemetry(
    pool: &Pool,
    base_keys: &[u64],
    dist: &'static str,
    queries: &Batch<u64>,
    updates: &Batch<u64>,
) -> IstTelemetry {
    let mut set = pool
        .install(|| IstSet::from_unsorted(base_keys.to_vec()))
        .with_metrics(true);
    let before = set.metrics();
    pool.install(|| {
        let hits = set.batch_contains(queries);
        assert_eq!(hits.len(), queries.len());
    });
    let after_contains = set.metrics();
    pool.install(|| {
        set.batch_insert(updates);
    });
    let after_insert = set.metrics();
    pool.install(|| {
        set.batch_remove(updates);
    });
    let after_remove = set.metrics();
    let t = IstTelemetry {
        dist,
        contains: after_contains.delta(&before),
        insert: after_insert.delta(&after_contains),
        remove: after_remove.delta(&after_insert),
    };
    assert!(
        t.contains.nodes_touched > 0,
        "telemetry pass touched no nodes"
    );
    assert!(
        t.insert.leaves_edited > 0,
        "telemetry insert edited no leaves"
    );
    t
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    telemetry: &[IstTelemetry],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pbist\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"batch_len\": {}, \"reps\": {}, \"key_range\": [0, {}], \"zipf_theta\": {ZIPF_THETA}}},\n",
        cfg.num_keys, cfg.batch_len, cfg.reps, cfg.key_range_end
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"structure\": \"{}\", \"dist\": \"{}\", \"threads\": {}, \"op\": \"{}\", \"best_ms\": {:.4}, \"mean_ms\": {:.4}}}{}\n",
            m.structure,
            m.dist,
            m.threads,
            m.op,
            m.best_ms,
            m.mean_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"ist\": [\n");
    for (i, t) in telemetry.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"dist\": \"{}\", \"contains\": {}, \"insert\": {}, \"remove\": {}}}{}\n",
            t.dist,
            t.contains.to_json(),
            t.insert.to_json(),
            t.remove.to_json(),
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
