//! Durability benchmark: `durable::DurableSet` (write-ahead log + group
//! commit over `combine::ConcurrentSet` over `pbist::IstSet`) against the
//! in-memory front-end it wraps.
//!
//! The interesting knob is `group_commit`: at 1 every mutation fsyncs
//! before it returns; at `n` up to `n` WAL records ride one fsync.  The
//! bench reports keys/sec and — the deterministic number the one-core
//! bench box can stand behind — **fsyncs per operation**, which must fall
//! monotonically as the group grows while throughput rises toward the
//! in-memory baseline.  A separate pass measures recovery (open-time
//! snapshot load + log replay) against log length.
//!
//! Deterministic (seeded traces, fixed configuration), std-only timing;
//! one line per measurement on stdout, full results plus the `durable.*`
//! metric registry in `BENCH_durable.json`.
//!
//! ```sh
//! cargo run --release --bin bench_durable
//! # CI smoke: tiny sizes, one repetition
//! BENCH_DURABLE_QUICK=1 cargo run --release --bin bench_durable
//! ```

use std::path::PathBuf;
use std::time::Instant;

use pbist_repro::{
    batchapi::Batch,
    bench_util::{elapsed_ms, max_of, mean_of, min_of},
    combine::{ConcurrentSet, Options},
    durable::{DurableOptions, DurableSet},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ClientTrace, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into the set (half the key universe).
    num_keys: usize,
    /// Single-key operations issued per timed run.
    ops: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
    /// Log lengths (in WAL records) for the recovery-time pass.
    recovery_records: &'static [u64],
}

const FULL: Config = Config {
    num_keys: 50_000,
    ops: 12_000,
    reps: 3,
    recovery_records: &[1_000, 4_000, 16_000],
};

const QUICK: Config = Config {
    num_keys: 2_000,
    ops: 600,
    reps: 1,
    recovery_records: &[200, 800],
};

/// Group-commit sizes measured (`combine_ist` is the no-durability
/// baseline alongside).
const GROUPS: [u64; 4] = [1, 8, 64, 256];
/// Update-heavy operation mix: 2 inserts : 2 removes : 1 contains.
const MIX: workloads::OpMix = (2, 2, 1);

struct Measurement {
    structure: &'static str,
    group_commit: Option<u64>,
    best_ops_per_sec: f64,
    mean_ops_per_sec: f64,
    /// fsyncs issued per operation (deterministic; `None` for the
    /// in-memory baseline).
    fsyncs_per_op: Option<f64>,
    /// WAL records appended per operation (ineffective ops write none).
    records_per_op: Option<f64>,
    /// The run's full `durable.*` registry snapshot as JSON.
    metrics_json: Option<String>,
}

struct Recovery {
    records: u64,
    best_ms: f64,
    mean_ms: f64,
    records_per_sec: f64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let quick = std::env::var_os("BENCH_DURABLE_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = 0..(cfg.num_keys as u64 * 2);

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());
    // One client: the bench box has one core, so the honest numbers are
    // per-op costs and fsync counts, not contention scaling.
    let trace = workloads::client_traces(0xD0_C0FFEE, 1, cfg.ops, range, MIX).remove(0);

    let mut results = Vec::new();
    for &group in &GROUPS {
        let mut runs = Vec::with_capacity(cfg.reps);
        let mut fsyncs_per_op = 0.0;
        let mut records_per_op = 0.0;
        let mut metrics_json = String::new();
        for _ in 0..cfg.reps {
            let (ops_per_sec, fpo, rpo, json) = run_durable(&prefill, &trace, group);
            runs.push(ops_per_sec);
            fsyncs_per_op = fpo;
            records_per_op = rpo;
            metrics_json = json;
        }
        let m = Measurement {
            structure: "durable_ist",
            group_commit: Some(group),
            best_ops_per_sec: max_of(&runs),
            mean_ops_per_sec: mean_of(&runs),
            fsyncs_per_op: Some(fsyncs_per_op),
            records_per_op: Some(records_per_op),
            metrics_json: Some(metrics_json),
        };
        println!(
            "{:>12} group={:>3}: best {:9.0} ops/s  mean {:9.0} ops/s  {:.4} fsyncs/op  {:.4} records/op",
            m.structure, group, m.best_ops_per_sec, m.mean_ops_per_sec, fsyncs_per_op, records_per_op
        );
        results.push(m);
    }
    {
        let mut runs = Vec::with_capacity(cfg.reps);
        for _ in 0..cfg.reps {
            runs.push(run_baseline(&prefill, &trace));
        }
        let m = Measurement {
            structure: "combine_ist",
            group_commit: None,
            best_ops_per_sec: max_of(&runs),
            mean_ops_per_sec: mean_of(&runs),
            fsyncs_per_op: None,
            records_per_op: None,
            metrics_json: None,
        };
        println!(
            "{:>12} in-memory: best {:9.0} ops/s  mean {:9.0} ops/s",
            m.structure, m.best_ops_per_sec, m.mean_ops_per_sec
        );
        results.push(m);
    }

    // The monotone claim is about syscall counts, not wall clock: same
    // trace, same records, so fsyncs/op must strictly fall as the group
    // grows.  (Throughput should rise too, but on a shared one-core box
    // that trend is reported, not asserted.)
    let fpo: Vec<f64> = results.iter().filter_map(|m| m.fsyncs_per_op).collect();
    assert!(
        fpo.windows(2).all(|w| w[0] > w[1]),
        "fsyncs/op must decrease monotonically with group size: {fpo:?}"
    );

    let recovery: Vec<Recovery> = cfg
        .recovery_records
        .iter()
        .map(|&n| run_recovery(n, cfg.reps))
        .collect();
    for r in &recovery {
        println!(
            "    recovery {:>6} records: best {:8.2} ms  mean {:8.2} ms  ({:9.0} records/s)",
            r.records, r.best_ms, r.mean_ms, r.records_per_sec
        );
    }

    let json = render_json(&cfg, quick, &results, &recovery);
    std::fs::write("BENCH_durable.json", &json).expect("write BENCH_durable.json");
    println!("wrote BENCH_durable.json ({} measurements)", results.len());
}

/// One timed durable run.  Returns (ops/sec, fsyncs/op, records/op, and
/// the `durable.*` registry snapshot JSON).
fn run_durable(prefill: &[u64], trace: &ClientTrace, group: u64) -> (f64, f64, f64, String) {
    let dir = scratch_dir(&format!("g{group}"));
    let set: DurableSet<u64, IstSet<u64>> = DurableSet::open(
        &dir,
        Pool::new(1).expect("pool"),
        DurableOptions {
            group_commit: group,
            ..DurableOptions::default()
        },
        |batch| IstSet::from_batch(&batch),
    )
    .expect("open durable set");
    set.batch_insert(&Batch::from_unsorted(prefill.to_vec()))
        .expect("prefill");
    set.sync().expect("prefill sync");
    let before = set.metrics();
    let fsyncs0 = before.counter("durable.fsyncs").unwrap_or(0);
    let records0 = before.counter("durable.records_appended").unwrap_or(0);

    let start = Instant::now();
    for &(kind, key) in trace {
        match kind {
            OpKind::Insert => set.insert(key).expect("insert"),
            OpKind::Remove => set.remove(&key).expect("remove"),
            OpKind::Contains => set.contains(&key).expect("contains"),
        };
    }
    // Flush the tail of the last group so every group size pays for full
    // durability of the whole trace.
    set.sync().expect("final sync");
    let secs = start.elapsed().as_secs_f64();

    let after = set.metrics();
    let fsyncs = after.counter("durable.fsyncs").unwrap_or(0) - fsyncs0;
    let records = after.counter("durable.records_appended").unwrap_or(0) - records0;
    let json = after.to_json();
    drop(set);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    let ops = trace.len() as f64;
    (ops / secs, fsyncs as f64 / ops, records as f64 / ops, json)
}

/// One timed run of the in-memory front-end the durable tier wraps.
fn run_baseline(prefill: &[u64], trace: &ClientTrace) -> f64 {
    let set = ConcurrentSet::with_options(
        IstSet::from_unsorted(prefill.to_vec()),
        Pool::new(1).expect("pool"),
        Options::default(),
    );
    let start = Instant::now();
    for &(kind, key) in trace {
        match kind {
            OpKind::Insert => set.insert(key),
            OpKind::Remove => set.remove(&key),
            OpKind::Contains => set.contains(&key),
        };
    }
    trace.len() as f64 / start.elapsed().as_secs_f64()
}

/// Builds a log of exactly `n` single-op records, then times recovery
/// (snapshot load + replay + backend rebuild) over `reps` opens.
fn run_recovery(n: u64, reps: usize) -> Recovery {
    let dir = scratch_dir(&format!("recovery-{n}"));
    {
        let set: DurableSet<u64, IstSet<u64>> = DurableSet::open(
            &dir,
            Pool::new(1).expect("pool"),
            DurableOptions {
                group_commit: 256,
                ..DurableOptions::default()
            },
            |batch| IstSet::from_batch(&batch),
        )
        .expect("open for build");
        for i in 0..n {
            set.insert(i).expect("build insert");
        }
        set.close().expect("close build");
    }

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let pool = Pool::new(1).expect("pool");
        let start = Instant::now();
        let set: DurableSet<u64, IstSet<u64>> =
            DurableSet::open(&dir, pool, DurableOptions::default(), |batch| {
                IstSet::from_batch(&batch)
            })
            .expect("recover");
        let ms = elapsed_ms(start);
        assert_eq!(set.len() as u64, n, "recovery lost records");
        times.push(ms);
        drop(set);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    let best_ms = min_of(&times);
    Recovery {
        records: n,
        best_ms,
        mean_ms: mean_of(&times),
        records_per_sec: n as f64 / (best_ms / 1e3),
    }
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    recovery: &[Recovery],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"durable\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"ops\": {}, \"reps\": {}, \"mix\": [2, 2, 1], \"groups\": [1, 8, 64, 256]}},\n",
        cfg.num_keys, cfg.ops, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let group = m
            .group_commit
            .map(|g| g.to_string())
            .unwrap_or_else(|| "null".into());
        let fpo = m
            .fsyncs_per_op
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "null".into());
        let rpo = m
            .records_per_op
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "null".into());
        let metrics = m.metrics_json.clone().unwrap_or_else(|| "null".into());
        json.push_str(&format!(
            "    {{\"structure\": \"{}\", \"group_commit\": {group}, \"best_ops_per_sec\": {:.0}, \"mean_ops_per_sec\": {:.0}, \"fsyncs_per_op\": {fpo}, \"records_per_op\": {rpo}, \"metrics\": {metrics}}}{}\n",
            m.structure,
            m.best_ops_per_sec,
            m.mean_ops_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"records\": {}, \"best_ms\": {:.3}, \"mean_ms\": {:.3}, \"records_per_sec\": {:.0}}}{}\n",
            r.records,
            r.best_ms,
            r.mean_ms,
            r.records_per_sec,
            if i + 1 < recovery.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}
