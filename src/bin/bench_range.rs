//! Ordered-query benchmark: range scans over the flat-combining
//! front-end's wait-free snapshot read path
//! ([`combine::Options::snapshot_reads`], the default) against the
//! round-entering path (`snapshot_reads: false`), on the same
//! `pbist::IstSet` backing, under point/scan read mixes.
//!
//! Each scan materialises the keys in a half-open interval
//! (`ConcurrentSet::range_keys`), so this measures what the published
//! snapshot buys for *long* reads: the snapshot arm descends one borrowed
//! tree per scan, while the round arm must enter the combiner protocol —
//! and a long scan inside a round holds every concurrent writer up.
//! Spans come in a short and a long flavour to separate per-op overhead
//! from per-key copy cost.
//!
//! A separate telemetry pass per mix re-runs the snapshot arm and embeds
//! the front-end's registry snapshot (including `combine.snapshot_reads`)
//! in the JSON; the binary itself asserts that scans returned keys and
//! that the snapshot path actually served reads, so a quick run doubles
//! as the CI smoke for the ordered-query surface.
//!
//! Deterministic (seeded per-client traces, fixed configuration), std-only
//! timing; one line per measurement on stdout, full results in
//! `BENCH_range.json`.
//!
//! ```sh
//! cargo run --release --bin bench_range
//! # CI smoke: tiny sizes, one repetition
//! BENCH_RANGE_QUICK=1 cargo run --release --bin bench_range
//! ```

use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pbist_repro::{
    bench_util::{assert_disabled_overhead, mean_of, min_of},
    combine::{ConcurrentSet, Options},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ReadOp},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into the set.
    num_keys: usize,
    /// Operations each client thread issues per run.
    ops_per_client: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    num_keys: 100_000,
    ops_per_client: 8_000,
    reps: 3,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    ops_per_client: 500,
    reps: 2,
};

/// Client-thread counts measured.
const CLIENT_COUNTS: [usize; 2] = [1, 4];
/// Scan spans measured, in key-space units (the key range is twice the
/// key count, so a span of `s` returns ~`s / 2` keys).
const SPANS: [(&str, u64); 2] = [("short", 64), ("long", 4096)];
/// Scan shares measured, in permille: a mostly-point mix and a pure-scan
/// workload.
const SCAN_PERMILLES: [u32; 2] = [100, 1000];
/// Workers in the combiner's fork-join pool.
const POOL_THREADS: usize = 2;

struct Measurement {
    path: &'static str,
    span: &'static str,
    scan_permille: u32,
    clients: usize,
    best_ns_per_op: f64,
    mean_ns_per_op: f64,
    /// Keys returned by scans across one run — the non-empty-scan proof.
    scanned_keys: u64,
}

/// One mix's instrumented snapshot-arm run: the front-end registry
/// snapshot, carrying `combine.snapshot_reads`.
struct Telemetry {
    span: &'static str,
    scan_permille: u32,
    clients: usize,
    snapshot_reads: u64,
    combine_json: String,
}

fn main() {
    let quick = std::env::var_os("BENCH_RANGE_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = 0..(cfg.num_keys as u64 * 2);

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());

    let mut results = Vec::new();
    let mut telemetry = Vec::new();
    for &clients in &CLIENT_COUNTS {
        for &(span_name, span) in &SPANS {
            for &scan_permille in &SCAN_PERMILLES {
                // Per-client seeds derive from one root seed, so both
                // read paths replay identical traffic.
                let seed = 0xCAFE ^ (clients as u64) << 24 ^ span << 10 ^ scan_permille as u64;
                let traces = workloads::scan_client_traces(
                    seed,
                    clients,
                    cfg.ops_per_client,
                    range.clone(),
                    span,
                    scan_permille,
                );
                let total_ops = (clients * cfg.ops_per_client) as f64;
                for (path, snapshot_reads) in [("snapshot", true), ("round", false)] {
                    let mut scanned = 0u64;
                    let runs: Vec<f64> = (0..cfg.reps)
                        .map(|_| {
                            let (secs, keys) = run_scans(&prefill, &traces, snapshot_reads);
                            scanned = keys;
                            secs * 1e9 / total_ops
                        })
                        .collect();
                    assert!(
                        scanned > 0,
                        "scans over a half-full key space returned no keys \
                         ({path}/{span_name}/{scan_permille}‰/{clients} clients)"
                    );
                    let m = Measurement {
                        path,
                        span: span_name,
                        scan_permille,
                        clients,
                        best_ns_per_op: min_of(&runs),
                        mean_ns_per_op: mean_of(&runs),
                        scanned_keys: scanned,
                    };
                    println!(
                        "{:>9} span={:<5} scans={:>4}‰ clients={}: best {:8.1} ns/op  \
                         mean {:8.1} ns/op  ({} keys scanned)",
                        m.path,
                        m.span,
                        m.scan_permille,
                        m.clients,
                        m.best_ns_per_op,
                        m.mean_ns_per_op,
                        m.scanned_keys
                    );
                    results.push(m);
                }
                let t =
                    run_snapshot_telemetry(&prefill, &traces, span_name, scan_permille, clients);
                println!(
                    "  telemetry span={:<5} scans={:>4}‰ clients={}: {} snapshot reads",
                    t.span, t.scan_permille, t.clients, t.snapshot_reads
                );
                telemetry.push(t);
            }
        }
    }

    let json = render_json(&cfg, quick, &results, overhead_ns, &telemetry);
    std::fs::write("BENCH_range.json", &json).expect("write BENCH_range.json");
    println!("wrote BENCH_range.json ({} measurements)", results.len());
}

/// One timed run over `traces` with the chosen read path.  Returns elapsed
/// seconds and the total keys the scans returned (the anti-optimisation
/// sink doubling as the non-empty-scan witness).
fn run_scans(prefill: &[u64], traces: &[Vec<ReadOp>], snapshot_reads: bool) -> (f64, u64) {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options {
            snapshot_reads,
            ..Options::default()
        },
    ));
    let scanned = Arc::new(AtomicU64::new(0));
    let secs = pbist_repro::bench_util::drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        let scanned = Arc::clone(&scanned);
        move || {
            barrier.wait();
            let mut keys = 0u64;
            let start = Instant::now();
            for op in trace {
                match op {
                    ReadOp::Point(key) => {
                        std::hint::black_box(set.contains(&key));
                    }
                    ReadOp::Scan(lo, hi) => {
                        let hits = set.range_keys(Bound::Included(&lo), Bound::Excluded(&hi));
                        keys += std::hint::black_box(hits).len() as u64;
                    }
                }
            }
            let end = Instant::now();
            scanned.fetch_add(keys, Ordering::Relaxed);
            (start, end)
        }
    });
    (secs, scanned.load(Ordering::Relaxed))
}

/// One untimed instrumented run of the snapshot arm, capturing the
/// registry snapshot the CI smoke asserts on.
fn run_snapshot_telemetry(
    prefill: &[u64],
    traces: &[Vec<ReadOp>],
    span: &'static str,
    scan_permille: u32,
    clients: usize,
) -> Telemetry {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options::default(),
    ));
    pbist_repro::bench_util::drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for op in trace {
                match op {
                    ReadOp::Point(key) => {
                        std::hint::black_box(set.contains(&key));
                    }
                    ReadOp::Scan(lo, hi) => {
                        std::hint::black_box(
                            set.range_keys(Bound::Included(&lo), Bound::Excluded(&hi)),
                        );
                    }
                }
            }
            (start, Instant::now())
        }
    });
    let snap = set.metrics();
    let snapshot_reads = snap.counter("combine.snapshot_reads").unwrap_or(0);
    assert!(
        snapshot_reads > 0,
        "telemetry pass answered no reads from the snapshot"
    );
    Telemetry {
        span,
        scan_permille,
        clients,
        snapshot_reads,
        combine_json: snap.to_json(),
    }
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    telemetry: &[Telemetry],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"range\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"ops_per_client\": {}, \"reps\": {}, \"spans\": {{\"short\": 64, \"long\": 4096}}, \"scan_permilles\": [100, 1000], \"pool_threads\": {POOL_THREADS}}},\n",
        cfg.num_keys, cfg.ops_per_client, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"span\": \"{}\", \"scan_permille\": {}, \"clients\": {}, \"best_ns_per_op\": {:.1}, \"mean_ns_per_op\": {:.1}, \"scanned_keys\": {}}}{}\n",
            m.path,
            m.span,
            m.scan_permille,
            m.clients,
            m.best_ns_per_op,
            m.mean_ns_per_op,
            m.scanned_keys,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"snapshot_runs\": [\n");
    for (i, t) in telemetry.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"span\": \"{}\", \"scan_permille\": {}, \"clients\": {}, \"snapshot_reads\": {}, \"combine\": {}}}{}\n",
            t.span,
            t.scan_permille,
            t.clients,
            t.snapshot_reads,
            t.combine_json,
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
