//! Wait-free read benchmark: the snapshot read path
//! ([`combine::Options::snapshot_reads`], the default) against the
//! round-entering read path (`snapshot_reads: false`) on the same
//! flat-combining front-end over `pbist::IstSet`, under read-dominated
//! single-key traffic at 90/99/100% read mixes.
//!
//! This measures what the published-snapshot path buys for reads: a
//! snapshot `contains` is two atomic loads plus a tree descent, while the
//! round path must elect a combiner (or enqueue and wait for one) per
//! read.  At the 100%-read mix every operation is a read, so ns/op *is*
//! read ns/op — the number the CI smoke asserts on.
//!
//! A separate telemetry pass per mix re-runs the snapshot arm and embeds
//! the front-end's registry snapshot (including the new
//! `combine.snapshot_reads` counter and `combine.snapshot_lag` histogram)
//! in the JSON.
//!
//! Deterministic (seeded per-client traces, fixed configuration), std-only
//! timing; one line per measurement on stdout, full results in
//! `BENCH_read.json`.
//!
//! ```sh
//! cargo run --release --bin bench_read
//! # CI smoke: tiny sizes, one repetition
//! BENCH_READ_QUICK=1 cargo run --release --bin bench_read
//! ```

use std::sync::Arc;
use std::time::Instant;

use pbist_repro::{
    bench_util::{assert_disabled_overhead, mean_of, min_of},
    combine::{ConcurrentSet, Options},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ClientTrace, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into the set.
    num_keys: usize,
    /// Operations each client thread issues per run.
    ops_per_client: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    num_keys: 100_000,
    ops_per_client: 40_000,
    reps: 3,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    ops_per_client: 2_000,
    reps: 2,
};

/// Client-thread counts measured.
const CLIENT_COUNTS: [usize; 2] = [1, 4];
/// Read mixes measured: percentage of contains ops, with the remaining
/// updates split evenly between inserts and removes.
const READ_MIXES: [(u32, workloads::OpMix); 3] =
    [(90, (1, 1, 18)), (99, (1, 1, 198)), (100, (0, 0, 1))];
/// Workers in the combiner's fork-join pool.
const POOL_THREADS: usize = 2;

struct Measurement {
    path: &'static str,
    read_pct: u32,
    clients: usize,
    best_ns_per_op: f64,
    mean_ns_per_op: f64,
}

/// One mix's instrumented snapshot-arm run: the front-end registry
/// snapshot, carrying `combine.snapshot_reads` and `combine.snapshot_lag`.
struct Telemetry {
    read_pct: u32,
    clients: usize,
    snapshot_reads: u64,
    combine_json: String,
}

fn main() {
    let quick = std::env::var_os("BENCH_READ_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = 0..(cfg.num_keys as u64 * 2);

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());

    let mut results = Vec::new();
    let mut telemetry = Vec::new();
    for &clients in &CLIENT_COUNTS {
        for &(read_pct, mix) in &READ_MIXES {
            // Per-client seeds derive from one root seed, so both read
            // paths replay identical traffic.
            let seed = 0xBEEF ^ (clients as u64) << 16 ^ read_pct as u64;
            let traces =
                workloads::client_traces(seed, clients, cfg.ops_per_client, range.clone(), mix);
            let total_ops = (clients * cfg.ops_per_client) as f64;
            for (path, snapshot_reads) in [("snapshot", true), ("round", false)] {
                let runs: Vec<f64> = (0..cfg.reps)
                    .map(|_| run_combine(&prefill, &traces, snapshot_reads) * 1e9 / total_ops)
                    .collect();
                let m = Measurement {
                    path,
                    read_pct,
                    clients,
                    best_ns_per_op: min_of(&runs),
                    mean_ns_per_op: mean_of(&runs),
                };
                println!(
                    "{:>9} reads={:>3}% clients={}: best {:8.1} ns/op  mean {:8.1} ns/op",
                    m.path, m.read_pct, m.clients, m.best_ns_per_op, m.mean_ns_per_op
                );
                results.push(m);
            }
            let t = run_snapshot_telemetry(&prefill, &traces, read_pct, clients);
            println!(
                "  telemetry reads={:>3}% clients={}: {} snapshot reads",
                t.read_pct, t.clients, t.snapshot_reads
            );
            telemetry.push(t);
        }
    }

    let json = render_json(&cfg, quick, &results, overhead_ns, &telemetry);
    std::fs::write("BENCH_read.json", &json).expect("write BENCH_read.json");
    println!("wrote BENCH_read.json ({} measurements)", results.len());
}

/// One timed run over `traces` with the chosen read path.  Returns elapsed
/// seconds.
fn run_combine(prefill: &[u64], traces: &[ClientTrace], snapshot_reads: bool) -> f64 {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options {
            snapshot_reads,
            ..Options::default()
        },
    ));
    pbist_repro::bench_util::drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                match kind {
                    OpKind::Insert => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
            }
            (start, Instant::now())
        }
    })
}

/// One untimed instrumented run of the snapshot arm, capturing the
/// registry snapshot the CI smoke asserts on.
fn run_snapshot_telemetry(
    prefill: &[u64],
    traces: &[ClientTrace],
    read_pct: u32,
    clients: usize,
) -> Telemetry {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options::default(),
    ));
    pbist_repro::bench_util::drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                match kind {
                    OpKind::Insert => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
            }
            (start, Instant::now())
        }
    });
    let snap = set.metrics();
    let snapshot_reads = snap.counter("combine.snapshot_reads").unwrap_or(0);
    assert!(
        snapshot_reads > 0,
        "telemetry pass answered no reads from the snapshot"
    );
    Telemetry {
        read_pct,
        clients,
        snapshot_reads,
        combine_json: snap.to_json(),
    }
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    telemetry: &[Telemetry],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"read\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"ops_per_client\": {}, \"reps\": {}, \"read_mixes_pct\": [90, 99, 100], \"pool_threads\": {POOL_THREADS}}},\n",
        cfg.num_keys, cfg.ops_per_client, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"read_pct\": {}, \"clients\": {}, \"best_ns_per_op\": {:.1}, \"mean_ns_per_op\": {:.1}}}{}\n",
            m.path,
            m.read_pct,
            m.clients,
            m.best_ns_per_op,
            m.mean_ns_per_op,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"snapshot_runs\": [\n");
    for (i, t) in telemetry.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"read_pct\": {}, \"clients\": {}, \"snapshot_reads\": {}, \"combine\": {}}}{}\n",
            t.read_pct,
            t.clients,
            t.snapshot_reads,
            t.combine_json,
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
