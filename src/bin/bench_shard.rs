//! Sharded-service-tier benchmark: `service::ShardedSet` over 1/2/4/8
//! range-partitioned `combine::ConcurrentSet<_, IstSet>` shards, driven by
//! batch clients issuing sorted batches of uniform and zipf-skewed keys.
//!
//! The bench box is single-core, so wall-clock scaling across shard counts
//! is not the story here; the headline numbers are **algorithmic**: router
//! overhead in ns per `shard_of` call and per split key, and the
//! distribution counters — how a batch carves into per-shard sub-batches
//! (`service.subbatch_size`) and what round sizes each shard's combiner
//! commits (`combine.round_size`) as the shard count grows and as zipf
//! skew concentrates keys.
//!
//! Timed runs are uninstrumented; a separate telemetry pass per
//! configuration re-runs the tier and embeds the tier's `service.*`
//! snapshot and every shard's `combine.*` snapshot in the JSON, alongside
//! the measured disabled-instrumentation overhead (asserted under the
//! 2 ns/op contract in release builds).
//!
//! Deterministic (seeded scripts, fixed configuration), std-only timing;
//! one line per measurement on stdout, full results in `BENCH_shard.json`.
//!
//! ```sh
//! cargo run --release --bin bench_shard
//! # CI smoke: tiny sizes, one repetition
//! BENCH_SHARD_QUICK=1 cargo run --release --bin bench_shard
//! ```

use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use pbist_repro::{
    batchapi::Batch,
    bench_util::{assert_disabled_overhead, max_of, mean_of},
    combine::ConcurrentSet,
    forkjoin::Pool,
    pbist::IstSet,
    service::{HashRouter, RangeRouter, ShardRouter, ShardedOptions, ShardedSet},
    workloads::{self, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into the tier.
    num_keys: usize,
    /// Batches each batch client issues per run.
    batches_per_client: usize,
    /// Keys per batch (before dedup).
    batch_len: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    num_keys: 100_000,
    batches_per_client: 100,
    batch_len: 1_000,
    reps: 3,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    batches_per_client: 10,
    batch_len: 200,
    reps: 1,
};

/// Shard counts measured.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Batch clients driving the tier concurrently.
const BATCH_CLIENTS: usize = 2;
/// Update-heavy operation mix: 2 inserts : 2 removes : 1 contains.
const MIX: workloads::OpMix = (2, 2, 1);
/// Zipf exponent for the skewed distribution.
const ZIPF_THETA: f64 = 0.9;
/// Workers in each shard's fork-join pool.
const SHARD_POOL_THREADS: usize = 1;
/// Workers in the tier's split-execution pool.
const TIER_POOL_THREADS: usize = 2;
/// Batches of at least this many keys fan sub-batches out on the tier pool.
const PARALLEL_CUTOFF: usize = 256;

/// Key universe; prefilling half of it keeps update hit rates near 50%.
fn key_range(cfg: &Config) -> std::ops::Range<u64> {
    0..(cfg.num_keys as u64 * 2)
}

/// One batch client's pre-validated script.
type Script = Vec<(OpKind, Batch<u64>)>;

struct Measurement {
    dist: &'static str,
    shards: usize,
    best_keys_per_sec: f64,
    mean_keys_per_sec: f64,
}

/// One configuration's instrumented run: the tier's `service.*` snapshot
/// and each shard's `combine.*` snapshot.
struct Telemetry {
    dist: &'static str,
    shards: usize,
    service_json: String,
    shard_jsons: Vec<String>,
}

fn main() {
    let quick = std::env::var_os("BENCH_SHARD_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = key_range(&cfg);

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());

    let mut results = Vec::new();
    let mut telemetry = Vec::new();
    for &shards in &SHARD_COUNTS {
        for dist in ["uniform", "zipf"] {
            let seed = 0xBADC0DE ^ (shards as u64) << 8 ^ (dist.len() as u64);
            let scripts: Vec<Script> = (0..BATCH_CLIENTS as u64)
                .map(|client| {
                    let ops = match dist {
                        "uniform" => workloads::mixed_op_batches(
                            seed ^ client,
                            cfg.batches_per_client,
                            cfg.batch_len,
                            range.clone(),
                            MIX,
                        ),
                        _ => workloads::mixed_op_batches_zipf(
                            seed ^ client,
                            cfg.batches_per_client,
                            cfg.batch_len,
                            &prefill,
                            ZIPF_THETA,
                            MIX,
                        ),
                    };
                    ops.into_iter()
                        .map(|op| (op.kind, Batch::from_unsorted(op.keys)))
                        .collect()
                })
                .collect();
            let total_keys: usize = scripts
                .iter()
                .flat_map(|s| s.iter().map(|(_, b)| b.len()))
                .sum();

            let mut runs = Vec::with_capacity(cfg.reps);
            for _ in 0..cfg.reps {
                let secs = run_tier(&prefill, &scripts, shards, range.end);
                runs.push(total_keys as f64 / secs);
            }
            let m = Measurement {
                dist,
                shards,
                best_keys_per_sec: max_of(&runs),
                mean_keys_per_sec: mean_of(&runs),
            };
            println!(
                "{:>7} shards={}: best {:10.0} keys/s  mean {:10.0} keys/s",
                m.dist, m.shards, m.best_keys_per_sec, m.mean_keys_per_sec
            );
            results.push(m);

            // Telemetry pass: one untimed run over the same scripts,
            // separate so the timed numbers stay clean.
            let t = run_tier_telemetry(&prefill, &scripts, shards, range.end, dist);
            telemetry.push(t);
        }
    }

    let router_json = router_overhead_json(&cfg, &prefill, range.end);

    let json = render_json(&cfg, quick, &results, overhead_ns, &router_json, &telemetry);
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json ({} measurements)", results.len());
}

/// Builds a fresh range-partitioned tier prefilled with `prefill`.
fn build_tier(
    prefill: &[u64],
    shards: usize,
    key_max: u64,
) -> ShardedSet<u64, IstSet<u64>, RangeRouter<u64>> {
    let router = RangeRouter::new(shards, 0, key_max);
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &key in prefill {
        per_shard[router.shard_of(&key)].push(key);
    }
    ShardedSet::with_options(
        router,
        per_shard
            .into_iter()
            .map(|keys| {
                ConcurrentSet::new(
                    IstSet::from_unsorted(keys),
                    Pool::new(SHARD_POOL_THREADS).expect("shard pool"),
                )
            })
            .collect(),
        Pool::new(TIER_POOL_THREADS).expect("tier pool"),
        ShardedOptions {
            parallel_cutoff: PARALLEL_CUTOFF,
        },
    )
}

/// Releases one thread per script through a barrier and reports the span
/// from the first client's start to the last client's finish (clients time
/// themselves — see `bench_util::drive_clients` for why).
fn drive_batch_clients(
    set: &Arc<ShardedSet<u64, IstSet<u64>, RangeRouter<u64>>>,
    scripts: &[Script],
) -> f64 {
    let barrier = Arc::new(Barrier::new(scripts.len()));
    let spans: Vec<(Instant, Instant)> = thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let set = Arc::clone(set);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut out = Vec::new();
                    barrier.wait();
                    let start = Instant::now();
                    for (kind, batch) in script {
                        match kind {
                            OpKind::Insert => set.batch_insert_report(batch, &mut out),
                            OpKind::Remove => set.batch_remove_report(batch, &mut out),
                            OpKind::Contains => set.batch_contains_report(batch, &mut out),
                        }
                        black_box(&out);
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let start = spans.iter().map(|s| s.0).min().expect("a client");
    let end = spans.iter().map(|s| s.1).max().expect("a client");
    (end - start).as_secs_f64()
}

/// One timed run of the sharded tier.
fn run_tier(prefill: &[u64], scripts: &[Script], shards: usize, key_max: u64) -> f64 {
    let set = Arc::new(build_tier(prefill, shards, key_max));
    drive_batch_clients(&set, scripts)
}

/// One *instrumented* run: same traffic, wall clock ignored, tier and
/// per-shard registry snapshots captured.
fn run_tier_telemetry(
    prefill: &[u64],
    scripts: &[Script],
    shards: usize,
    key_max: u64,
    dist: &'static str,
) -> Telemetry {
    let set = Arc::new(build_tier(prefill, shards, key_max));
    drive_batch_clients(&set, scripts);
    let service = set.metrics();
    let batches: usize = scripts.iter().map(Vec::len).sum();
    assert_eq!(
        service.counter("service.batches_split"),
        Some(batches as u64),
        "telemetry pass split the wrong number of batches"
    );
    let sizes = service
        .histogram("service.subbatch_size")
        .expect("subbatch_size histogram");
    assert!(sizes.count() > 0, "telemetry pass recorded no sub-batches");
    let shard_snaps = set.shard_metrics();
    println!(
        "   telemetry {:>7} shards={}: {} batches split, sub-batch mean {:.1} keys, per-shard rounds {:?}",
        dist,
        shards,
        batches,
        sizes.mean(),
        shard_snaps
            .iter()
            .map(|s| s.counter("combine.rounds").unwrap_or(0))
            .collect::<Vec<_>>()
    );
    Telemetry {
        dist,
        shards,
        service_json: service.to_json(),
        shard_jsons: shard_snaps.iter().map(|s| s.to_json()).collect(),
    }
}

/// Measures router costs in isolation: `shard_of` ns per call for the
/// range and hash routers, and `split` ns per key for both split paths
/// (contiguous carve vs per-key scatter), on a 4-way partition.
fn router_overhead_json(cfg: &Config, prefill: &[u64], key_max: u64) -> String {
    let range_router = RangeRouter::new(4, 0u64, key_max);
    let hash_router = HashRouter::new(4);
    let reps = if cfg.num_keys < 50_000 { 20 } else { 50 };

    let range_ns = time_per(reps, prefill.len(), || {
        let mut acc = 0usize;
        for key in prefill {
            acc = acc.wrapping_add(range_router.shard_of(black_box(key)));
        }
        black_box(acc);
    });
    let hash_ns = time_per(reps, prefill.len(), || {
        let mut acc = 0usize;
        for key in prefill {
            acc = acc.wrapping_add(hash_router.shard_of(black_box(key)));
        }
        black_box(acc);
    });
    println!("router shard_of: range {range_ns:.1} ns/key  hash {hash_ns:.1} ns/key");

    let batch = Batch::from_unsorted(prefill.to_vec());
    let range_split_ns = time_per(reps, batch.len(), || {
        black_box(range_router.split(black_box(&batch)));
    });
    let hash_split_ns = time_per(reps, batch.len(), || {
        black_box(hash_router.split(black_box(&batch)));
    });
    println!("router split:    range {range_split_ns:.1} ns/key  hash {hash_split_ns:.1} ns/key");

    format!(
        "{{\"shards\": 4, \"range_shard_of_ns\": {range_ns:.2}, \"hash_shard_of_ns\": {hash_ns:.2}, \
         \"range_split_ns_per_key\": {range_split_ns:.2}, \"hash_split_ns_per_key\": {hash_split_ns:.2}}}"
    )
}

/// Best-of-`reps` nanoseconds per item for `f`, which processes `items`
/// items per invocation.
fn time_per(reps: usize, items: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_secs_f64() * 1e9 / items as f64;
        best = best.min(ns);
    }
    best
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    router_json: &str,
    telemetry: &[Telemetry],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"batches_per_client\": {}, \"batch_len\": {}, \"batch_clients\": {BATCH_CLIENTS}, \"reps\": {}, \"mix\": [2, 2, 1], \"zipf_theta\": {ZIPF_THETA}, \"shard_pool_threads\": {SHARD_POOL_THREADS}, \"tier_pool_threads\": {TIER_POOL_THREADS}, \"parallel_cutoff\": {PARALLEL_CUTOFF}}},\n",
        cfg.num_keys, cfg.batches_per_client, cfg.batch_len, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dist\": \"{}\", \"shards\": {}, \"best_keys_per_sec\": {:.0}, \"mean_keys_per_sec\": {:.0}}}{}\n",
            m.dist,
            m.shards,
            m.best_keys_per_sec,
            m.mean_keys_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"router_overhead\": {router_json},\n"));
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"tier_runs\": [\n");
    for (i, t) in telemetry.iter().enumerate() {
        let shards = t.shard_jsons.join(", ");
        json.push_str(&format!(
            "      {{\"dist\": \"{}\", \"shards\": {}, \"service\": {}, \"per_shard\": [{shards}]}}{}\n",
            t.dist,
            t.shards,
            t.service_json,
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
