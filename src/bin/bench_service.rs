//! Concurrent-service benchmark: the flat-combining front-end
//! (`combine::ConcurrentSet` over `pbist::IstSet`) against a coarse-locked
//! per-operation baseline (`Mutex<BTreeSet>`), under 1/2/4/8 client
//! threads issuing update-heavy single-key traffic (uniform and zipf).
//!
//! This measures what the batched speedups in `BENCH_pbist.json` buy
//! *end-to-end*: per-client operations coalesce into sorted batches inside
//! the combiner, so the service should overtake the per-op mutex baseline
//! once enough clients contend.
//!
//! Timed runs keep the scheduler's metrics off (the front-end's own
//! registry counters replaced its `Stats` plumbing, so those are always
//! on); a separate telemetry pass per configuration re-runs the combine
//! service with pool metrics and the round-trace ring enabled, embedding
//! the full registry snapshot, scheduler counters, and a trace summary in
//! the JSON alongside the measured disabled-instrumentation overhead
//! (asserted under the 2 ns/op contract in release builds).
//!
//! Deterministic (seeded per-client traces, fixed configuration), std-only
//! timing; one line per measurement on stdout, full results in
//! `BENCH_service.json`.
//!
//! ```sh
//! cargo run --release --bin bench_service
//! # CI smoke: tiny sizes, one repetition
//! BENCH_SERVICE_QUICK=1 cargo run --release --bin bench_service
//! ```

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pbist_repro::{
    bench_util::{assert_disabled_overhead, drive_clients, max_of, mean_of, pool_metrics_json},
    combine::{ConcurrentSet, Options},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ClientTrace, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into both structures.
    num_keys: usize,
    /// Operations each client thread issues per run.
    ops_per_client: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    num_keys: 100_000,
    ops_per_client: 40_000,
    reps: 3,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    ops_per_client: 2_000,
    reps: 1,
};

/// Client-thread counts measured.
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Update-heavy operation mix: 2 inserts : 2 removes : 1 contains.
const MIX: workloads::OpMix = (2, 2, 1);
/// Key universe; prefilling half of it keeps update hit rates near 50%.
fn key_range(cfg: &Config) -> std::ops::Range<u64> {
    0..(cfg.num_keys as u64 * 2)
}
/// Zipf exponent for the skewed distribution.
const ZIPF_THETA: f64 = 0.9;
/// Workers in the combiner's fork-join pool.
const POOL_THREADS: usize = 2;
/// Round-trace ring capacity for the telemetry pass.
const TRACE_CAPACITY: usize = 4096;

struct Measurement {
    structure: &'static str,
    dist: &'static str,
    clients: usize,
    best_ops_per_sec: f64,
    mean_ops_per_sec: f64,
    /// Mean combining-round size (`None` for the baseline).
    avg_round_ops: Option<f64>,
}

/// One configuration's instrumented combine run: the front-end registry
/// snapshot, the pool's scheduler counters, and a round-trace summary.
struct Telemetry {
    dist: &'static str,
    clients: usize,
    combine_json: String,
    pool_json: String,
    trace_spans: usize,
    trace_dropped: u64,
}

fn main() {
    let quick = std::env::var_os("BENCH_SERVICE_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = key_range(&cfg);

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());

    let mut results = Vec::new();
    let mut telemetry = Vec::new();
    for &clients in &CLIENT_COUNTS {
        for dist in ["uniform", "zipf"] {
            // Fresh traces per (clients, dist): per-client seeds derive from
            // one root seed, so every structure replays identical traffic.
            let seed = 0xC0FFEE ^ (clients as u64) << 8 ^ (dist.len() as u64);
            let traces = match dist {
                "uniform" => {
                    workloads::client_traces(seed, clients, cfg.ops_per_client, range.clone(), MIX)
                }
                _ => workloads::client_traces_zipf(
                    seed,
                    clients,
                    cfg.ops_per_client,
                    &prefill,
                    ZIPF_THETA,
                    MIX,
                ),
            };
            for structure in ["combine_ist", "mutex_btree"] {
                let mut runs = Vec::with_capacity(cfg.reps);
                let mut avg_round = None;
                for _ in 0..cfg.reps {
                    let (secs, round) = match structure {
                        "combine_ist" => run_combine(&prefill, &traces),
                        _ => (run_mutex_btree(&prefill, &traces), None),
                    };
                    if round.is_some() {
                        avg_round = round;
                    }
                    runs.push((clients * cfg.ops_per_client) as f64 / secs);
                }
                let m = Measurement {
                    structure,
                    dist,
                    clients,
                    best_ops_per_sec: max_of(&runs),
                    mean_ops_per_sec: mean_of(&runs),
                    avg_round_ops: avg_round,
                };
                let round = m
                    .avg_round_ops
                    .map(|r| format!("  avg round {r:6.2} ops"))
                    .unwrap_or_default();
                println!(
                    "{:>12} {:>7} clients={}: best {:10.0} ops/s  mean {:10.0} ops/s{round}",
                    m.structure, m.dist, m.clients, m.best_ops_per_sec, m.mean_ops_per_sec
                );
                results.push(m);
            }
            // Telemetry pass: one untimed instrumented combine run over the
            // same traces, separate so the timed numbers stay clean.
            let t = run_combine_telemetry(&prefill, &traces, dist, clients);
            println!(
                "   telemetry {:>7} clients={}: {} trace spans ({} dropped)",
                t.dist, t.clients, t.trace_spans, t.trace_dropped
            );
            telemetry.push(t);
        }
    }

    let json = render_json(&cfg, quick, &results, overhead_ns, &telemetry);
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json ({} measurements)", results.len());
}

/// One timed run of the flat-combining service.  Returns elapsed seconds
/// and the mean combining-round size.
fn run_combine(prefill: &[u64], traces: &[ClientTrace]) -> (f64, Option<f64>) {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options::default(),
    ));
    let secs = drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                match kind {
                    OpKind::Insert => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
            }
            (start, Instant::now())
        }
    });
    let stats = set.stats();
    let avg = (stats.rounds > 0).then(|| stats.ops as f64 / stats.rounds as f64);
    (secs, avg)
}

/// One *instrumented* combine run: pool metrics and the round-trace ring
/// enabled, wall clock ignored.
fn run_combine_telemetry(
    prefill: &[u64],
    traces: &[ClientTrace],
    dist: &'static str,
    clients: usize,
) -> Telemetry {
    let pool = Pool::builder()
        .num_threads(POOL_THREADS)
        .metrics(true)
        .build()
        .expect("metrics pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options {
            trace_capacity: TRACE_CAPACITY,
            ..Options::default()
        },
    ));
    drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                match kind {
                    OpKind::Insert => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
            }
            (start, Instant::now())
        }
    });
    let snap = set.metrics();
    let rounds = snap.counter("combine.rounds").unwrap_or(0);
    assert!(rounds > 0, "telemetry pass committed no rounds");
    let dropped = {
        let spans = set.take_trace();
        let total = traces.iter().map(|t| t.len() as u64).sum::<u64>();
        assert!(!spans.is_empty(), "telemetry pass traced no rounds");
        assert!(
            spans.iter().map(|s| s.ops).sum::<u64>() <= total,
            "trace ring recorded more ops than clients issued"
        );
        (rounds.saturating_sub(spans.len() as u64), spans.len())
    };
    Telemetry {
        dist,
        clients,
        combine_json: snap.to_json(),
        pool_json: pool_metrics_json(&set.pool_metrics()),
        trace_spans: dropped.1,
        trace_dropped: dropped.0,
    }
}

/// One timed run of the per-operation coarse-lock baseline.
fn run_mutex_btree(prefill: &[u64], traces: &[ClientTrace]) -> f64 {
    let set = Arc::new(Mutex::new(
        prefill.iter().copied().collect::<BTreeSet<u64>>(),
    ));
    drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                let mut guard = set.lock().unwrap();
                match kind {
                    OpKind::Insert => guard.insert(key),
                    OpKind::Remove => guard.remove(&key),
                    OpKind::Contains => guard.contains(&key),
                };
            }
            (start, Instant::now())
        }
    })
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    telemetry: &[Telemetry],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"ops_per_client\": {}, \"reps\": {}, \"mix\": [2, 2, 1], \"zipf_theta\": {ZIPF_THETA}, \"pool_threads\": {POOL_THREADS}}},\n",
        cfg.num_keys, cfg.ops_per_client, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let round = m
            .avg_round_ops
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "null".into());
        json.push_str(&format!(
            "    {{\"structure\": \"{}\", \"dist\": \"{}\", \"clients\": {}, \"best_ops_per_sec\": {:.0}, \"mean_ops_per_sec\": {:.0}, \"avg_round_ops\": {round}}}{}\n",
            m.structure,
            m.dist,
            m.clients,
            m.best_ops_per_sec,
            m.mean_ops_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"combine_runs\": [\n");
    for (i, t) in telemetry.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"dist\": \"{}\", \"clients\": {}, \"combine\": {}, \"pool\": {}, \"trace\": {{\"spans\": {}, \"dropped\": {}}}}}{}\n",
            t.dist,
            t.clients,
            t.combine_json,
            t.pool_json,
            t.trace_spans,
            t.trace_dropped,
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
