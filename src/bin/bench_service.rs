//! Concurrent-service benchmark: the flat-combining front-end
//! (`combine::ConcurrentSet` over `pbist::IstSet`) against a coarse-locked
//! per-operation baseline (`Mutex<BTreeSet>`), under 1/2/4/8 client
//! threads issuing update-heavy single-key traffic (uniform and zipf).
//!
//! This measures what the batched speedups in `BENCH_pbist.json` buy
//! *end-to-end*: per-client operations coalesce into sorted batches inside
//! the combiner, so the service should overtake the per-op mutex baseline
//! once enough clients contend.  Deterministic (seeded per-client traces,
//! fixed configuration), std-only timing; one line per measurement on
//! stdout, full results in `BENCH_service.json`.
//!
//! ```sh
//! cargo run --release --bin bench_service
//! # CI smoke: tiny sizes, one repetition
//! BENCH_SERVICE_QUICK=1 cargo run --release --bin bench_service
//! ```

use std::collections::BTreeSet;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Instant;

use pbist_repro::{
    combine::{ConcurrentSet, Options},
    forkjoin::Pool,
    pbist::IstSet,
    workloads::{self, ClientTrace, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// Keys pre-loaded into both structures.
    num_keys: usize,
    /// Operations each client thread issues per run.
    ops_per_client: usize,
    /// Timed repetitions per measurement; best and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    num_keys: 100_000,
    ops_per_client: 40_000,
    reps: 3,
};

const QUICK: Config = Config {
    num_keys: 5_000,
    ops_per_client: 2_000,
    reps: 1,
};

/// Client-thread counts measured.
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Update-heavy operation mix: 2 inserts : 2 removes : 1 contains.
const MIX: workloads::OpMix = (2, 2, 1);
/// Key universe; prefilling half of it keeps update hit rates near 50%.
fn key_range(cfg: &Config) -> std::ops::Range<u64> {
    0..(cfg.num_keys as u64 * 2)
}
/// Zipf exponent for the skewed distribution.
const ZIPF_THETA: f64 = 0.9;
/// Workers in the combiner's fork-join pool.
const POOL_THREADS: usize = 2;

struct Measurement {
    structure: &'static str,
    dist: &'static str,
    clients: usize,
    best_ops_per_sec: f64,
    mean_ops_per_sec: f64,
    /// Mean combining-round size (`None` for the baseline).
    avg_round_ops: Option<f64>,
}

fn main() {
    let quick = std::env::var_os("BENCH_SERVICE_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };
    let range = key_range(&cfg);

    let prefill = workloads::uniform_keys_distinct(0x5EED, cfg.num_keys, range.clone());

    let mut results = Vec::new();
    for &clients in &CLIENT_COUNTS {
        for dist in ["uniform", "zipf"] {
            // Fresh traces per (clients, dist): per-client seeds derive from
            // one root seed, so every structure replays identical traffic.
            let seed = 0xC0FFEE ^ (clients as u64) << 8 ^ (dist.len() as u64);
            let traces = match dist {
                "uniform" => {
                    workloads::client_traces(seed, clients, cfg.ops_per_client, range.clone(), MIX)
                }
                _ => workloads::client_traces_zipf(
                    seed,
                    clients,
                    cfg.ops_per_client,
                    &prefill,
                    ZIPF_THETA,
                    MIX,
                ),
            };
            for structure in ["combine_ist", "mutex_btree"] {
                let mut runs = Vec::with_capacity(cfg.reps);
                let mut avg_round = None;
                for _ in 0..cfg.reps {
                    let (secs, round) = match structure {
                        "combine_ist" => run_combine(&prefill, &traces),
                        _ => (run_mutex_btree(&prefill, &traces), None),
                    };
                    if round.is_some() {
                        avg_round = round;
                    }
                    runs.push((clients * cfg.ops_per_client) as f64 / secs);
                }
                let m = Measurement {
                    structure,
                    dist,
                    clients,
                    best_ops_per_sec: runs.iter().copied().fold(0.0, f64::max),
                    mean_ops_per_sec: runs.iter().sum::<f64>() / runs.len() as f64,
                    avg_round_ops: avg_round,
                };
                let round = m
                    .avg_round_ops
                    .map(|r| format!("  avg round {r:6.2} ops"))
                    .unwrap_or_default();
                println!(
                    "{:>12} {:>7} clients={}: best {:10.0} ops/s  mean {:10.0} ops/s{round}",
                    m.structure, m.dist, m.clients, m.best_ops_per_sec, m.mean_ops_per_sec
                );
                results.push(m);
            }
        }
    }

    let json = render_json(&cfg, quick, &results);
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json ({} measurements)", results.len());
}

/// One timed run of the flat-combining service.  Returns elapsed seconds
/// and the mean combining-round size.
fn run_combine(prefill: &[u64], traces: &[ClientTrace]) -> (f64, Option<f64>) {
    let pool = Pool::new(POOL_THREADS).expect("pool");
    let backing = IstSet::from_unsorted(prefill.to_vec());
    let set = Arc::new(ConcurrentSet::with_options(
        backing,
        pool,
        Options::default(),
    ));
    let secs = drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                match kind {
                    OpKind::Insert => set.insert(key),
                    OpKind::Remove => set.remove(&key),
                    OpKind::Contains => set.contains(&key),
                };
            }
            (start, Instant::now())
        }
    });
    let stats = set.stats();
    let avg = (stats.rounds > 0).then(|| stats.ops as f64 / stats.rounds as f64);
    (secs, avg)
}

/// One timed run of the per-operation coarse-lock baseline.
fn run_mutex_btree(prefill: &[u64], traces: &[ClientTrace]) -> f64 {
    let set = Arc::new(Mutex::new(
        prefill.iter().copied().collect::<BTreeSet<u64>>(),
    ));
    drive_clients(traces, |trace, barrier| {
        let set = Arc::clone(&set);
        move || {
            barrier.wait();
            let start = Instant::now();
            for (kind, key) in trace {
                let mut guard = set.lock().unwrap();
                match kind {
                    OpKind::Insert => guard.insert(key),
                    OpKind::Remove => guard.remove(&key),
                    OpKind::Contains => guard.contains(&key),
                };
            }
            (start, Instant::now())
        }
    })
}

/// Spawns one thread per trace, releases them together through a barrier,
/// and reports the wall-clock span from the first client's start to the
/// last client's finish.  Clients time themselves (returning their own
/// start/end instants) because an outside observer's clock can start late:
/// on a loaded or single-core machine the observer may be descheduled
/// through the barrier wakeup while the clients run — and even finish.
fn drive_clients<F, G>(traces: &[ClientTrace], mut client: F) -> f64
where
    F: FnMut(ClientTrace, Arc<Barrier>) -> G,
    G: FnOnce() -> (Instant, Instant) + Send + 'static,
{
    let barrier = Arc::new(Barrier::new(traces.len()));
    let handles: Vec<_> = traces
        .iter()
        .map(|trace| thread::spawn(client(trace.clone(), Arc::clone(&barrier))))
        .collect();
    let spans: Vec<(Instant, Instant)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let start = spans
        .iter()
        .map(|s| s.0)
        .min()
        .expect("at least one client");
    let end = spans
        .iter()
        .map(|s| s.1)
        .max()
        .expect("at least one client");
    (end - start).as_secs_f64()
}

fn render_json(cfg: &Config, quick: bool, results: &[Measurement]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"num_keys\": {}, \"ops_per_client\": {}, \"reps\": {}, \"mix\": [2, 2, 1], \"zipf_theta\": {ZIPF_THETA}, \"pool_threads\": {POOL_THREADS}}},\n",
        cfg.num_keys, cfg.ops_per_client, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let round = m
            .avg_round_ops
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "null".into());
        json.push_str(&format!(
            "    {{\"structure\": \"{}\", \"dist\": \"{}\", \"clients\": {}, \"best_ops_per_sec\": {:.0}, \"mean_ops_per_sec\": {:.0}, \"avg_round_ops\": {round}}}{}\n",
            m.structure,
            m.dist,
            m.clients,
            m.best_ops_per_sec,
            m.mean_ops_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}
