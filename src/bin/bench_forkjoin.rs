//! Deterministic scheduler microbenchmark for the `forkjoin` crate.
//!
//! Three workloads, each at 1/2/4 worker threads:
//!
//! * `fib` — parallel Fibonacci with a `join` at **every** level (no
//!   sequential cutoff), so the runtime is almost pure scheduler overhead.
//!   The join count is known analytically, which turns the wall time into a
//!   per-join cost (`ns_per_join`).
//! * `tree` — a balanced binary tree of joins with trivial leaves; same
//!   idea with a perfectly regular shape (2^depth - 1 joins).
//! * `ist_ops` — the end-to-end consumer: mixed `IstSet` op-batches through
//!   the [`batchapi::BatchedSet`] trait, i.e. the workload whose speedups
//!   `BENCH_pbist.json` records, re-measured on top of this scheduler.
//!
//! Timing runs on pools built **without** metrics (the default), so the
//! numbers measure the scheduler, not its instrumentation; a separate
//! telemetry pass re-runs each workload once on a metrics-enabled pool and
//! embeds the steal/sleep/jobs counters and join-latency histogram in the
//! JSON, alongside the measured disabled-instrumentation overhead (asserted
//! under the 2 ns/op contract in release builds).
//!
//! Std-only (`std::time::Instant`), seeded workloads, fixed configuration —
//! two runs on the same machine measure the same work.  Emits one line per
//! measurement to stdout and writes the full result set to
//! `BENCH_forkjoin.json` in the current directory.
//!
//! ```sh
//! cargo run --release --bin bench_forkjoin
//! # CI smoke: tiny sizes, one repetition
//! BENCH_FORKJOIN_QUICK=1 cargo run --release --bin bench_forkjoin
//! ```

use pbist_repro::{
    batchapi::{Batch, BatchedSet},
    bench_util::{assert_disabled_overhead, mean_of, min_of, pool_metrics_json, time_reps},
    forkjoin::{join, Pool},
    pbist::IstSet,
    workloads::{self, OpKind},
};

/// Benchmark sizes; `quick` is the CI smoke configuration.
struct Config {
    /// `fib(n)` argument; joins = fib(n+1) - 1.
    fib_n: u64,
    /// Balanced-tree depth; joins = 2^depth - 1.
    tree_depth: u32,
    /// Keys pre-loaded into the `IstSet`.
    ist_keys: usize,
    /// Number of mixed op-batches applied to the set.
    ist_batches: usize,
    /// Operations per batch.
    ist_batch_len: usize,
    /// Timed repetitions per measurement; min and mean are reported.
    reps: usize,
}

const FULL: Config = Config {
    fib_n: 26,
    tree_depth: 17,
    ist_keys: 50_000,
    ist_batches: 20,
    ist_batch_len: 2_000,
    reps: 5,
};

const QUICK: Config = Config {
    fib_n: 16,
    tree_depth: 10,
    ist_keys: 2_000,
    ist_batches: 4,
    ist_batch_len: 200,
    reps: 1,
};

struct Measurement {
    workload: &'static str,
    threads: usize,
    best_ms: f64,
    mean_ms: f64,
    /// Number of `join` calls the workload performs (`None` for `ist_ops`,
    /// where the join count depends on tree shape).
    joins: Option<u64>,
}

fn main() {
    let quick = std::env::var_os("BENCH_FORKJOIN_QUICK").is_some();
    let cfg = if quick { QUICK } else { FULL };

    let overhead_ns = assert_disabled_overhead();
    println!("disabled-instrumentation overhead: {overhead_ns:.3} ns/op");

    let mut results = Vec::new();
    for &threads in &[1usize, 2, 4] {
        // Timing pools keep metrics off (the default): measure the
        // scheduler, not the instrumentation.
        let pool = Pool::new(threads).expect("pool");
        results.push(bench_fib(&pool, &cfg));
        results.push(bench_tree(&pool, &cfg));
        results.push(bench_ist_ops(&pool, &cfg));
    }

    for m in &results {
        let per_join = m
            .joins
            .map(|j| format!("  {:9.1} ns/join", m.best_ms * 1e6 / j as f64))
            .unwrap_or_default();
        println!(
            "{:>8} threads={}: best {:9.3} ms  mean {:9.3} ms{per_join}",
            m.workload, m.threads, m.best_ms, m.mean_ms
        );
    }

    // Telemetry pass: the same workloads, once each, on metrics-enabled
    // pools.  Separate from the timing pass so the counters cost nothing
    // in the numbers above.
    let mut telemetry = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let pool = Pool::builder()
            .num_threads(threads)
            .metrics(true)
            .build()
            .expect("metrics pool");
        run_fib_once(&pool, &cfg);
        run_tree_once(&pool, &cfg);
        run_ist_ops_once(&pool, &cfg);
        let metrics = pool.metrics();
        let totals = metrics.totals();
        assert!(totals.jobs_executed > 0, "telemetry pass executed no jobs");
        println!(
            "telemetry threads={threads}: jobs_executed {}  steal_success {}  steal_empty {}  \
             sleeps {}  joins timed {}",
            totals.jobs_executed,
            totals.steal_success,
            totals.steal_empty,
            totals.sleeps,
            metrics.join_latency.count()
        );
        telemetry.push((threads, pool_metrics_json(&metrics)));
    }

    let json = render_json(&cfg, quick, &results, overhead_ns, &telemetry);
    std::fs::write("BENCH_forkjoin.json", &json).expect("write BENCH_forkjoin.json");
    println!("wrote BENCH_forkjoin.json ({} measurements)", results.len());
}

/// Fibonacci with a join per internal call.  `fib(0..=1)` are leaves, so the
/// number of joins is `fib(n+1) - 1` (internal nodes of the call tree).
fn par_fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| par_fib(n - 1), || par_fib(n - 2));
    a + b
}

/// Sequential fib used both to check the parallel result and to size the
/// join count.
fn seq_fib(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}

fn run_fib_once(pool: &Pool, cfg: &Config) {
    let got = pool.install(|| par_fib(cfg.fib_n));
    assert_eq!(got, seq_fib(cfg.fib_n));
}

fn bench_fib(pool: &Pool, cfg: &Config) -> Measurement {
    let times = time_reps(cfg.reps, || run_fib_once(pool, cfg));
    Measurement {
        workload: "fib",
        threads: pool.num_threads(),
        best_ms: min_of(&times),
        mean_ms: mean_of(&times),
        joins: Some(seq_fib(cfg.fib_n + 1) - 1),
    }
}

/// A balanced binary tree of joins; every leaf contributes 1.
fn tree_sum(depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (a, b) = join(|| tree_sum(depth - 1), || tree_sum(depth - 1));
    a + b
}

fn run_tree_once(pool: &Pool, cfg: &Config) {
    let got = pool.install(|| tree_sum(cfg.tree_depth));
    assert_eq!(got, 1u64 << cfg.tree_depth);
}

fn bench_tree(pool: &Pool, cfg: &Config) -> Measurement {
    let times = time_reps(cfg.reps, || run_tree_once(pool, cfg));
    Measurement {
        workload: "tree",
        threads: pool.num_threads(),
        best_ms: min_of(&times),
        mean_ms: mean_of(&times),
        joins: Some((1u64 << cfg.tree_depth) - 1),
    }
}

/// One end-to-end batched-IST run: the scheduler's real consumer.
fn run_ist_ops_once(pool: &Pool, cfg: &Config) {
    let key_range = 0..(cfg.ist_keys as u64 * 16);
    let base = workloads::uniform_keys_distinct(0x5EED, cfg.ist_keys, key_range.clone());
    let ops = workloads::mixed_op_batches(
        0xF0CC,
        cfg.ist_batches,
        cfg.ist_batch_len,
        key_range,
        (2, 1, 1),
    );
    let mut set = pool.install(|| IstSet::from_unsorted(base));
    pool.install(|| {
        for op in &ops {
            let batch = Batch::from_unsorted(op.keys.clone());
            match op.kind {
                OpKind::Contains => {
                    let hits = set.batch_contains(&batch);
                    assert_eq!(hits.len(), batch.len());
                }
                OpKind::Insert => {
                    set.batch_insert(&batch);
                }
                OpKind::Remove => {
                    set.batch_remove(&batch);
                }
            }
        }
    });
}

fn bench_ist_ops(pool: &Pool, cfg: &Config) -> Measurement {
    let times = time_reps(cfg.reps, || run_ist_ops_once(pool, cfg));
    Measurement {
        workload: "ist_ops",
        threads: pool.num_threads(),
        best_ms: min_of(&times),
        mean_ms: mean_of(&times),
        joins: None,
    }
}

fn render_json(
    cfg: &Config,
    quick: bool,
    results: &[Measurement],
    overhead_ns: f64,
    telemetry: &[(usize, String)],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"forkjoin\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"fib_n\": {}, \"tree_depth\": {}, \"ist_keys\": {}, \"ist_batches\": {}, \"ist_batch_len\": {}, \"reps\": {}}},\n",
        cfg.fib_n, cfg.tree_depth, cfg.ist_keys, cfg.ist_batches, cfg.ist_batch_len, cfg.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let joins = m
            .joins
            .map(|j| j.to_string())
            .unwrap_or_else(|| "null".into());
        let ns_per_join = m
            .joins
            .map(|j| format!("{:.1}", m.best_ms * 1e6 / j as f64))
            .unwrap_or_else(|| "null".into());
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"best_ms\": {:.4}, \"mean_ms\": {:.4}, \"joins\": {joins}, \"ns_per_join\": {ns_per_join}}}{}\n",
            m.workload,
            m.threads,
            m.best_ms,
            m.mean_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"metrics\": {\n");
    json.push_str(&format!(
        "    \"disabled_overhead_ns\": {overhead_ns:.4},\n"
    ));
    json.push_str("    \"pools\": [\n");
    for (i, (threads, pool_json)) in telemetry.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {threads}, \"pool\": {pool_json}}}{}\n",
            if i + 1 < telemetry.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}
