//! Umbrella crate for the parallel-batched interpolation search tree
//! reproduction.  It only re-exports the workspace crates so that the
//! examples and integration tests in this package have a single import
//! surface; all functionality lives in the `crates/` members.

pub use baselines;
pub use batchapi;
pub use combine;
pub use durable;
pub use forkjoin;
pub use obs;
pub use parprim;
pub use pbist;
pub use service;
pub use workloads;

pub mod bench_util;
